#!/usr/bin/env python3
"""Road-network scenario: the high-diameter regime.

Road maps are the paper's hard case (§6.2, Table 4): tiny average
degree, no hubs, diameters in the hundreds or thousands. This example
generates a synthetic road map, shows which F-Diam stages do the work
here (Eliminate and Chain Processing carry real weight — unlike on
social networks), and races F-Diam against the baselines under a time
budget, reproducing the paper's timeout pattern in miniature.

Run:  python examples/road_network_analysis.py
"""

import time

import repro
from repro.baselines import bounding_diameters, graph_diameter, ifub_diameter
from repro.errors import BenchmarkTimeout
from repro.generators import road_network
from repro.graph import connected_components, degree_summary


def main() -> None:
    graph = road_network(
        130, 130, edge_keep=0.8, chain_fraction=0.25, chain_length=4, seed=7
    )
    summary = degree_summary(graph)
    cc = connected_components(graph)
    print(f"road map: {summary.num_vertices:,} junctions, "
          f"{summary.num_edges:,} road segments")
    print(f"  average degree {summary.average_degree:.1f}, "
          f"max degree {summary.max_degree}, "
          f"{cc.num_components} connected components")

    # --- F-Diam with per-stage accounting ----------------------------
    t0 = time.perf_counter()
    result = repro.fdiam(graph)
    fdiam_time = time.perf_counter() - t0
    print(f"\nF-Diam: CC diameter = {result.diameter} "
          f"in {fdiam_time:.3f}s ({result.stats.bfs_traversals} BFS traversals)")

    removed = result.stats.removal_fractions()
    print("  stage effectiveness (fraction of vertices pruned):")
    for stage in ("winnow", "eliminate", "chain", "degree0"):
        print(f"    {stage:10s} {100 * removed[stage]:6.2f}%")
    print("  note the Eliminate/Chain share — on social networks Winnow"
          " does ~99% alone (see social_network_analysis.py)")

    # --- Baselines under a time budget --------------------------------
    budget_s = max(10 * fdiam_time, 2.0)
    print(f"\nbaselines (budget {budget_s:.1f}s = 10x F-Diam's time):")
    for name, fn in [
        ("iFUB", ifub_diameter),
        ("Graph-Diameter", graph_diameter),
        ("BoundingDiameters", bounding_diameters),
    ]:
        t0 = time.perf_counter()
        try:
            res = fn(graph, deadline=time.perf_counter() + budget_s)
            elapsed = time.perf_counter() - t0
            assert res.diameter == result.diameter
            print(f"  {name:18s} {elapsed:8.3f}s  ({res.bfs_traversals} BFS)")
        except BenchmarkTimeout:
            print(f"  {name:18s}      T/O  (> {budget_s:.1f}s)")


if __name__ == "__main__":
    main()
