#!/usr/bin/env python3
"""Social-network scenario: the small-world regime where Winnow shines.

Hub-heavy, low-diameter graphs are where the paper reports Winnow
removing > 99 % of all vertices after just two BFS calls. This example
builds a social-network analog (preferential-attachment core plus thin
peripheral tendrils), walks through F-Diam's stages one at a time using
the library's internals, and visualizes how the active set collapses.

Run:  python examples/social_network_analysis.py
"""

import repro
from repro.core import FDiamConfig, FDiamState, process_chains, two_sweep, winnow
from repro.generators import add_tendrils, barabasi_albert, permute_vertices
from repro.graph import degree_summary


def main() -> None:
    core = barabasi_albert(25_000, 8, seed=5)
    graph = permute_vertices(
        add_tendrils(core, 45, 4, 11, seed=5), seed=5, name="social-25k"
    )
    summary = degree_summary(graph)
    print(f"{graph.name}: {summary.num_vertices:,} users, "
          f"{summary.num_edges:,} friendships")
    print(f"  max degree {summary.max_degree} "
          f"(vertex {summary.max_degree_vertex} — the 'celebrity' hub)")

    # --- Replay F-Diam stage by stage ---------------------------------
    state = FDiamState(graph, FDiamConfig())
    n = graph.num_vertices

    def report(stage: str) -> None:
        active = state.active_count()
        print(f"  after {stage:22s} {active:>7,} active "
              f"({100 * active / n:6.2f}% of the graph)")

    print(f"\nstage-by-stage collapse of the consideration set "
          f"({n:,} vertices):")
    hub = graph.max_degree_vertex()
    sweep = two_sweep(state, hub)
    state.bound = sweep.bound
    print(f"  2-sweep: ecc(hub) = {sweep.start_ecc}, "
          f"initial diameter bound = {sweep.bound}")
    report("2-sweep")

    winnow(state, hub, state.bound)
    report("Winnow")

    process_chains(state)
    report("Chain Processing")

    # --- Full run for the exact answer --------------------------------
    result = repro.fdiam(graph)
    print(f"\nexact diameter: {result.diameter} "
          f"(initial bound was {result.stats.initial_bound})")
    print(f"total BFS traversals: {result.stats.bfs_traversals} "
          f"— versus {n:,} for the naive all-eccentricities approach")

    frac = result.stats.removal_fractions()
    print(f"Winnow alone pruned {100 * frac['winnow']:.2f}% of all "
          f"vertices, the paper's signature result on this graph class")


if __name__ == "__main__":
    main()
