#!/usr/bin/env python3
"""Beyond the diameter: approximations, radius, center, and periphery.

The library's extension modules round out the eccentricity toolbox:

* bounded 2-sweep / 4-sweep estimates — microseconds, with a guaranteed
  ``[lower, upper]`` interval (``upper <= 2 * lower``),
* F-Diam — the exact diameter,
* the full eccentricity spectrum — exact radius, center and periphery,
  at a higher traversal cost because Winnow's Theorem-2 argument only
  applies to the *maximum* eccentricity.

This example runs all three tiers on one network and compares answers
and costs.

Run:  python examples/eccentricity_analysis.py
"""

import time

import repro
from repro.core import (
    eccentricity_spectrum,
    four_sweep_estimate,
    two_sweep_estimate,
)
from repro.generators import add_tendrils, barabasi_albert


def main() -> None:
    graph = add_tendrils(
        barabasi_albert(12_000, 5, seed=77), 30, 4, 12, seed=77,
        name="collab-12k",
    )
    print(f"{graph.name}: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges\n")

    # --- Tier 1: bounded estimates ------------------------------------
    for label, estimator in (
        ("2-sweep", two_sweep_estimate),
        ("4-sweep", four_sweep_estimate),
    ):
        t0 = time.perf_counter()
        est = estimator(graph)
        dt = time.perf_counter() - t0
        exact = " (exact!)" if est.is_exact else ""
        print(f"{label:8s} diameter in [{est.lower}, {est.upper}]{exact} "
              f"— {est.bfs_traversals} BFS, {1000 * dt:.1f} ms")

    # --- Tier 2: exact diameter ---------------------------------------
    t0 = time.perf_counter()
    result = repro.fdiam(graph)
    dt = time.perf_counter() - t0
    print(f"{'F-Diam':8s} diameter = {result.diameter} "
          f"— {result.stats.bfs_traversals} BFS, {1000 * dt:.1f} ms")

    # --- Tier 3: full spectrum ----------------------------------------
    t0 = time.perf_counter()
    spec = eccentricity_spectrum(graph)
    dt = time.perf_counter() - t0
    print(f"{'spectrum':8s} diameter = {spec.diameter}, radius = {spec.radius} "
          f"— {spec.bfs_traversals} BFS, {1000 * dt:.1f} ms")

    assert spec.diameter == result.diameter

    print(f"\ncenter    : {len(spec.center)} vertices "
          f"(graph 'capital': {int(spec.center[0])})")
    print(f"periphery : {len(spec.periphery)} vertices realize the diameter")
    print(f"Theorem 3 : radius {spec.radius} >= diameter {spec.diameter} / 2 "
          f"= {spec.diameter / 2:g} ✓")

    # Eccentricity histogram — the core/periphery structure at a glance.
    import numpy as np

    values, counts = np.unique(spec.eccentricities, return_counts=True)
    print("\neccentricity histogram:")
    peak = counts.max()
    for v, c in zip(values, counts):
        bar = "#" * max(1, round(40 * c / peak))
        print(f"  ecc {int(v):>3}: {bar} {c}")


if __name__ == "__main__":
    main()
