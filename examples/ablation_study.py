#!/usr/bin/env python3
"""Ablation study: what each F-Diam technique contributes.

Reruns F-Diam on two topologically opposite inputs with each technique
disabled in turn (the paper's §6.5 experiment), reporting BFS-traversal
counts and runtimes. Winnow matters most on the small-world input;
Eliminate is what keeps the road network tractable.

Run:  python examples/ablation_study.py
"""

import time

from repro.core import ABLATIONS, fdiam
from repro.errors import BenchmarkTimeout
from repro.generators import add_tendrils, barabasi_albert, road_network
from repro.harness import render_table


def run_variants(graph, budget_s: float = 30.0):
    rows = []
    for variant, config in ABLATIONS.items():
        t0 = time.perf_counter()
        try:
            result = fdiam(graph, config, deadline=time.perf_counter() + budget_s)
            rows.append(
                {
                    "variant": variant,
                    "diameter": result.diameter,
                    "BFS traversals": result.stats.bfs_traversals,
                    "seconds": time.perf_counter() - t0,
                }
            )
        except BenchmarkTimeout:
            rows.append(
                {
                    "variant": variant,
                    "diameter": None,
                    "BFS traversals": None,
                    "seconds": float("inf"),
                }
            )
    return rows


def main() -> None:
    smallworld = add_tendrils(
        barabasi_albert(15_000, 6, seed=11), 35, 4, 10, seed=11, name="smallworld"
    )
    road = road_network(90, 90, chain_fraction=0.2, chain_length=3, seed=11)

    for graph in (smallworld, road):
        rows = run_variants(graph)
        print(
            render_table(
                f"Ablations on {graph.name} "
                f"({graph.num_vertices:,} vertices)",
                ["variant", "diameter", "BFS traversals", "seconds"],
                rows,
            )
        )
        print()

    print("reading guide: every variant must report the same diameter;")
    print("the cost of losing a technique shows up in traversals/seconds.")


if __name__ == "__main__":
    main()
