#!/usr/bin/env python3
"""Quickstart: compute the exact diameter of a graph with F-Diam.

Covers the 90 % use case in ~30 lines: build a graph (from edges, a
generator, or a file), call :func:`repro.fdiam`, and read the result.

Run:  python examples/quickstart.py
"""

import repro
from repro.generators import grid_2d, watts_strogatz


def main() -> None:
    # --- 1. From an explicit edge list -------------------------------
    g = repro.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)])
    result = repro.fdiam(g)
    print(f"tiny graph: diameter = {result.diameter}")

    # --- 2. From a generator -----------------------------------------
    grid = grid_2d(64, 64)
    result = repro.fdiam(grid)
    print(
        f"{grid.name}: diameter = {result.diameter} "
        f"(expected 126), connected = {result.connected}"
    )

    # --- 3. A small-world graph, with the run statistics -------------
    sw = watts_strogatz(5000, 6, 0.05, seed=1)
    result = repro.fdiam(sw)
    stats = result.stats
    print(f"\n{sw.name}: diameter = {result.diameter}")
    print(f"  BFS traversals      : {stats.bfs_traversals}")
    print(f"  initial 2-sweep bound: {stats.initial_bound}")
    removed = stats.removal_fractions()
    print(f"  winnowed            : {100 * removed['winnow']:.1f}% of vertices")
    print(f"  eliminated          : {100 * removed['eliminate']:.1f}%")
    print(f"  chain-processed     : {100 * removed['chain']:.1f}%")
    print(
        f"  explicitly evaluated: {100 * removed['computed']:.2f}% "
        f"— the whole point of F-Diam"
    )

    # --- 4. Disconnected inputs --------------------------------------
    from repro.generators import disjoint_union, path_graph

    parts = disjoint_union([path_graph(10), path_graph(30)])
    result = repro.fdiam(parts)
    print(
        f"\ndisconnected input: diameter reported as {result} "
        f"(infinite = {result.infinite})"
    )


if __name__ == "__main__":
    main()
