#!/usr/bin/env python3
"""Working with graph files and disconnected inputs.

Shows the full I/O surface — SNAP edge lists, DIMACS ``.gr`` road
files, METIS, and the native ``.npz`` archive — plus the library's
handling of disconnected graphs (infinite diameter, largest-component
analysis), mirroring how the paper's evaluation ingests its 17 inputs
from four different collections.

Run:  python examples/file_formats_and_components.py
"""

import tempfile
from pathlib import Path

import repro
from repro.generators import add_isolated_vertices, disjoint_union, grid_2d, star_graph
from repro.graph import (
    component_subgraph,
    connected_components,
    induced_subgraph,
    read_graph,
    save_npz,
    write_dimacs,
    write_edge_list,
    write_metis,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-io-"))

    # A disconnected graph: a grid "city", a star "hub", stray sensors.
    graph = add_isolated_vertices(
        disjoint_union([grid_2d(12, 12), star_graph(40)]), 5, name="mixed"
    )

    # --- Write in every supported format ------------------------------
    files = {
        "edge list (SNAP style)": workdir / "mixed.el",
        "DIMACS .gr (road style)": workdir / "mixed.gr",
        "METIS": workdir / "mixed.graph",
        "native .npz": workdir / "mixed.npz",
    }
    write_edge_list(graph, files["edge list (SNAP style)"])
    write_dimacs(graph, files["DIMACS .gr (road style)"])
    write_metis(graph, files["METIS"])
    save_npz(graph, files["native .npz"])

    # --- Read back through the extension dispatcher -------------------
    print(f"round-tripping {graph.num_vertices} vertices / "
          f"{graph.num_edges} edges through 4 formats:")
    for label, path in files.items():
        loaded = read_graph(path)
        assert loaded.num_edges == graph.num_edges
        assert loaded.num_vertices == graph.num_vertices
        print(f"  {label:24s} -> ok ({path.stat().st_size:,} bytes)")

    # --- Diameter of a disconnected input -----------------------------
    result = repro.fdiam(graph)
    print(f"\nwhole input: {result}")

    cc = connected_components(graph)
    print(f"components: {cc.num_components} "
          f"(sizes: {sorted(cc.sizes.tolist(), reverse=True)[:4]}...)")

    largest = component_subgraph(graph, cc.vertices_of(cc.largest()))
    per_comp = repro.fdiam(largest)
    print(f"largest component alone: diameter = {per_comp.diameter}, "
          f"connected = {per_comp.connected}")

    # Induced subgraphs keep an id mapping back to the parent graph.
    sub = induced_subgraph(graph, cc.vertices_of(cc.largest()))
    print(f"subgraph vertex 0 corresponds to parent vertex "
          f"{int(sub.to_parent[0])}")


if __name__ == "__main__":
    main()
