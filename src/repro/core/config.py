"""Configuration of the F-Diam driver, including ablation switches.

The paper's Section 6.5 evaluates F-Diam with individual features
disabled ("We only disable one feature at a time as disabling multiple
together mostly results in timeouts"). Every switch studied there is a
field here so the ablation benchmarks (Table 5, Figure 9) are plain
configuration changes, not code forks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.bfs.eccentricity import Engine
from repro.bfs.hybrid import DEFAULT_THRESHOLD

__all__ = ["FDiamConfig", "ABLATIONS"]

Order = Literal["sequential", "random"]


@dataclass(frozen=True)
class FDiamConfig:
    """Tunables and ablation switches of :func:`repro.core.fdiam.fdiam`.

    Attributes
    ----------
    engine:
        ``"parallel"`` (vectorized direction-optimized BFS — the paper's
        OpenMP code) or ``"serial"`` (scalar Python BFS — the paper's
        serial code). Affects the eccentricity traversals, which
        dominate the runtime (paper Fig. 8); the pruning passes share
        one implementation (see DESIGN.md §2).
    use_winnow:
        Enable the Winnow stage (paper §4.2). Disabling reproduces the
        "no Winnow" ablation.
    use_eliminate:
        Enable the Eliminate stage and the incremental extension of
        eliminated regions (§4.4/§4.5). Disabling reproduces "no Elim.".
    use_chain:
        Enable Chain Processing (§4.3).
    use_max_degree_start:
        Start the 2-sweep and Winnow from the max-degree vertex ``u``.
        ``False`` starts from vertex 0, reproducing the "no 'u'"
        ablation ("Changing the starting point from the maximum-degree
        vertex u to the vertex with ID zero").
    order:
        Order in which remaining active vertices are evaluated:
        ``"sequential"`` follows Algorithm 1's id scan; ``"random"``
        follows the §4.4 prose ("F-Diam randomly picks such a vertex").
    seed:
        RNG seed for ``order="random"``.
    threshold:
        Direction-switch threshold of the hybrid BFS (fraction of |V|).
    directions:
        Allow bottom-up steps in the hybrid BFS; ``False`` forces pure
        top-down.
    keep_traces:
        Retain per-level BFS traces (needed by the parallel cost model).
    bfs_batch_lanes:
        When positive, the multi-source waves of Winnow resume and the
        Eliminate extension run on the bit-parallel lane machinery
        (:mod:`repro.bfs.bitparallel`, merged mode) instead of the
        scalar top-down loop — identical level sets, shared pooled lane
        matrices. ``0`` (the default) keeps the scalar path. This is
        the ``--bfs-batch-lanes`` CLI switch.
    """

    engine: Engine = "parallel"
    use_winnow: bool = True
    use_eliminate: bool = True
    use_chain: bool = True
    use_max_degree_start: bool = True
    order: Order = "sequential"
    seed: int = 0
    threshold: float = DEFAULT_THRESHOLD
    directions: bool = True
    keep_traces: bool = False
    bfs_batch_lanes: int = 0

    def ablate(self, **changes: object) -> "FDiamConfig":
        """A copy of this config with the given fields changed."""
        return replace(self, **changes)


#: The four variants compared in the paper's Table 5 / Figure 9.
ABLATIONS: dict[str, FDiamConfig] = {
    "F-Diam": FDiamConfig(),
    "no Winnow": FDiamConfig(use_winnow=False),
    "no Elim.": FDiamConfig(use_eliminate=False),
    "no 'u'": FDiamConfig(use_max_degree_start=False),
}
