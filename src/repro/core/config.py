"""Configuration of the F-Diam driver, including ablation switches.

The paper's Section 6.5 evaluates F-Diam with individual features
disabled ("We only disable one feature at a time as disabling multiple
together mostly results in timeouts"). Every switch studied there is a
field here so the ablation benchmarks (Table 5, Figure 9) are plain
configuration changes, not code forks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.bfs.eccentricity import Engine
from repro.bfs.hybrid import DEFAULT_THRESHOLD

__all__ = ["FDiamConfig", "ABLATIONS"]

Order = Literal["sequential", "random"]


@dataclass(frozen=True)
class FDiamConfig:
    """Tunables and ablation switches of :func:`repro.core.fdiam.fdiam`.

    Attributes
    ----------
    engine:
        ``"parallel"`` (vectorized direction-optimized BFS — the paper's
        OpenMP code) or ``"serial"`` (scalar Python BFS — the paper's
        serial code). Affects the eccentricity traversals, which
        dominate the runtime (paper Fig. 8); the pruning passes share
        one implementation (see DESIGN.md §2).
    use_winnow:
        Enable the Winnow stage (paper §4.2). Disabling reproduces the
        "no Winnow" ablation.
    use_eliminate:
        Enable the Eliminate stage and the incremental extension of
        eliminated regions (§4.4/§4.5). Disabling reproduces "no Elim.".
    use_chain:
        Enable Chain Processing (§4.3).
    use_max_degree_start:
        Start the 2-sweep and Winnow from the max-degree vertex ``u``.
        ``False`` starts from vertex 0, reproducing the "no 'u'"
        ablation ("Changing the starting point from the maximum-degree
        vertex u to the vertex with ID zero").
    order:
        Order in which remaining active vertices are evaluated:
        ``"sequential"`` follows Algorithm 1's id scan; ``"random"``
        follows the §4.4 prose ("F-Diam randomly picks such a vertex").
    seed:
        RNG seed for ``order="random"``.
    threshold:
        Direction-switch threshold of the hybrid BFS (fraction of |V|).
    directions:
        Allow bottom-up steps in the hybrid BFS; ``False`` forces pure
        top-down.
    keep_traces:
        Retain per-level BFS traces (needed by the parallel cost model).
    bfs_batch_lanes:
        When positive, the multi-source waves of Winnow resume and the
        Eliminate extension run on the bit-parallel lane machinery
        (:mod:`repro.bfs.bitparallel`, merged mode) instead of the
        scalar top-down loop — identical level sets, shared pooled lane
        matrices. ``0`` (the default) keeps the scalar path. This is
        the ``--bfs-batch-lanes`` CLI switch.
    lane_fallback:
        Let the run drop a requested lane batch back to the scalar path
        when the cost model advises against it — after the 2-sweep, the
        initial bound is compared against the model's merged-wave level
        cap (high-diameter graphs pay lane-word traffic over hundreds of
        near-empty levels for nothing). ``False`` forces the lanes to
        stay on regardless, for A/B measurements.
    chain_tip_batch:
        Resolve the chain tips that survive Chain Processing with one
        bit-parallel lane sweep from their anchors instead of one
        scalar eccentricity BFS each: a pendant tip ``x`` whose chain
        of length ``s`` anchors at ``w`` has ``ecc(x) = s + ecc(w)``
        whenever ``ecc(w) > s`` (the farthest vertex from ``w`` then
        provably lies outside the chain), and one lane sweep yields up
        to 64 anchor eccentricities in a single traversal. Exact; off
        by default so the plain path reproduces the paper's per-tip
        counters — the prep planner turns it on for components whose
        estimated diameter fits the lane-mode level budget.
    prep:
        The ``--prep`` reduction pipeline specification: ``"off"``
        (default) runs plain F-Diam; ``"auto"`` enables every stage
        (peel, collapse, reorder, per-component planning); a comma list
        picks stages explicitly — see
        :class:`repro.prep.plan.PrepSpec`. Exactness-preserving: the
        returned diameter is identical with any value.
    memory_budget:
        Byte budget for decoded adjacency scratch when the graph is
        backed by a block-compressed ``.scsr`` store (loaded with
        ``mmap=True``). ``None`` (the default) means unbounded: the
        kernel traverses the fully decoded CSR. With a budget, the
        traversal kernel asks the cost model's memory-pressure verdict
        (:meth:`~repro.parallel.costmodel.LevelSynchronousCostModel.choose_memory_mode`)
        whether the decoded image fits; under pressure it routes every
        expansion through per-block decoding with the store's block
        cache capped at this many bytes (or pure streaming decode when
        even a useful cache does not fit). Exactness-preserving: the
        diameter and eccentricities are bit-identical with any value.
    memory_mode:
        Override for the memory-pressure routing: ``"auto"`` (default)
        lets the cost model decide from ``memory_budget``; ``"decode"``,
        ``"cached"`` and ``"stream"`` force one mode (the latter two
        require a store-backed graph).
    verify:
        Attach the invariant oracle of :mod:`repro.verify` to the run:
        reference BFS distances are precomputed up front and every
        stage transition is checked against the paper's safety
        theorems (bounds sandwich true eccentricities, Winnow stays
        inside the ``⌊bound/2⌋`` ball, Eliminate never writes past the
        ``bound - ecc`` radius, chain-tip dominance, diameter-witness
        preservation). O(n·m) setup — meant for the fuzzer and tests
        on small graphs, never for benchmark runs.
    """

    engine: Engine = "parallel"
    use_winnow: bool = True
    use_eliminate: bool = True
    use_chain: bool = True
    use_max_degree_start: bool = True
    order: Order = "sequential"
    seed: int = 0
    threshold: float = DEFAULT_THRESHOLD
    directions: bool = True
    keep_traces: bool = False
    bfs_batch_lanes: int = 0
    lane_fallback: bool = True
    chain_tip_batch: bool = False
    prep: str = "off"
    memory_budget: int | None = None
    memory_mode: str = "auto"
    verify: bool = False

    def ablate(self, **changes: object) -> "FDiamConfig":
        """A copy of this config with the given fields changed."""
        return replace(self, **changes)


#: The four variants compared in the paper's Table 5 / Figure 9.
ABLATIONS: dict[str, FDiamConfig] = {
    "F-Diam": FDiamConfig(),
    "no Winnow": FDiamConfig(use_winnow=False),
    "no Elim.": FDiamConfig(use_eliminate=False),
    "no 'u'": FDiamConfig(use_max_degree_start=False),
}
