"""Per-run statistics of the F-Diam driver.

Everything the paper's evaluation section reports about a single run is
collected here:

* BFS-traversal counts under the Table 3 convention (eccentricity BFS
  plus Winnow calls; Eliminate excluded),
* per-stage removal counts — Winnow / Eliminate / Chain / degree-0 —
  as percentages of ``n`` (Table 4),
* per-stage wall-clock time (Figure 8),
* bound evolution (initial 2-sweep bound, number of upgrades, final
  diameter).

Removal attribution follows "first touch": the stage that removed a
vertex from consideration first owns it, even if a later stage's
partial BFS sweeps over it again, matching how the paper's counters
can sum to ~100 %.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.bfs.instrumentation import BFSTrace
from repro.bfs.kernel import WorkspaceStats

__all__ = ["Reason", "StageTimes", "FDiamStats"]


class Reason(IntEnum):
    """Why a vertex was removed from consideration (first touch wins)."""

    ACTIVE = 0  # not removed (transient; none remain at the end of a run)
    WINNOW = 1
    ELIMINATE = 2
    CHAIN = 3
    DEGREE_ZERO = 4
    COMPUTED = 5  # eccentricity explicitly evaluated by a BFS


@dataclass
class StageTimes:
    """Wall-clock seconds per F-Diam stage (paper Figure 8)."""

    init_bfs: float = 0.0  # the two 2-sweep eccentricity BFS calls
    winnow: float = 0.0
    chain: float = 0.0
    eliminate: float = 0.0  # Eliminate calls + extension sweeps
    ecc_bfs: float = 0.0  # main-loop eccentricity BFS calls
    other: float = 0.0

    _STAGES = ("init_bfs", "winnow", "chain", "eliminate", "ecc_bfs", "other")

    def total(self) -> float:
        """Sum over all stages."""
        return sum(getattr(self, s) for s in self._STAGES)

    def fractions(self) -> dict[str, float]:
        """Stage shares of the total runtime (0 when total is 0)."""
        total = self.total()
        if total <= 0:
            return {s: 0.0 for s in self._STAGES}
        return {s: getattr(self, s) / total for s in self._STAGES}


@dataclass
class FDiamStats:
    """Everything measured during one F-Diam run."""

    num_vertices: int = 0
    num_edges: int = 0

    # Traversal counters (Table 3 convention).
    eccentricity_bfs: int = 0
    winnow_calls: int = 0
    eliminate_calls: int = 0

    # Bound evolution.
    initial_bound: int = 0
    bound_updates: int = 0

    # First-touch removal attribution, indexed by Reason.
    removed_by: np.ndarray = field(
        default_factory=lambda: np.zeros(len(Reason), dtype=np.int64)
    )

    times: StageTimes = field(default_factory=StageTimes)
    traces: list[BFSTrace] = field(default_factory=list)

    #: Scratch-buffer accounting of the run's traversal kernel (peak
    #: scratch bytes, buffer-reuse hit rate); attached by FDiamState.
    workspace: WorkspaceStats | None = None

    @property
    def bfs_traversals(self) -> int:
        """Paper Table 3's count: eccentricity BFS + Winnow calls."""
        return self.eccentricity_bfs + self.winnow_calls

    def removal_fractions(self) -> dict[str, float]:
        """Fraction of vertices removed by each stage (paper Table 4).

        The ``computed`` entry covers vertices whose eccentricity was
        explicitly evaluated (the paper folds these sub-percent values
        into rounding).
        """
        n = max(self.num_vertices, 1)
        return {
            "winnow": self.removed_by[Reason.WINNOW] / n,
            "eliminate": self.removed_by[Reason.ELIMINATE] / n,
            "chain": self.removed_by[Reason.CHAIN] / n,
            "degree0": self.removed_by[Reason.DEGREE_ZERO] / n,
            "computed": self.removed_by[Reason.COMPUTED] / n,
        }

    @contextmanager
    def timing(self, stage: str):
        """Accumulate the duration of a ``with`` block into ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(
                self.times, stage, getattr(self.times, stage) + time.perf_counter() - start
            )
