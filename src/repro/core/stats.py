"""Per-run statistics of the F-Diam driver.

Everything the paper's evaluation section reports about a single run is
collected here:

* BFS-traversal counts under the Table 3 convention (eccentricity BFS
  plus Winnow calls; Eliminate excluded),
* per-stage removal counts — Winnow / Eliminate / Chain / degree-0 —
  as percentages of ``n`` (Table 4),
* per-stage wall-clock time (Figure 8),
* bound evolution (initial 2-sweep bound, number of upgrades, final
  diameter).

Removal attribution follows "first touch": the stage that removed a
vertex from consideration first owns it, even if a later stage's
partial BFS sweeps over it again, matching how the paper's counters
can sum to ~100 %.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.bfs.instrumentation import BFSTrace
from repro.bfs.kernel import WorkspaceStats

__all__ = ["Reason", "StageTimes", "PrepStats", "FDiamStats"]


class Reason(IntEnum):
    """Why a vertex was removed from consideration (first touch wins)."""

    ACTIVE = 0  # not removed (transient; none remain at the end of a run)
    WINNOW = 1
    ELIMINATE = 2
    CHAIN = 3
    DEGREE_ZERO = 4
    COMPUTED = 5  # eccentricity explicitly evaluated by a BFS
    PREP = 6  # peeled / collapsed / component-skipped before any BFS
    WARM = 7  # discharged by a warm-start certificate from the cache


@dataclass
class StageTimes:
    """Wall-clock seconds per F-Diam stage (paper Figure 8)."""

    init_bfs: float = 0.0  # the two 2-sweep eccentricity BFS calls
    winnow: float = 0.0
    chain: float = 0.0
    eliminate: float = 0.0  # Eliminate calls + extension sweeps
    ecc_bfs: float = 0.0  # main-loop eccentricity BFS calls
    other: float = 0.0

    _STAGES = ("init_bfs", "winnow", "chain", "eliminate", "ecc_bfs", "other")

    def total(self) -> float:
        """Sum over all stages."""
        return sum(getattr(self, s) for s in self._STAGES)

    def fractions(self) -> dict[str, float]:
        """Stage shares of the total runtime (0 when total is 0)."""
        total = self.total()
        if total <= 0:
            return {s: 0.0 for s in self._STAGES}
        return {s: getattr(self, s) / total for s in self._STAGES}


@dataclass
class PrepStats:
    """Deterministic effectiveness counters of the prep pipeline.

    Everything here is a structural count — vertices/edges removed,
    spine vertices synthesized, components planned, the edge-span
    locality proxy — so benchmark regression comparisons of the prep
    stages stay wall-clock-independent. Attached to
    :attr:`FDiamStats.prep` by :func:`repro.prep.pipeline.fdiam_prepped`.
    """

    #: Canonical stage tokens the run was configured with.
    stages: tuple[str, ...] = ()
    #: Stages the cost-model payoff gate vetoed (``plan`` spec only):
    #: configured but skipped because their modeled wall-clock cost
    #: exceeded the traversal work they could plausibly save.
    stages_gated: tuple[str, ...] = ()

    # Pendant-tree peeling.
    peel_vertices_removed: int = 0
    peel_edges_removed: int = 0
    peel_spine_vertices: int = 0
    peel_anchors: int = 0
    peel_tree_components: int = 0
    peel_correction: int = 0

    # Mirror-vertex collapsing.
    mirror_vertices_removed: int = 0
    mirror_edges_removed: int = 0
    mirror_open_groups: int = 0
    mirror_closed_groups: int = 0
    mirror_max_multiplicity: int = 0
    mirror_correction: int = 0

    # Per-component planning.
    components_total: int = 0
    components_solved: int = 0
    components_skipped: int = 0  # too small to beat the running bound
    lane_components: int = 0
    scalar_components: int = 0
    tip_batch_components: int = 0  # chain tips resolved via lane sweeps
    reorder_strategies: dict[str, int] = field(default_factory=dict)

    #: Reorder bandwidth proxy: sum of |u - v| over undirected edges of
    #: the solved components, before and after permutation.
    edge_span_before: int = 0
    edge_span_after: int = 0

    @property
    def vertices_removed(self) -> int:
        """Original vertices the reductions deleted (peel + mirror)."""
        return self.peel_vertices_removed + self.mirror_vertices_removed

    @property
    def edges_removed(self) -> int:
        """Net edge reduction over both reduction stages."""
        return self.peel_edges_removed + self.mirror_edges_removed


@dataclass
class FDiamStats:
    """Everything measured during one F-Diam run."""

    num_vertices: int = 0
    num_edges: int = 0

    # Traversal counters (Table 3 convention).
    eccentricity_bfs: int = 0
    winnow_calls: int = 0
    eliminate_calls: int = 0

    #: Times the kernel dropped a requested lane batch back to the
    #: scalar path because the cost model advised against it.
    lane_fallbacks: int = 0
    #: The cost model's verdict for each recorded fallback (same order;
    #: see :meth:`LevelSynchronousCostModel.lane_batch_verdict`). What
    #: ``--workspace-stats`` and the bench JSON surface instead of the
    #: bare count.
    lane_fallback_reasons: list[str] = field(default_factory=list)

    # Bound evolution.
    initial_bound: int = 0
    bound_updates: int = 0

    # First-touch removal attribution, indexed by Reason.
    removed_by: np.ndarray = field(
        default_factory=lambda: np.zeros(len(Reason), dtype=np.int64)
    )

    times: StageTimes = field(default_factory=StageTimes)
    traces: list[BFSTrace] = field(default_factory=list)

    #: Scratch-buffer accounting of the run's traversal kernel (peak
    #: scratch bytes, buffer-reuse hit rate); attached by FDiamState.
    workspace: WorkspaceStats | None = None

    #: Reduction-pipeline counters; ``None`` unless the run went through
    #: :func:`repro.prep.pipeline.fdiam_prepped`.
    prep: PrepStats | None = None

    #: Whether the run was seeded from a warm-start cache artifact
    #: (:mod:`repro.cache`): the 2-sweep is replaced by a single witness
    #: BFS and cached certificates discharge the remaining vertices.
    warm_start: bool = False
    #: Whether the witness BFS reproduced the cached diameter exactly
    #: (the fast path); ``False`` means the artifacts were inconsistent,
    #: none of their claims were applied, and the run fell back to the
    #: full cold pruning pipeline.
    warm_verified: bool = False

    @property
    def bfs_traversals(self) -> int:
        """Paper Table 3's count: eccentricity BFS + Winnow calls."""
        return self.eccentricity_bfs + self.winnow_calls

    @property
    def edges_examined(self) -> int:
        """Total arcs the traversal kernel gathered across the run."""
        return self.workspace.edges_examined if self.workspace else 0

    def removal_fractions(self) -> dict[str, float]:
        """Fraction of vertices removed by each stage (paper Table 4).

        The ``computed`` entry covers vertices whose eccentricity was
        explicitly evaluated (the paper folds these sub-percent values
        into rounding). The ``prep`` entry counts vertices the reduction
        pipeline deleted (or skipped with whole components) before any
        BFS; for prepped runs the fractions cover synthetic spine
        vertices too, so they are reported against the original ``n``
        and may sum slightly above 1.
        """
        n = max(self.num_vertices, 1)
        return {
            "winnow": self.removed_by[Reason.WINNOW] / n,
            "eliminate": self.removed_by[Reason.ELIMINATE] / n,
            "chain": self.removed_by[Reason.CHAIN] / n,
            "degree0": self.removed_by[Reason.DEGREE_ZERO] / n,
            "computed": self.removed_by[Reason.COMPUTED] / n,
            "prep": self.removed_by[Reason.PREP] / n,
            "warm": self.removed_by[Reason.WARM] / n,
        }

    def merge_from(self, other: FDiamStats) -> None:
        """Fold a per-component sub-run's counters into this aggregate.

        Used by the prep pipeline to combine the per-component F-Diam
        runs into one run-level view: traversal counters, removal
        attribution, stage times, and traces add up; workspace
        accounting sums its counters and keeps the larger peak.
        """
        self.eccentricity_bfs += other.eccentricity_bfs
        self.winnow_calls += other.winnow_calls
        self.eliminate_calls += other.eliminate_calls
        self.lane_fallbacks += other.lane_fallbacks
        self.lane_fallback_reasons.extend(other.lane_fallback_reasons)
        self.bound_updates += other.bound_updates
        self.removed_by += other.removed_by
        for stage in StageTimes._STAGES:
            setattr(
                self.times,
                stage,
                getattr(self.times, stage) + getattr(other.times, stage),
            )
        self.traces.extend(other.traces)
        if other.workspace is not None:
            if self.workspace is None:
                self.workspace = WorkspaceStats()
            mine, theirs = self.workspace, other.workspace
            mine.buffer_requests += theirs.buffer_requests
            mine.buffer_reuses += theirs.buffer_reuses
            mine.lane_requests += theirs.lane_requests
            mine.lane_reuses += theirs.lane_reuses
            mine.lane_words_allocated += theirs.lane_words_allocated
            mine.allocated_bytes += theirs.allocated_bytes
            mine.peak_scratch_bytes = max(
                mine.peak_scratch_bytes, theirs.peak_scratch_bytes
            )
            mine.epochs += theirs.epochs
            mine.edges_examined += theirs.edges_examined
            mine.owned_bytes = max(mine.owned_bytes, theirs.owned_bytes)
            mine.shm_segments += theirs.shm_segments
            mine.shm_bytes = max(mine.shm_bytes, theirs.shm_bytes)
            mine.shm_resident += theirs.shm_resident

    @contextmanager
    def timing(self, stage: str):
        """Accumulate the duration of a ``with`` block into ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(
                self.times, stage, getattr(self.times, stage) + time.perf_counter() - start
            )
