"""Concurrent-BFS study — the parallelization strategy the paper rejected.

Paper §4.6: "As an alternative, we also tried running multiple BFS
traversals in parallel. However, this did not yield a speedup because it
resulted in too much redundant work, as concurrent Eliminate operations
would overlap in removing vertices from consideration."

This module reproduces that experiment. :func:`fdiam_concurrent` runs
the F-Diam main loop in *batches* of ``batch_size`` eccentricity
evaluations: the vertices of a batch are chosen from the active set
up-front and all evaluated before any of their Eliminate operations are
applied — exactly the information structure of ``batch_size`` BFS
traversals running simultaneously (none sees the removals the others
are about to cause). The returned report counts the **redundant
evaluations**: batch members that the preceding members' Eliminates
would have removed had they run serially. Batch size 1 is exactly the
sequential F-Diam main loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chain import process_chains
from repro.core.config import FDiamConfig
from repro.core.eliminate import eliminate
from repro.core.extend import extend_eliminated
from repro.core.state import FDiamState
from repro.core.stats import FDiamStats, Reason
from repro.core.sweep import two_sweep
from repro.core.winnow import winnow
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["ConcurrentReport", "fdiam_concurrent"]


@dataclass(frozen=True)
class ConcurrentReport:
    """Outcome of a concurrent-batch F-Diam run."""

    diameter: int
    connected: bool
    batch_size: int
    stats: FDiamStats
    #: Eccentricity BFS calls that a serial order would have skipped —
    #: the paper's "redundant work".
    redundant_evaluations: int

    @property
    def redundancy_fraction(self) -> float:
        """Share of eccentricity traversals that were redundant."""
        total = self.stats.eccentricity_bfs
        return self.redundant_evaluations / total if total else 0.0


def fdiam_concurrent(
    graph: CSRGraph,
    batch_size: int,
    config: FDiamConfig | None = None,
) -> ConcurrentReport:
    """F-Diam with ``batch_size`` simultaneous eccentricity traversals.

    The result is still exact — concurrency only defers pruning, never
    weakens it — but the traversal count grows with the batch size,
    which is precisely why the paper parallelized *within* each BFS
    instead of across BFS calls.
    """
    if batch_size < 1:
        raise AlgorithmError("batch_size must be >= 1")
    if graph.num_vertices == 0:
        raise AlgorithmError("fdiam_concurrent requires a non-empty graph")
    config = config or FDiamConfig()
    state = FDiamState(graph, config)
    n = graph.num_vertices

    isolated = graph.isolated_vertices()
    if len(isolated):
        state.remove(isolated, np.int64(0), Reason.DEGREE_ZERO)
    start = graph.max_degree_vertex() if config.use_max_degree_start else 0

    sweep = two_sweep(state, start)
    state.bound = sweep.bound
    state.stats.initial_bound = sweep.bound
    connected = sweep.visited_from_start == n

    if config.use_winnow:
        winnow(state, start, state.bound)
    if config.use_chain:
        process_chains(state)

    redundant = 0
    cursor = 0
    while True:
        # Claim the next batch of active vertices (id order, like the
        # sequential driver).
        batch: list[int] = []
        while cursor < n and len(batch) < batch_size:
            if state.is_active(cursor):
                batch.append(cursor)
            cursor += 1
        if not batch:
            if cursor >= n:
                # One final sweep in case pruning re-activated nothing
                # behind the cursor (it cannot), then stop.
                break
            continue

        # Phase 1 — all traversals of the batch run "simultaneously":
        # every member computes its true eccentricity with no knowledge
        # of the others' pruning.
        eccs = [state.ecc_bfs(v).eccentricity for v in batch]

        # Phase 2 — apply the outcomes in order, counting how many
        # members a serial schedule would never have evaluated.
        for i, (v, ecc_v) in enumerate(zip(batch, eccs)):
            if i > 0 and not state.is_active(v):
                redundant += 1  # an earlier member's pruning covers v
            state.remove(v, np.int64(ecc_v), Reason.COMPUTED)
            if ecc_v > state.bound:
                old = state.bound
                state.bound = ecc_v
                state.stats.bound_updates += 1
                if config.use_winnow:
                    winnow(state, start, state.bound)
                if config.use_eliminate:
                    extend_eliminated(state, old, state.bound)
            elif config.use_eliminate and ecc_v < state.bound:
                eliminate(state, v, ecc_v, state.bound)

    return ConcurrentReport(
        diameter=state.bound,
        connected=connected,
        batch_size=batch_size,
        stats=state.stats,
        redundant_evaluations=redundant,
    )
