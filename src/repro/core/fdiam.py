"""The F-Diam driver (paper Algorithm 1).

Orchestrates the stages:

1. remove degree-0 vertices (eccentricity 0, no computation needed),
2. 2-sweep from the max-degree vertex ``u`` → initial ``bound``,
3. Winnow the ball ``B(u, ⌊bound/2⌋)``,
4. Chain Processing,
5. loop over the remaining active vertices: compute the eccentricity;
   on a larger value, upgrade the bound, extend the winnow ball, and
   extend all eliminated regions with one multi-source sweep; otherwise
   Eliminate around the vertex.

The final bound is the exact largest eccentricity over all connected
components — the diameter for connected inputs, and the paper's
reported "CC diameter" (with an infinity flag) for disconnected ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.chain import process_chains
from repro.core.config import FDiamConfig
from repro.core.eliminate import eliminate
from repro.core.extend import extend_eliminated
from repro.core.state import FDiamState
from repro.core.stats import FDiamStats, Reason
from repro.core.sweep import two_sweep
from repro.core.winnow import winnow
from repro.errors import AlgorithmError, BenchmarkTimeout
from repro.graph.csr import CSRGraph

__all__ = ["DiameterResult", "fdiam", "fdiam_with_state"]


@dataclass(frozen=True)
class DiameterResult:
    """Result of an exact diameter computation.

    Attributes
    ----------
    diameter:
        The largest eccentricity in any connected component. For a
        connected graph this is the graph diameter; for a disconnected
        graph the true diameter is infinite (see ``infinite``) and this
        value is what the paper's codes report alongside the flag.
    connected:
        Whether the graph is a single connected component.
    infinite:
        ``True`` iff the graph is disconnected (so the true diameter is
        unbounded).
    stats:
        Full per-run statistics (traversal counts, removal attribution,
        stage timings).
    """

    diameter: int
    connected: bool
    infinite: bool
    stats: FDiamStats

    def __str__(self) -> str:
        if self.infinite:
            return f"infinite (largest component eccentricity: {self.diameter})"
        return str(self.diameter)


def fdiam(
    graph: CSRGraph,
    config: FDiamConfig | None = None,
    *,
    deadline: float | None = None,
) -> DiameterResult:
    """Compute the exact diameter of ``graph`` (see :func:`fdiam_with_state`).

    This is the public entry point; it discards the internal run state.
    With ``config.prep`` set (anything other than ``"off"``), the run
    first goes through the exactness-preserving reduction pipeline of
    :mod:`repro.prep` — pendant-tree peeling, mirror collapsing,
    per-component reordering and engine planning — and the per-component
    results are merged back into one :class:`DiameterResult` carrying
    the identical diameter (and infinity convention) as the plain path.
    """
    effective = config or FDiamConfig()
    if effective.prep not in ("", "off", "none"):
        # Local import: repro.prep sits above the core layer.
        from repro.prep.pipeline import fdiam_prepped

        return fdiam_prepped(graph, effective, deadline=deadline)
    result, _ = fdiam_with_state(graph, effective, deadline=deadline)
    return result


def fdiam_with_state(
    graph: CSRGraph,
    config: FDiamConfig | None = None,
    *,
    deadline: float | None = None,
) -> tuple[DiameterResult, FDiamState]:
    """Compute the exact diameter of ``graph`` with the F-Diam algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph (any :class:`CSRGraph`); may be
        disconnected.
    config:
        Tunables and ablation switches; defaults to the full algorithm
        with the vectorized engine.
    deadline:
        Optional ``time.perf_counter()`` instant after which the run
        aborts with :class:`~repro.errors.BenchmarkTimeout` — the same
        per-input budget mechanism the baselines use, mirroring the
        paper's 2.5-hour cap (which F-Diam itself never hit, but the
        ablated variants in Table 5/Figure 9 do). The deadline is
        threaded into the run's traversal kernel, so it is enforced at
        every BFS *level* — a huge 2-sweep, Winnow, or Extend phase
        aborts mid-traversal instead of only between eccentricity
        calls.

    Returns
    -------
    (DiameterResult, FDiamState)
        The result plus the final run state (per-vertex status and
        removal attribution), which the invariant tests and the
        analysis examples inspect.

    Raises
    ------
    AlgorithmError
        If the graph has no vertices.
    BenchmarkTimeout
        If ``deadline`` passes mid-run.
    """
    if graph.num_vertices == 0:
        raise AlgorithmError("fdiam() requires a graph with at least one vertex")
    config = config or FDiamConfig()
    state = FDiamState(graph, config, deadline=deadline)
    stats = state.stats
    n = graph.num_vertices

    with stats.timing("other"):
        # Degree-0 vertices have eccentricity 0 and require no BFS
        # (paper Table 4's last column).
        isolated = graph.isolated_vertices()
        if len(isolated):
            state.remove(isolated, np.int64(0), Reason.DEGREE_ZERO)
        start = graph.max_degree_vertex() if config.use_max_degree_start else 0

    # ------------------------------------------------------------------
    # Initial bound (Algorithm 1 lines 1-3).
    # ------------------------------------------------------------------
    with stats.timing("init_bfs"):
        sweep = two_sweep(state, start)
    state.bound = sweep.bound
    stats.initial_bound = sweep.bound
    connected = sweep.visited_from_start == n

    # With lanes requested, re-check against the cost model now that the
    # 2-sweep has produced a real diameter lower bound: merged lane
    # waves lose to the scalar path on high-diameter graphs (road maps),
    # where the word traffic is spread over hundreds of thin levels.
    if (
        config.lane_fallback
        and config.bfs_batch_lanes > 0
        and state.kernel.batch_lanes > 0
    ):
        # Call-time import: repro.parallel's package init pulls the
        # scaling study, which itself imports this module.
        from repro.parallel.costmodel import LevelSynchronousCostModel

        model = LevelSynchronousCostModel()
        if not model.lane_batch_advisable(
            state.bound, config.bfs_batch_lanes, merged=True
        ):
            state.kernel.batch_lanes = 0
            stats.lane_fallbacks += 1

    # ------------------------------------------------------------------
    # Bulk pruning (Algorithm 1 lines 4-5).
    # ------------------------------------------------------------------
    if config.use_winnow:
        with stats.timing("winnow"):
            winnow(state, start, state.bound)
    if config.use_chain:
        with stats.timing("chain"):
            process_chains(state)
        # Chain-tip batching (config.chain_tip_batch) may have raised the
        # bound past the 2-sweep value; resume the incremental winnow so
        # the wider ball prunes before the main loop starts.
        if config.use_winnow and state.bound > sweep.bound:
            with stats.timing("winnow"):
                winnow(state, start, state.bound)

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1 lines 6-21).
    # ------------------------------------------------------------------
    if config.order == "random":
        order = np.random.default_rng(config.seed).permutation(n)
    else:
        order = np.arange(n)

    for v in order:
        v = int(v)
        if not state.is_active(v):
            continue
        if deadline is not None and time.perf_counter() > deadline:
            raise BenchmarkTimeout(
                f"F-Diam exceeded its time budget after "
                f"{stats.eccentricity_bfs} eccentricity BFS calls"
            )
        with stats.timing("ecc_bfs"):
            ecc_v = state.ecc_bfs(v).eccentricity
        state.remove(v, np.int64(ecc_v), Reason.COMPUTED)

        if ecc_v > state.bound:
            old = state.bound
            state.bound = ecc_v
            stats.bound_updates += 1
            if config.use_winnow:
                with stats.timing("winnow"):
                    winnow(state, start, state.bound)
            if config.use_eliminate:
                with stats.timing("eliminate"):
                    extend_eliminated(state, old, state.bound)
        elif config.use_eliminate and ecc_v < state.bound:
            with stats.timing("eliminate"):
                eliminate(state, v, ecc_v, state.bound)
        # ecc_v == bound: "F-Diam only eliminates v" — already done above.

    result = DiameterResult(
        diameter=state.bound,
        connected=connected,
        infinite=not connected,
        stats=stats,
    )
    return result, state
