"""The F-Diam driver (paper Algorithm 1).

Orchestrates the stages:

1. remove degree-0 vertices (eccentricity 0, no computation needed),
2. 2-sweep from the max-degree vertex ``u`` → initial ``bound``,
3. Winnow the ball ``B(u, ⌊bound/2⌋)``,
4. Chain Processing,
5. loop over the remaining active vertices: compute the eccentricity;
   on a larger value, upgrade the bound, extend the winnow ball, and
   extend all eliminated regions with one multi-source sweep; otherwise
   Eliminate around the vertex.

The final bound is the exact largest eccentricity over all connected
components — the diameter for connected inputs, and the paper's
reported "CC diameter" (with an infinity flag) for disconnected ones.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.chain import process_chains
from repro.core.config import FDiamConfig
from repro.core.eliminate import eliminate
from repro.core.extend import extend_eliminated
from repro.core.state import MAX_BOUND, WINNOWED, FDiamState
from repro.core.stats import FDiamStats, Reason
from repro.core.sweep import two_sweep, witness_sweep
from repro.core.winnow import restore_winnow, winnow
from repro.errors import AlgorithmError, BenchmarkTimeout
from repro.graph.csr import CSRGraph

__all__ = ["DiameterResult", "fdiam", "fdiam_with_state"]


@dataclass(frozen=True)
class DiameterResult:
    """Result of an exact diameter computation.

    Attributes
    ----------
    diameter:
        The largest eccentricity in any connected component. For a
        connected graph this is the graph diameter; for a disconnected
        graph the true diameter is infinite (see ``infinite``) and this
        value is what the paper's codes report alongside the flag.
    connected:
        Whether the graph is a single connected component.
    infinite:
        ``True`` iff the graph is disconnected (so the true diameter is
        unbounded).
    stats:
        Full per-run statistics (traversal counts, removal attribution,
        stage timings).
    """

    diameter: int
    connected: bool
    infinite: bool
    stats: FDiamStats

    def __str__(self) -> str:
        if self.infinite:
            return f"infinite (largest component eccentricity: {self.diameter})"
        return str(self.diameter)


def fdiam(
    graph: CSRGraph,
    config: FDiamConfig | None = None,
    *,
    deadline: float | None = None,
    warm=None,
) -> DiameterResult:
    """Compute the exact diameter of ``graph`` (see :func:`fdiam_with_state`).

    This is the public entry point; it discards the internal run state.
    With ``config.prep`` set (anything other than ``"off"``), the run
    first goes through the exactness-preserving reduction pipeline of
    :mod:`repro.prep` — pendant-tree peeling, mirror collapsing,
    per-component reordering and engine planning — and the per-component
    results are merged back into one :class:`DiameterResult` carrying
    the identical diameter (and infinity convention) as the plain path.

    ``warm`` seeds the run from cached certificates (see
    :func:`fdiam_with_state`); it supersedes ``prep``, whose one-time
    savings the cached artifacts already subsume.
    """
    effective = config or FDiamConfig()
    if warm is not None:
        result, _ = fdiam_with_state(
            graph, effective.ablate(prep="off"), deadline=deadline, warm=warm
        )
        return result
    if effective.prep not in ("", "off", "none"):
        # Local import: repro.prep sits above the core layer.
        from repro.prep.pipeline import fdiam_prepped

        return fdiam_prepped(graph, effective, deadline=deadline)
    result, _ = fdiam_with_state(graph, effective, deadline=deadline)
    return result


def fdiam_with_state(
    graph: CSRGraph,
    config: FDiamConfig | None = None,
    *,
    deadline: float | None = None,
    warm=None,
) -> tuple[DiameterResult, FDiamState]:
    """Compute the exact diameter of ``graph`` with the F-Diam algorithm.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph (any :class:`CSRGraph`); may be
        disconnected.
    config:
        Tunables and ablation switches; defaults to the full algorithm
        with the vectorized engine.
    warm:
        Optional warm-start artifacts from a previous run on the *same*
        graph (:class:`repro.cache.WarmArtifacts` or anything with the
        same ``witness`` / ``diameter`` / ``status`` / winnow-ball
        attributes). The caller is responsible for the graph match
        (the cache layer enforces it by content digest). Exactness
        never rests on the cache: one fresh BFS from the cached witness
        establishes a true diameter lower bound; when it reproduces the
        cached diameter, every cached upper bound is a certificate at
        or below it and the run finishes after that single traversal.
        When it does not (inconsistent artifacts), a warning is issued,
        no cached facts are applied, and the normal
        Winnow/Chain/Eliminate machinery runs cold — only the witness
        BFS's own eccentricity is kept as the initial bound — so the
        result is exact either way. Artifacts whose
        shape does not match the graph are ignored with a warning.
    deadline:
        Optional ``time.perf_counter()`` instant after which the run
        aborts with :class:`~repro.errors.BenchmarkTimeout` — the same
        per-input budget mechanism the baselines use, mirroring the
        paper's 2.5-hour cap (which F-Diam itself never hit, but the
        ablated variants in Table 5/Figure 9 do). The deadline is
        threaded into the run's traversal kernel, so it is enforced at
        every BFS *level* — a huge 2-sweep, Winnow, or Extend phase
        aborts mid-traversal instead of only between eccentricity
        calls.

    Returns
    -------
    (DiameterResult, FDiamState)
        The result plus the final run state (per-vertex status and
        removal attribution), which the invariant tests and the
        analysis examples inspect.

    Raises
    ------
    AlgorithmError
        If the graph has no vertices.
    BenchmarkTimeout
        If ``deadline`` passes mid-run.
    """
    if graph.num_vertices == 0:
        raise AlgorithmError("fdiam() requires a graph with at least one vertex")
    config = config or FDiamConfig()
    state = FDiamState(graph, config, deadline=deadline)
    stats = state.stats
    n = graph.num_vertices

    with stats.timing("other"):
        # Degree-0 vertices have eccentricity 0 and require no BFS
        # (paper Table 4's last column).
        isolated = graph.isolated_vertices()
        if len(isolated):
            state.remove(isolated, np.int64(0), Reason.DEGREE_ZERO)
        start = graph.max_degree_vertex() if config.use_max_degree_start else 0
        if warm is not None and not _warm_usable(warm, n):
            warnings.warn(
                "warm-start artifacts do not match the graph shape; "
                "running cold",
                stacklevel=2,
            )
            warm = None

    # ------------------------------------------------------------------
    # Initial bound (Algorithm 1 lines 1-3) — or, warm, one verifying
    # BFS from the cached diameter witness.
    # ------------------------------------------------------------------
    with stats.timing("init_bfs"):
        if warm is not None:
            witness = int(warm.witness)
            if not 0 <= witness < n:
                witness = start
            sweep = witness_sweep(state, witness)
            stats.warm_start = True
            stats.warm_verified = sweep.bound == int(warm.diameter)
        else:
            sweep = two_sweep(state, start)
    state.bound = sweep.bound
    stats.initial_bound = sweep.bound
    connected = sweep.visited_from_start == n
    if state.oracle is not None:
        state.oracle.check_stage(state, "two-sweep")

    # With lanes requested, re-check against the cost model now that the
    # 2-sweep has produced a real diameter lower bound: merged lane
    # waves lose to the scalar path on high-diameter graphs (road maps),
    # where the word traffic is spread over hundreds of thin levels.
    if (
        config.lane_fallback
        and config.bfs_batch_lanes > 0
        and state.kernel.batch_lanes > 0
    ):
        # Call-time import: repro.parallel's package init pulls the
        # scaling study, which itself imports this module.
        from repro.parallel.costmodel import LevelSynchronousCostModel

        model = LevelSynchronousCostModel()
        ok, reason = model.lane_batch_verdict(
            state.bound, config.bfs_batch_lanes, merged=True
        )
        if not ok:
            state.kernel.batch_lanes = 0
            stats.lane_fallbacks += 1
            stats.lane_fallback_reasons.append(reason)

    # ------------------------------------------------------------------
    # Bulk pruning (Algorithm 1 lines 4-5). A *verified* warm start
    # (the witness reproduced the cached diameter) replaces all of it:
    # the cold run proved no eccentricity exceeds the cached diameter,
    # so every vertex is discharged by certificate and the main loop
    # finds nothing active. An unverified warm start falls back to the
    # full pruning machinery, seeded with whatever cached facts remain
    # valid under the fresh witness bound.
    # ------------------------------------------------------------------
    if warm is not None and stats.warm_verified:
        if config.use_winnow and _restore_warm_ball(state, warm):
            # Later winnow extensions must use the pinned centre.
            start = int(warm.winnow_center)
        with stats.timing("other"):
            _apply_warm_certificates(state, warm)
    else:
        if warm is not None:
            # An inconsistent sidecar discredits *all* of its claims, so
            # none of the cached facts are applied; the witness BFS's
            # eccentricity is its own (real) fact and is kept as the
            # initial bound for an otherwise cold run.
            warnings.warn(
                f"warm-start witness eccentricity {sweep.bound} does not "
                f"reproduce the cached diameter {int(warm.diameter)}; "
                "distrusting the cached certificates and running cold",
                stacklevel=2,
            )
        if config.use_winnow:
            with stats.timing("winnow"):
                winnow(state, start, state.bound)
        if config.use_chain:
            with stats.timing("chain"):
                process_chains(state)
            # Chain-tip batching (config.chain_tip_batch) may have raised
            # the bound past the 2-sweep value; resume the incremental
            # winnow so the wider ball prunes before the main loop starts.
            if config.use_winnow and state.bound > sweep.bound:
                with stats.timing("winnow"):
                    winnow(state, start, state.bound)

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1 lines 6-21).
    # ------------------------------------------------------------------
    if config.order == "random":
        order = np.random.default_rng(config.seed).permutation(n)
    else:
        order = np.arange(n)

    for v in order:
        v = int(v)
        if not state.is_active(v):
            continue
        if deadline is not None and time.perf_counter() > deadline:
            raise BenchmarkTimeout(
                f"F-Diam exceeded its time budget after "
                f"{stats.eccentricity_bfs} eccentricity BFS calls"
            )
        with stats.timing("ecc_bfs"):
            ecc_v = state.ecc_bfs(v).eccentricity
        if state.oracle is not None:
            state.oracle.check_computed(state, v, ecc_v)
        state.remove(v, np.int64(ecc_v), Reason.COMPUTED)

        if ecc_v > state.bound:
            old = state.bound
            state.bound = ecc_v
            stats.bound_updates += 1
            if config.use_winnow:
                with stats.timing("winnow"):
                    winnow(state, start, state.bound)
            if config.use_eliminate:
                with stats.timing("eliminate"):
                    extend_eliminated(state, old, state.bound)
        elif config.use_eliminate and ecc_v < state.bound:
            with stats.timing("eliminate"):
                eliminate(state, v, ecc_v, state.bound)
        # ecc_v == bound: "F-Diam only eliminates v" — already done above.

    if state.oracle is not None:
        state.oracle.check_final(state, state.bound, connected)
    result = DiameterResult(
        diameter=state.bound,
        connected=connected,
        infinite=not connected,
        stats=stats,
    )
    return result, state


# ----------------------------------------------------------------------
# Warm-start helpers (the cache layer builds the artifacts; exactness
# is enforced here, where the fresh witness bound lives).
# ----------------------------------------------------------------------
def _warm_usable(warm, n: int) -> bool:
    """Whether the artifacts are structurally valid for an ``n``-graph."""
    status = getattr(warm, "status", None)
    if status is None or len(status) != n:
        return False
    return getattr(warm, "witness", None) is not None


def _apply_warm_certificates(state: FDiamState, warm) -> None:
    """Discharge every active vertex from the verified cached run.

    Sound because the witness BFS reproduced the cached diameter ``D``
    on this exact graph: the cold run's completed search proved
    ``ecc(v) <= D`` for *every* vertex, so ``D`` (tightened to the
    cached per-vertex value where one was recorded) is a valid upper
    bound at or below the current true lower bound — exactly the
    condition under which F-Diam removes a vertex without a traversal.
    """
    status = np.asarray(warm.status, dtype=np.int64)
    bound = np.int64(state.bound)
    numeric = (status >= 0) & (status < MAX_BOUND)
    ub = np.where(numeric, np.minimum(status, bound), bound)
    active = np.flatnonzero(state.active_mask())
    if len(active):
        state.remove_bounded(active, ub[active], Reason.WARM)


def _restore_warm_ball(state: FDiamState, warm) -> bool:
    """Re-adopt the cached winnow ball; True on success.

    Only called on the verified path, where the witness bound equals
    the cached diameter — the ``radius <= bound // 2`` recheck is then
    exactly the condition the cold run grew the ball under, but it is
    enforced again here so a sidecar carrying an oversized ball can
    never smuggle an unsound discard past the witness verification.
    """
    n = state.graph.num_vertices
    center = int(getattr(warm, "winnow_center", -1))
    radius = int(getattr(warm, "winnow_radius", 0))
    visited = getattr(warm, "winnow_visited", None)
    frontier = getattr(warm, "winnow_frontier", None)
    if not 0 <= center < n or visited is None or len(visited) != n:
        return False
    if frontier is None or radius > state.bound // 2:
        return False
    with state.stats.timing("winnow"):
        restore_winnow(state, center, radius, visited, frontier)
        ball = np.flatnonzero(np.asarray(warm.status, dtype=np.int64) == WINNOWED)
        if len(ball):
            state.remove(ball, WINNOWED, Reason.WARM)
    return True
