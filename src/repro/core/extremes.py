"""Radius, center, periphery, and the full eccentricity spectrum.

The paper centres on the diameter (the maximum eccentricity) but leans
on the wider eccentricity structure throughout: Theorem 3 relates the
radius to the diameter, Winnow wants a near-central starting vertex,
and the periphery ("vertices with eccentricities close to the
diameter") is what realizes the diameter. This module rounds the
library out with exact computations of those quantities using the same
substrate and the standard two-sided bounding scheme (the machinery of
:mod:`repro.baselines.takes_kosters`, generalized):

* per-vertex bounds ``lb[v] <= ecc(v) <= ub[v]`` refined after each
  exact eccentricity BFS via both triangle inequalities,
* a target-driven candidate rule — a vertex stays interesting only if
  its bounds still straddle the answer the caller asked for,
* selection alternating between the extremes (big-``ub`` hunters and
  small-``lb`` centre candidates), which is what makes the scheme
  converge in few traversals in practice.

Unlike the diameter-only F-Diam driver, these routines cannot use
Winnow (Theorem 2's two-witness guarantee is specific to the maximum),
so they cost more BFS calls — the comparison is itself instructive and
is exercised in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.eccentricity import Engine
from repro.bfs.kernel import TraversalKernel
from repro.errors import AlgorithmError
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph

__all__ = ["EccentricitySpectrum", "eccentricity_spectrum", "radius", "center", "periphery"]


@dataclass(frozen=True)
class EccentricitySpectrum:
    """Exact eccentricity structure of a graph.

    For disconnected graphs the eccentricities are per-component (BFS
    level counts), matching the convention used everywhere else in the
    library; radius/center are reported for the **largest** component
    (the paper's "largest connected component" convention) and the
    periphery realizes the largest eccentricity over all components.
    """

    eccentricities: np.ndarray
    radius: int
    diameter: int
    center: np.ndarray  # vertices of the largest component with ecc == radius
    periphery: np.ndarray  # vertices with ecc == diameter (any component)
    connected: bool
    bfs_traversals: int


def eccentricity_spectrum(
    graph: CSRGraph, *, engine: Engine = "parallel"
) -> EccentricitySpectrum:
    """Compute every vertex's exact eccentricity with bound pruning.

    The bounding scheme only avoids BFS calls for vertices whose bounds
    meet (``lb == ub``); since *all* eccentricities are requested, the
    pruning is purely opportunistic, yet on real topologies it still
    resolves the bulk of the vertices without a dedicated traversal.
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("eccentricity_spectrum on an empty graph")
    kernel = TraversalKernel(graph, engine=engine)

    cc = connected_components(graph)
    ecc_lb = np.zeros(n, dtype=np.int64)
    ecc_ub = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    ecc_ub[graph.degrees == 0] = 0
    traversals = 0

    for comp in range(cc.num_components):
        vertices = cc.vertices_of(comp)
        if len(vertices) < 2:
            continue
        in_comp = np.zeros(n, dtype=bool)
        in_comp[vertices] = True
        pick_high = True
        while True:
            open_mask = in_comp & (ecc_lb != ecc_ub)
            if not open_mask.any():
                break
            cand = np.flatnonzero(open_mask)
            if pick_high:
                v = int(cand[int(np.argmax(ecc_ub[cand]))])
            else:
                v = int(cand[int(np.argmin(ecc_lb[cand]))])
            pick_high = not pick_high
            res = kernel.bfs(v, record_dist=True)
            traversals += 1
            ecc_v = res.eccentricity
            dist = res.dist
            reached = dist >= 0
            np.maximum(
                ecc_lb,
                np.where(reached, np.maximum(ecc_v - dist, dist), ecc_lb),
                out=ecc_lb,
            )
            np.minimum(ecc_ub, np.where(reached, ecc_v + dist, ecc_ub), out=ecc_ub)
            ecc_lb[v] = ecc_ub[v] = ecc_v
            # The distances were folded into the bounds; recycle the
            # buffer so every refinement after the first reuses it.
            kernel.workspace.release_dist(dist)

    ecc = ecc_lb  # bounds have met everywhere
    diameter = int(ecc.max()) if n else 0
    connected = cc.num_components <= 1
    if cc.num_components:
        largest = cc.vertices_of(cc.largest())
        if len(largest) >= 2:
            rad = int(ecc[largest].min())
        else:
            rad = 0
        center_mask = np.zeros(n, dtype=bool)
        center_mask[largest] = True
        center_vertices = np.flatnonzero(center_mask & (ecc == rad))
    else:
        rad = 0
        center_vertices = np.empty(0, dtype=np.int64)
    periphery_vertices = (
        np.flatnonzero(ecc == diameter) if diameter > 0 else np.empty(0, dtype=np.int64)
    )
    return EccentricitySpectrum(
        eccentricities=ecc,
        radius=rad,
        diameter=diameter,
        center=center_vertices,
        periphery=periphery_vertices,
        connected=connected,
        bfs_traversals=traversals,
    )


def radius(graph: CSRGraph, *, engine: Engine = "parallel") -> int:
    """Exact radius (minimum eccentricity) of the largest component."""
    return eccentricity_spectrum(graph, engine=engine).radius


def center(graph: CSRGraph, *, engine: Engine = "parallel") -> np.ndarray:
    """Vertices of the largest component whose eccentricity equals the radius."""
    return eccentricity_spectrum(graph, engine=engine).center


def periphery(graph: CSRGraph, *, engine: Engine = "parallel") -> np.ndarray:
    """All vertices whose eccentricity equals the (CC) diameter."""
    return eccentricity_spectrum(graph, engine=engine).periphery
