"""Radius, center, periphery, and the full eccentricity spectrum.

The paper centres on the diameter (the maximum eccentricity) but leans
on the wider eccentricity structure throughout: Theorem 3 relates the
radius to the diameter, Winnow wants a near-central starting vertex,
and the periphery ("vertices with eccentricities close to the
diameter") is what realizes the diameter. This module rounds the
library out with exact computations of those quantities using the same
substrate and the standard two-sided bounding scheme (the machinery of
:mod:`repro.baselines.takes_kosters`, generalized):

* per-vertex bounds ``lb[v] <= ecc(v) <= ub[v]`` refined after each
  exact eccentricity BFS via both triangle inequalities,
* a target-driven candidate rule — a vertex stays interesting only if
  its bounds still straddle the answer the caller asked for,
* selection alternating between the extremes (big-``ub`` hunters and
  small-``lb`` centre candidates), which is what makes the scheme
  converge in few traversals in practice.

Unlike the diameter-only F-Diam driver, these routines cannot use
Winnow (Theorem 2's two-witness guarantee is specific to the maximum),
so they cost more BFS calls — the comparison is itself instructive and
is exercised in the benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.bfs.eccentricity import Engine
from repro.bfs.kernel import TraversalKernel
from repro.core.state import MAX_BOUND
from repro.errors import AlgorithmError
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph

__all__ = ["EccentricitySpectrum", "eccentricity_spectrum", "radius", "center", "periphery"]


@dataclass(frozen=True)
class EccentricitySpectrum:
    """Exact eccentricity structure of a graph.

    For disconnected graphs the eccentricities are per-component (BFS
    level counts), matching the convention used everywhere else in the
    library; radius/center are reported for the **largest** component
    (the paper's "largest connected component" convention) and the
    periphery realizes the largest eccentricity over all components.
    """

    eccentricities: np.ndarray
    radius: int
    diameter: int
    center: np.ndarray  # vertices of the largest component with ecc == radius
    periphery: np.ndarray  # vertices with ecc == diameter (any component)
    connected: bool
    bfs_traversals: int
    #: Arcs gathered by the traversals (0 when the engine doesn't count).
    edges_examined: int = 0
    #: Level-synchronous sweeps executed. The scalar path runs one sweep
    #: per traversal; the bit-parallel path amortizes up to
    #: ``batch_lanes`` traversals per sweep, so the ratio
    #: ``bfs_traversals / sweeps`` is the edge-gather saving.
    sweeps: int = 0
    #: Mean fraction of allocated lane bits actually carrying a source
    #: (1.0 for the scalar path; < 1 when the last batch is ragged).
    lane_occupancy: float = 0.0
    #: Whether a requested lane batch was dropped back to the scalar
    #: path because the cost model advised against it (``auto_fallback``).
    lane_fallback: bool = False
    #: The cost model's verdict when ``lane_fallback`` is set, else "".
    lane_fallback_reason: str = ""
    #: Sweep backend the refinement rounds ran on: "scalar" for the
    #: one-vertex-at-a-time loop, else the executor's backend name
    #: ("bitparallel" / "multiprocess").
    backend: str = "scalar"
    #: Worker processes the rounds were spread over (1 = in-process).
    workers: int = 1


def _refine_bounds(
    ecc_lb: np.ndarray, ecc_ub: np.ndarray, v: int, ecc_v: int, dist: np.ndarray
) -> None:
    """Fold one exact eccentricity's distances into the global bounds."""
    reached = dist >= 0
    np.maximum(
        ecc_lb,
        np.where(reached, np.maximum(ecc_v - dist, dist), ecc_lb),
        out=ecc_lb,
    )
    np.minimum(ecc_ub, np.where(reached, ecc_v + dist, ecc_ub), out=ecc_ub)
    ecc_lb[v] = ecc_ub[v] = ecc_v


def _pick_batch(
    cand: np.ndarray, ecc_lb: np.ndarray, ecc_ub: np.ndarray, lanes: int
) -> np.ndarray:
    """Up to ``lanes`` open vertices, alternating the two extremes.

    Interleaves the biggest-upper-bound hunters with the
    smallest-lower-bound centre candidates (the same alternation the
    scalar loop uses one vertex at a time), deduplicated, preserving
    that alternation order.
    """
    high = cand[np.argsort(-ecc_ub[cand], kind="stable")]
    low = cand[np.argsort(ecc_lb[cand], kind="stable")]
    interleaved = np.empty(2 * len(cand), dtype=cand.dtype)
    interleaved[0::2] = high
    interleaved[1::2] = low
    _, first = np.unique(interleaved, return_index=True)
    picks = interleaved[np.sort(first)]
    return picks[:lanes]


def _seed_from_warm(
    graph: CSRGraph,
    kernel: TraversalKernel,
    warm,
    ecc_lb: np.ndarray,
    ecc_ub: np.ndarray,
    count_edges: bool,
) -> tuple[bool, int, int]:
    """Fold warm-start artifacts into the bounds; ``(used, bfs, edges)``.

    Trust model (DESIGN.md §10): the artifacts already passed the cache
    layer's content-digest check, and before anything is folded in, one
    *fresh* BFS from the first cached landmark must reproduce its cached
    distance row bit-for-bit — a cheap end-to-end proof that the sidecar
    was computed on this exact graph. Only then are the cached per-vertex
    eccentricity bounds adopted; any open vertex the seeding leaves
    behind is still resolved by an exact traversal, so a *consistent*
    cache only ever removes work.
    """
    n = graph.num_vertices
    status = getattr(warm, "status", None)
    if status is None or len(status) != n:
        warnings.warn(
            "warm-start artifacts do not match the graph shape; "
            "ignoring them",
            stacklevel=3,
        )
        return False, 0, 0
    sources = np.asarray(
        getattr(warm, "landmark_sources", np.empty(0, np.int64)),
        dtype=np.int64,
    )
    dists = np.asarray(
        getattr(warm, "landmark_dists", np.empty((0, 0), np.int32))
    )
    if (
        len(sources) == 0
        or dists.shape != (len(sources), n)
        or not 0 <= int(sources[0]) < n
    ):
        # No landmark rows to verify against: refuse to trust the
        # sidecar's bounds rather than adopt them unverified.
        return False, 0, 0
    res = kernel.bfs(int(sources[0]), record_dist=True, record_trace=count_edges)
    spent_edges = res.trace.total_edges_examined if res.trace else 0
    fresh = res.dist
    verified = np.array_equal(
        np.asarray(fresh, dtype=np.int64), dists[0].astype(np.int64)
    )
    if not verified:
        kernel.workspace.release_dist(fresh)
        warnings.warn(
            "warm-start landmark distances do not reproduce on this "
            "graph; ignoring the cached artifacts",
            stacklevel=3,
        )
        return False, 1, spent_edges
    # Every landmark row is a genuine distance array of this graph, so
    # folding it through the triangle inequalities needs no further
    # trust; the row's max is its source's exact eccentricity.
    for j in range(len(sources)):
        row = dists[j].astype(np.int64)
        _refine_bounds(ecc_lb, ecc_ub, int(sources[j]), int(row.max()), row)
    kernel.workspace.release_dist(fresh)
    # Per-vertex upper-bound certificates from the cached run: the
    # spectrum's exact bounds when a spectrum wrote the sidecar, else
    # min(status, D) from the diameter run's final status array.
    diameter = int(getattr(warm, "diameter", 0))
    lower = np.asarray(
        getattr(warm, "ecc_lower", np.empty(0, np.int64)), dtype=np.int64
    )
    upper = np.asarray(
        getattr(warm, "ecc_upper", np.empty(0, np.int64)), dtype=np.int64
    )
    if len(upper) == n:
        np.minimum(ecc_ub, upper, out=ecc_ub)
        if len(lower) == n:
            np.maximum(ecc_lb, lower, out=ecc_lb)
    else:
        status = np.asarray(status, dtype=np.int64)
        numeric = (status >= 0) & (status < MAX_BOUND)
        np.minimum(
            ecc_ub,
            np.where(numeric, np.minimum(status, diameter), diameter),
            out=ecc_ub,
        )
    return True, 1, spent_edges


def eccentricity_spectrum(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    batch_lanes: int = 0,
    auto_fallback: bool = True,
    workers: int = 1,
    warm=None,
) -> EccentricitySpectrum:
    """Compute every vertex's exact eccentricity with bound pruning.

    The bounding scheme only avoids BFS calls for vertices whose bounds
    meet (``lb == ub``); since *all* eccentricities are requested, the
    pruning is purely opportunistic, yet on real topologies it still
    resolves the bulk of the vertices without a dedicated traversal.

    With ``batch_lanes > 0`` the traversals run through the
    bit-parallel lane sweep (:mod:`repro.bfs.bitparallel`), up to
    ``batch_lanes`` sources per sweep: each round picks the open
    vertices the scalar loop would have picked next (alternating
    extremes) and refines the bounds from all of their exact distance
    rows at once. Every bound update is the same sound triangle
    inequality, so the result is exact either way; some lanes may be
    spent on vertices a same-round peer would have closed, which is the
    price of sharing the edge gathers — the gather saving is reported
    as ``bfs_traversals / sweeps``.

    ``auto_fallback`` (default on) lets the cost model veto a requested
    lane batch from the graph's structure alone: on high-estimated-
    diameter inputs the lane sweep re-gathers the same edges over
    hundreds of thin levels (the measured 23× gather-pass blow-up on
    road meshes), so the request silently drops to the scalar path and
    ``lane_fallback`` is set on the result. Pass ``False`` to force the
    lanes for A/B measurements.

    ``workers > 1`` spreads each refinement round over a persistent
    shared-memory worker pool (the ``multiprocess``
    :class:`~repro.parallel.sweep.SweepExecutor` backend) when the cost
    model expects the round to be worth leaving the process; the bound
    refinement is identical either way, so the eccentricities are exact
    regardless of backend or worker count.

    ``warm`` seeds the bounds from cached artifacts of a previous run on
    the byte-identical graph (:class:`repro.cache.WarmArtifacts`): after
    one fresh BFS verifies the first cached landmark row, the remaining
    landmark rows and per-vertex certificates are folded in, typically
    closing most (for a spectrum-written sidecar: all) vertices before
    the refinement loop starts. Unusable or unverifiable artifacts are
    ignored with a warning.
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("eccentricity_spectrum on an empty graph")
    if workers < 1:
        raise AlgorithmError(f"workers must be >= 1, got {workers}")
    fell_back = False
    fallback_reason = ""
    if batch_lanes > 0 and auto_fallback:
        # Call-time import: repro.parallel's package init pulls the
        # scaling study, which imports the core layer.
        from repro.parallel.costmodel import LevelSynchronousCostModel

        model = LevelSynchronousCostModel()
        estimate = model.estimate_diameter(
            n, graph.num_directed_edges, graph.max_degree()
        )
        ok, reason = model.lane_batch_verdict(estimate, batch_lanes, merged=False)
        if not ok:
            batch_lanes = 0
            fell_back = True
            fallback_reason = reason
    count_edges = engine == "parallel" or batch_lanes > 0 or workers > 1
    kernel = TraversalKernel(graph, engine=engine)

    # Route the refinement rounds through the sweep dispatch layer when
    # the caller asked for lanes or a worker team. A single-worker lane
    # request pins the bitparallel backend (the historical behaviour);
    # a team goes through "auto", and if the cost model still resolves
    # to the serial backend the rounds are cheaper in the scalar
    # alternating loop below, so the executor is dropped.
    executor = None
    if workers > 1:
        executor = kernel.sweep_executor(
            workers=workers,
            batch_lanes=batch_lanes if batch_lanes > 0 else 64,
            backend="auto",
        )
        if executor.backend == "serial":
            executor.close()
            executor = None
    elif batch_lanes > 0:
        executor = kernel.sweep_executor(
            workers=1, batch_lanes=batch_lanes, backend="bitparallel"
        )

    cc = connected_components(graph)
    ecc_lb = np.zeros(n, dtype=np.int64)
    ecc_ub = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    ecc_ub[graph.degrees == 0] = 0
    traversals = 0
    sweeps = 0
    edges = 0
    occupancy_sum = 0.0

    if warm is not None:
        _, warm_bfs, warm_edges = _seed_from_warm(
            graph, kernel, warm, ecc_lb, ecc_ub, count_edges
        )
        traversals += warm_bfs
        sweeps += warm_bfs
        edges += warm_edges
        occupancy_sum += float(warm_bfs)
        # Inconsistent certificates can leave lb > ub on some vertices;
        # those stay open (lb != ub) and are resolved by an exact BFS
        # like any other open vertex, so nothing is clamped here.

    try:
        for comp in range(cc.num_components):
            vertices = cc.vertices_of(comp)
            if len(vertices) < 2:
                continue
            in_comp = np.zeros(n, dtype=bool)
            in_comp[vertices] = True
            pick_high = True
            while True:
                open_mask = in_comp & (ecc_lb != ecc_ub)
                if not open_mask.any():
                    break
                cand = np.flatnonzero(open_mask)
                if executor is not None:
                    picks = _pick_batch(cand, ecc_lb, ecc_ub, executor.round_size)
                    dist, info = executor.distance_rows(picks)
                    for j, v in enumerate(picks):
                        _refine_bounds(
                            ecc_lb, ecc_ub, int(v), int(info.eccentricities[j]), dist[j]
                        )
                    traversals += info.traversals
                    sweeps += info.sweeps
                    edges += info.edges_examined
                    occupancy_sum += info.lane_occupancy * info.sweeps
                    continue
                if pick_high:
                    v = int(cand[int(np.argmax(ecc_ub[cand]))])
                else:
                    v = int(cand[int(np.argmin(ecc_lb[cand]))])
                pick_high = not pick_high
                res = kernel.bfs(v, record_dist=True, record_trace=count_edges)
                traversals += 1
                sweeps += 1
                occupancy_sum += 1.0
                if res.trace is not None:
                    edges += res.trace.total_edges_examined
                dist = res.dist
                _refine_bounds(ecc_lb, ecc_ub, v, res.eccentricity, dist)
                # The distances were folded into the bounds; recycle the
                # buffer so every refinement after the first reuses it.
                kernel.workspace.release_dist(dist)
    finally:
        if executor is not None:
            executor.close()

    ecc = ecc_lb  # bounds have met everywhere
    diameter = int(ecc.max()) if n else 0
    connected = cc.num_components <= 1
    if cc.num_components:
        largest = cc.vertices_of(cc.largest())
        if len(largest) >= 2:
            rad = int(ecc[largest].min())
        else:
            rad = 0
        center_mask = np.zeros(n, dtype=bool)
        center_mask[largest] = True
        center_vertices = np.flatnonzero(center_mask & (ecc == rad))
    else:
        rad = 0
        center_vertices = np.empty(0, dtype=np.int64)
    periphery_vertices = (
        np.flatnonzero(ecc == diameter) if diameter > 0 else np.empty(0, dtype=np.int64)
    )
    return EccentricitySpectrum(
        eccentricities=ecc,
        radius=rad,
        diameter=diameter,
        center=center_vertices,
        periphery=periphery_vertices,
        connected=connected,
        bfs_traversals=traversals,
        edges_examined=edges,
        sweeps=sweeps,
        lane_occupancy=occupancy_sum / sweeps if sweeps else 0.0,
        lane_fallback=fell_back,
        lane_fallback_reason=fallback_reason,
        backend=executor.backend if executor is not None else "scalar",
        workers=executor.workers if executor is not None else 1,
    )


def radius(graph: CSRGraph, *, engine: Engine = "parallel") -> int:
    """Exact radius (minimum eccentricity) of the largest component."""
    return eccentricity_spectrum(graph, engine=engine).radius


def center(graph: CSRGraph, *, engine: Engine = "parallel") -> np.ndarray:
    """Vertices of the largest component whose eccentricity equals the radius."""
    return eccentricity_spectrum(graph, engine=engine).center


def periphery(graph: CSRGraph, *, engine: Engine = "parallel") -> np.ndarray:
    """All vertices whose eccentricity equals the (CC) diameter."""
    return eccentricity_spectrum(graph, engine=engine).periphery
