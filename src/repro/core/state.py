"""Shared mutable state of one F-Diam run.

The paper's Algorithms 1–5 communicate through three pieces of shared
state: the per-vertex eccentricity slots (where any write also removes
the vertex from consideration), the visit-counter array, and the current
diameter bound. :class:`FDiamState` bundles them together with the
first-touch removal bookkeeping needed for the Table 4 statistics and
the saved Winnow frontier needed for incremental extension (§4.5).

Status encoding (per-vertex ``int64``)
--------------------------------------
* ``ACTIVE``   (``2**62``)     — eccentricity still needs consideration.
* ``MAX_BOUND``(``ACTIVE - 1``)— the ``MAX`` constant of Algorithm 4.
* ``WINNOWED`` (``-1``)        — removed by Winnow; carries no bound.
* any other value ``b``        — removed; ``b`` is a valid upper bound
  on the vertex's eccentricity (it equals the true eccentricity when
  the vertex was explicitly evaluated).

Following the paper, a vertex's status is written at most once per
partial BFS but *may* be overwritten across calls; every write is a
valid upper bound, so overwrites never violate the invariant
``status[v] >= ecc(v)`` for removed vertices (checked property-based in
the test suite).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.eccentricity import get_engine
from repro.bfs.hybrid import BFSResult
from repro.bfs.kernel import TraversalKernel
from repro.core.config import FDiamConfig
from repro.core.stats import FDiamStats, Reason
from repro.graph.csr import CSRGraph

__all__ = ["ACTIVE", "MAX_BOUND", "WINNOWED", "FDiamState"]

#: Sentinel for "still under consideration".
ACTIVE = np.int64(2**62)
#: The ``MAX`` pseudo-eccentricity used by Chain Processing
#: (paper: "The constant MAX is INT_MAX - 1").
MAX_BOUND = ACTIVE - 1
#: Marker for vertices removed by Winnow (no bound information).
WINNOWED = np.int64(-1)


class FDiamState:
    """Mutable state threaded through every stage of one run."""

    __slots__ = (
        "graph",
        "config",
        "stats",
        "status",
        "reason",
        "kernel",
        "marks",
        "bound",
        "winnow_center",
        "winnow_radius",
        "winnow_frontier",
        "winnow_visited",
        "oracle",
    )

    def __init__(
        self,
        graph: CSRGraph,
        config: FDiamConfig,
        *,
        deadline: float | None = None,
    ):
        self.graph = graph
        self.config = config
        self.stats = FDiamStats(
            num_vertices=graph.num_vertices, num_edges=graph.num_edges
        )
        #: Per-vertex status (see module docstring for the encoding).
        self.status = np.full(graph.num_vertices, ACTIVE, dtype=np.int64)
        #: First-touch removal attribution per vertex (Reason values).
        self.reason = np.full(graph.num_vertices, Reason.ACTIVE, dtype=np.uint8)
        #: The run's shared traversal kernel: every stage (2-sweep,
        #: Winnow, Chain, Eliminate, Extend, eccentricity loop) routes
        #: its traversals through it, sharing one pooled workspace and
        #: the optional deadline (so even a single huge level loop
        #: aborts within one level of the budget expiring).
        self.kernel = TraversalKernel(
            graph,
            threshold=config.threshold,
            directions=config.directions,
            deadline=deadline,
            batch_lanes=config.bfs_batch_lanes,
            memory_budget=config.memory_budget,
            memory_mode=config.memory_mode,
        )
        #: Shared visit counter (the paper's ``counter`` parameter) —
        #: an alias of the kernel workspace's marks.
        self.marks = self.kernel.workspace.marks
        self.stats.workspace = self.kernel.workspace.stats
        #: Current lower bound on the diameter.
        self.bound = 0

        # Incremental-Winnow bookkeeping (§4.5: "Incrementally extending
        # the winnowed region is trivial as it is centered around one
        # starting vertex"): the BFS around the winnow centre is resumed
        # from its saved frontier instead of restarted.
        self.winnow_center: int | None = None
        self.winnow_radius = 0
        self.winnow_frontier = np.empty(0, dtype=np.int64)
        self.winnow_visited = np.zeros(graph.num_vertices, dtype=bool)

        #: Invariant oracle (``config.verify``): every stage hook checks
        #: its writes against reference BFS distances. ``None`` in
        #: normal runs, so the hooks cost one attribute test.
        self.oracle = None
        if config.verify:
            # Call-time import: repro.verify sits above the core layer.
            from repro.verify.oracle import InvariantOracle

            self.oracle = InvariantOracle(graph)

    # ------------------------------------------------------------------
    # Removal primitives (every status write funnels through these so
    # the first-touch attribution stays consistent).
    # ------------------------------------------------------------------
    def remove(
        self, vertices: np.ndarray | int, value: np.int64, reason: Reason
    ) -> None:
        """Write ``value`` into the status of ``vertices``.

        Vertices that were still active are attributed to ``reason`` and
        receive ``value``. Vertices already removed keep their original
        attribution and keep the *tighter* of the two bounds — a safe
        refinement of the paper's unconditional overwrite (every write
        is a valid upper bound, so the minimum is too), which preserves
        the invariant that COMPUTED vertices record their exact
        eccentricity even when a later Chain/Eliminate wave re-crosses
        them. WINNOWED markers are terminal: a winnowed vertex is inside
        the one winnow ball forever, so numeric bounds neither replace
        the marker nor get replaced by it.
        """
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        current = self.status[vertices]
        newly = vertices[current == ACTIVE]
        if len(newly):
            self.stats.removed_by[reason] += len(newly)
            self.reason[newly] = reason
            self.status[newly] = value
        already = vertices[(current != ACTIVE) & (current != WINNOWED)]
        if len(already) and value != WINNOWED:
            self.status[already] = np.minimum(self.status[already], value)

    def remove_bounded(
        self, vertices: np.ndarray, values: np.ndarray, reason: Reason
    ) -> None:
        """Write per-vertex upper bounds in one vectorized pass.

        The warm-start bulk application of cached certificates: like
        :meth:`remove` but with an individual bound per vertex, under
        the same first-touch attribution and tighter-bound-wins merge
        rules. Every ``values[i]`` must be a valid upper bound on
        ``ecc(vertices[i])``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        current = self.status[vertices]
        newly = current == ACTIVE
        if newly.any():
            self.stats.removed_by[reason] += int(np.count_nonzero(newly))
            self.reason[vertices[newly]] = reason
            self.status[vertices[newly]] = values[newly]
        already = (current != ACTIVE) & (current != WINNOWED)
        if already.any():
            hit = vertices[already]
            self.status[hit] = np.minimum(self.status[hit], values[already])

    def remove_levels(
        self, levels: list[np.ndarray], base: int, reason: Reason
    ) -> None:
        """Write ``base + k + 1`` into level ``k``'s vertices (Alg. 5 body)."""
        for k, level in enumerate(levels):
            self.remove(level, np.int64(base + k + 1), reason)

    def reactivate(self, vertex: int) -> None:
        """Set a vertex back to ACTIVE (Chain Processing's tip rescue).

        Returns the attribution taken by whichever stage removed the
        vertex so the Table 4 percentages keep summing correctly.
        """
        if self.status[vertex] != ACTIVE:
            self.stats.removed_by[self.reason[vertex]] -= 1
            self.reason[vertex] = Reason.ACTIVE
            self.status[vertex] = ACTIVE

    # ------------------------------------------------------------------
    # Eccentricity BFS through the configured engine
    # ------------------------------------------------------------------
    def ecc_bfs(self, vertex: int) -> BFSResult:
        """Run one counted eccentricity BFS with the configured engine.

        Central funnel for every eccentricity traversal of a run: it
        applies the config's engine, direction threshold, and trace
        collection, and increments the Table 3 traversal counter. The
        ``"parallel"`` engine runs directly on the run's pooled kernel;
        other registered engines resolve through the registry but share
        the same workspace marks.
        """
        cfg = self.config
        self.stats.eccentricity_bfs += 1
        if cfg.engine == "parallel":
            res = self.kernel.bfs(vertex, record_trace=cfg.keep_traces)
            if res.trace is not None:
                self.stats.traces.append(res.trace)
            return res
        return get_engine(cfg.engine)(self.graph, vertex, self.marks)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_active(self, vertex: int) -> bool:
        """Whether ``vertex`` still needs its eccentricity considered."""
        return bool(self.status[vertex] == ACTIVE)

    def active_mask(self) -> np.ndarray:
        """Boolean mask of all still-active vertices."""
        return self.status == ACTIVE

    def active_count(self) -> int:
        """Number of still-active vertices."""
        return int(np.count_nonzero(self.status == ACTIVE))
