"""Incremental extension of eliminated regions (paper §4.5).

When the main loop discovers a new, larger diameter bound, every
previously computed eccentricity and recorded upper bound is now
strictly below the bound, so the regions around those vertices can be
pruned deeper. Re-running Eliminate from every prior vertex would cost
a traversal per vertex; F-Diam instead exploits the recorded upper
bounds: all vertices whose recorded bound equals the *old* bound value
become the seed set of **one** partial, multi-source, level-synchronous
BFS that expands ``new_bound - old_bound`` levels, assigning level ``k``
the upper bound ``old_bound + k``. The cost is thus "independent of the
number of prior evaluated vertices".

Seeds with recorded bounds *below* the old bound need no special
handling: the regions around them were already expanded to depth
``old_bound - recorded`` when they were recorded, and the vertices on
that expansion's last level carry bound ``old_bound`` — so they are in
the seed set and continue the wave exactly where it stopped.

Under ``--bfs-batch-lanes`` the kernel runs this multi-source wave on
the bit-parallel lane machinery (merged mode, identical level sets);
the call site here is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import FDiamState
from repro.core.stats import Reason

__all__ = ["extend_eliminated"]


def extend_eliminated(state: FDiamState, old_bound: int, new_bound: int) -> int:
    """Extend all eliminated regions after a bound upgrade.

    Returns the number of vertices written by the extension sweep.
    """
    depth = new_bound - old_bound
    if depth <= 0:
        return 0
    seeds = np.flatnonzero(state.status == old_bound)
    if len(seeds) == 0:
        return 0
    state.stats.eliminate_calls += 1
    levels = state.kernel.levels(seeds, depth)
    state.remove_levels(levels, base=old_bound, reason=Reason.ELIMINATE)
    if state.oracle is not None:
        state.oracle.check_stage(state, "extend")
    return sum(len(level) for level in levels)
