"""The 2-sweep initial diameter bound (paper §4.1).

F-Diam starts from the highest-degree vertex ``u`` (likely central,
likely low eccentricity), finds a vertex ``w`` in the *last* BFS level
(maximally far from ``u``, likely peripheral), and uses ``ecc(w)`` as
the initial lower bound on the diameter. Both BFS calls also produce
real eccentricities, so ``u`` and ``w`` are removed from consideration
as a side effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.state import FDiamState
from repro.core.stats import Reason
from repro.errors import AlgorithmError

__all__ = ["TwoSweepResult", "two_sweep", "witness_sweep"]


@dataclass(frozen=True)
class TwoSweepResult:
    """Outcome of the 2-sweep initialization."""

    start: int  # the vertex u the sweep started from
    start_ecc: int  # ecc(u)
    far_vertex: int  # w, a vertex maximally far from u
    bound: int  # ecc(w) — the initial diameter lower bound
    visited_from_start: int  # vertices reached from u (connectivity probe)


def two_sweep(state: FDiamState, start: int) -> TwoSweepResult:
    """Run the 2-sweep from ``start`` and record both eccentricities.

    Also counts the two eccentricity BFS calls (they are part of the
    paper's Table 3 traversal count) and removes ``start`` and the far
    vertex from consideration by recording their true eccentricities.
    """
    graph = state.graph
    if graph.num_vertices == 0:
        raise AlgorithmError("two_sweep on an empty graph")

    first = state.ecc_bfs(start)
    state.remove(start, first.eccentricity, Reason.COMPUTED)

    # "we pick a vertex v from the last iteration of the BFS" — the
    # pseudocode takes wl1[0], the first entry of the final worklist.
    far = int(first.last_frontier[0]) if len(first.last_frontier) else start
    if far == start:
        # Isolated start vertex: its component is {start}, bound is 0.
        return TwoSweepResult(
            start=start,
            start_ecc=first.eccentricity,
            far_vertex=start,
            bound=first.eccentricity,
            visited_from_start=first.visited_count,
        )

    second = state.ecc_bfs(far)
    state.remove(far, second.eccentricity, Reason.COMPUTED)

    return TwoSweepResult(
        start=start,
        start_ecc=first.eccentricity,
        far_vertex=far,
        bound=second.eccentricity,
        visited_from_start=first.visited_count,
    )


def witness_sweep(state: FDiamState, witness: int) -> TwoSweepResult:
    """One BFS from a cached diameter witness (warm-start init).

    The warm path replaces the 2-sweep with a single eccentricity BFS
    from the vertex the cached run recorded as realizing the diameter:
    its fresh eccentricity is a *true* lower bound on the diameter of
    this exact graph (no trust in the cache required), and the visit
    count doubles as the connectivity probe the 2-sweep provides.
    """
    graph = state.graph
    if graph.num_vertices == 0:
        raise AlgorithmError("witness_sweep on an empty graph")
    res = state.ecc_bfs(witness)
    state.remove(witness, res.eccentricity, Reason.COMPUTED)
    return TwoSweepResult(
        start=witness,
        start_ecc=res.eccentricity,
        far_vertex=witness,
        bound=res.eccentricity,
        visited_from_start=res.visited_count,
    )
