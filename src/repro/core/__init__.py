"""The F-Diam algorithm (paper Algorithms 1–5).

Public entry point: :func:`fdiam`. The individual techniques — 2-sweep,
Winnow, Chain Processing, Eliminate, incremental extension — are
exported for direct use and for the safety-property tests.
"""

from repro.core.analysis import (
    WinnowCoverage,
    coverage_by_centrality,
    winnow_coverage,
)
from repro.core.approx import (
    DiameterEstimate,
    four_sweep_estimate,
    two_sweep_estimate,
)
from repro.core.chain import follow_chain, process_chains
from repro.core.concurrent import ConcurrentReport, fdiam_concurrent
from repro.core.config import ABLATIONS, FDiamConfig
from repro.core.eliminate import eliminate
from repro.core.extend import extend_eliminated
from repro.core.extremes import (
    EccentricitySpectrum,
    center,
    eccentricity_spectrum,
    periphery,
    radius,
)
from repro.core.fdiam import DiameterResult, fdiam, fdiam_with_state
from repro.core.state import ACTIVE, MAX_BOUND, WINNOWED, FDiamState
from repro.core.stats import FDiamStats, Reason, StageTimes
from repro.core.sweep import TwoSweepResult, two_sweep
from repro.core.winnow import winnow

__all__ = [
    "ABLATIONS",
    "ACTIVE",
    "ConcurrentReport",
    "DiameterEstimate",
    "DiameterResult",
    "fdiam_concurrent",
    "four_sweep_estimate",
    "two_sweep_estimate",
    "WinnowCoverage",
    "coverage_by_centrality",
    "winnow_coverage",
    "EccentricitySpectrum",
    "center",
    "eccentricity_spectrum",
    "periphery",
    "radius",
    "FDiamConfig",
    "FDiamState",
    "FDiamStats",
    "MAX_BOUND",
    "Reason",
    "StageTimes",
    "TwoSweepResult",
    "WINNOWED",
    "eliminate",
    "extend_eliminated",
    "fdiam",
    "fdiam_with_state",
    "follow_chain",
    "process_chains",
    "two_sweep",
    "winnow",
]
