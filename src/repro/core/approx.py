"""Fast diameter *approximations* with guaranteed bounds.

The exact algorithms in this library all bootstrap from cheap
approximations — F-Diam from the 2-sweep (§4.1), iFUB from the 4-SWEEP.
This module exposes those approximations directly for callers who can
trade exactness for speed, with the guarantees made explicit:

* every estimate is a **lower bound** on the true diameter (it is a
  realized shortest-path distance);
* the BFS tree rooted at any vertex ``v`` gives the **upper bound**
  ``2 * ecc(v)`` (every pair can route through ``v``);
* hence each call returns an interval ``[lower, upper]`` with
  ``upper <= 2 * lower`` — a 2-approximation in the worst case, and on
  real small-world inputs the interval usually collapses to a point
  (the paper: "We have experimentally found our initial diameter to
  often be very close to the exact diameter").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.eccentricity import Engine
from repro.bfs.kernel import TraversalKernel
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["DiameterEstimate", "two_sweep_estimate", "four_sweep_estimate"]


@dataclass(frozen=True)
class DiameterEstimate:
    """A bounded diameter estimate.

    ``lower <= diameter <= upper`` always holds (within the probed
    connected component; on disconnected graphs the bounds apply to the
    component of the starting vertex, and ``component_size`` reports
    its coverage so callers can detect partial views).
    """

    lower: int
    upper: int
    bfs_traversals: int
    component_size: int

    @property
    def is_exact(self) -> bool:
        """Whether the interval pinched to the exact diameter."""
        return self.lower == self.upper

    @property
    def max_relative_error(self) -> float:
        """Worst-case relative error of reporting ``lower``."""
        if self.lower == 0:
            return 0.0
        return (self.upper - self.lower) / self.lower


def two_sweep_estimate(
    graph: CSRGraph,
    start: int | None = None,
    *,
    engine: Engine = "parallel",
) -> DiameterEstimate:
    """The paper's §4.1 initialization as a standalone estimator.

    BFS from ``start`` (default: the max-degree vertex), then BFS from
    a farthest vertex ``w``; returns ``[ecc(w), 2 * min(ecc(start),
    ecc(w))]``.
    """
    if graph.num_vertices == 0:
        raise AlgorithmError("two_sweep_estimate on an empty graph")
    if start is None:
        start = graph.max_degree_vertex()
    kernel = TraversalKernel(graph, engine=engine)

    first = kernel.bfs(start)
    if first.visited_count <= 1:
        return DiameterEstimate(0, 0, 1, first.visited_count)
    far = int(first.last_frontier[0])
    second = kernel.bfs(far)
    lower = second.eccentricity
    upper = 2 * min(first.eccentricity, second.eccentricity)
    return DiameterEstimate(
        lower=lower,
        upper=max(lower, upper),
        bfs_traversals=2,
        component_size=first.visited_count,
    )


def four_sweep_estimate(
    graph: CSRGraph,
    start: int | None = None,
    *,
    engine: Engine = "parallel",
) -> DiameterEstimate:
    """The iFUB 4-SWEEP heuristic as a standalone estimator.

    Two chained double sweeps; the midpoint of the second sweep's path
    approximates a centre, whose eccentricity tightens the upper bound
    to ``2 * ecc(midpoint)``. Costs 5 traversals (4 sweeps + the
    midpoint eccentricity).
    """
    if graph.num_vertices == 0:
        raise AlgorithmError("four_sweep_estimate on an empty graph")
    if start is None:
        start = graph.max_degree_vertex()
    kernel = TraversalKernel(graph, engine=engine)

    r1 = kernel.bfs(start, record_dist=True)
    if r1.visited_count <= 1:
        return DiameterEstimate(0, 0, 1, r1.visited_count)
    a1 = int(r1.last_frontier[0])
    kernel.workspace.release_dist(r1.dist)
    r2 = kernel.bfs(a1, record_dist=True)
    lower = r2.eccentricity
    mid1 = _path_midpoint(kernel, a1, r2, int(r2.last_frontier[0]))
    kernel.workspace.release_dist(r2.dist)

    r3 = kernel.bfs(mid1, record_dist=True)
    a2 = int(r3.last_frontier[0])
    kernel.workspace.release_dist(r3.dist)
    r4 = kernel.bfs(a2, record_dist=True)
    lower = max(lower, r4.eccentricity)
    mid2 = _path_midpoint(kernel, a2, r4, int(r4.last_frontier[0]))
    kernel.workspace.release_dist(r4.dist)

    r5 = kernel.bfs(mid2)
    upper = 2 * min(r1.eccentricity, r3.eccentricity, r5.eccentricity)
    return DiameterEstimate(
        lower=lower,
        upper=max(lower, upper),
        bfs_traversals=7,  # 5 sweep/centre + 2 midpoint-locating BFS
        component_size=r1.visited_count,
    )


def _path_midpoint(kernel: TraversalKernel, a, res_a, b) -> int:
    """A vertex halfway along a shortest ``a``–``b`` path via two
    distance arrays (one extra BFS from ``b``)."""
    import numpy as np

    dist_b = kernel.bfs(b, record_dist=True).dist
    dist_a = res_a.dist
    d_ab = int(dist_a[b])
    on_path = (dist_a >= 0) & (dist_b >= 0) & (dist_a + dist_b == d_ab)
    half = np.flatnonzero(on_path & (dist_a == d_ab // 2))
    kernel.workspace.release_dist(dist_b)
    return int(half[0]) if len(half) else a
