"""Analysis tools for F-Diam's structural claims.

The paper grounds several design choices in structural claims about
real graphs: the max-degree vertex "tends to be centrally located"
(§3), winnowing from a central vertex "maximize[s] the number of
vertices in the winnowed region" (§4.2), and starting from vertex 0
instead costs performance (§6.5) — except on two inputs where vertex 0
happened to be *more* central. This module measures those claims
directly on any graph, so the reproduction can verify (and, at analog
scale, honestly qualify) them:

* :func:`winnow_coverage` — the fraction of vertices a winnow ball from
  a given centre would remove, without touching any algorithm state.
* :func:`coverage_by_centrality` — coverage statistics across centre
  choices grouped by degree percentile, quantifying "hubs are good
  winnow centres".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.partial import ball
from repro.bfs.visited import VisitMarks
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["WinnowCoverage", "winnow_coverage", "coverage_by_centrality"]


@dataclass(frozen=True)
class WinnowCoverage:
    """Coverage of one hypothetical winnow ball."""

    center: int
    center_degree: int
    bound: int
    radius: int
    covered: int
    fraction: float


def winnow_coverage(
    graph: CSRGraph,
    center: int,
    bound: int,
    marks: VisitMarks | None = None,
) -> WinnowCoverage:
    """Measure the ball ``B(center, ⌊bound/2⌋)`` without removing anything.

    ``fraction`` is relative to the whole vertex set (the Table 4
    convention), so disconnected remainders and isolated vertices count
    against the coverage just as they do in the algorithm.
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("winnow_coverage on an empty graph")
    if bound < 0:
        raise AlgorithmError("bound must be non-negative")
    radius = bound // 2
    covered = ball(graph, center, radius, marks, include_center=False)
    return WinnowCoverage(
        center=center,
        center_degree=graph.degree(center),
        bound=bound,
        radius=radius,
        covered=len(covered),
        fraction=len(covered) / n,
    )


def coverage_by_centrality(
    graph: CSRGraph,
    bound: int,
    *,
    samples_per_bucket: int = 5,
    percentiles: tuple[int, ...] = (0, 25, 50, 75, 95, 100),
    seed: int = 0,
) -> dict[int, float]:
    """Mean winnow coverage for centres sampled by degree percentile.

    Returns ``{percentile: mean coverage fraction}``. Bucket ``100``
    always includes the max-degree vertex itself (the paper's ``u``),
    so the result directly quantifies "the highest-degree vertex ...
    tends to be centrally located" against low-degree alternatives.
    """
    n = graph.num_vertices
    if n == 0:
        raise AlgorithmError("coverage_by_centrality on an empty graph")
    rng = np.random.default_rng(seed)
    order = np.argsort(graph.degrees, kind="stable")
    marks = VisitMarks(n)
    out: dict[int, float] = {}
    for pct in percentiles:
        # Vertices whose degree rank falls in a small window around pct.
        centre_rank = round((n - 1) * pct / 100)
        lo = max(0, centre_rank - max(n // 20, samples_per_bucket))
        hi = min(n, centre_rank + max(n // 20, samples_per_bucket) + 1)
        bucket = order[lo:hi]
        picks = rng.choice(bucket, size=min(samples_per_bucket, len(bucket)), replace=False)
        if pct == 100:
            picks = np.unique(np.append(picks, graph.max_degree_vertex()))
        fractions = [
            winnow_coverage(graph, int(v), bound, marks).fraction for v in picks
        ]
        out[pct] = float(np.mean(fractions))
    return out
