"""The Winnow operation (paper §4.2, Algorithm 3) — F-Diam's key novelty.

Safety argument (Theorems 2 + 3): let ``bound`` be a lower bound on the
diameter and ``v`` any vertex. Every pair of vertices inside the ball
``B(v, ⌊bound/2⌋)`` is at most ``bound`` apart (both can route through
``v``). Hence if some pair realizes a distance ``> bound``, at least one
endpoint lies *outside* the ball — and by Theorem 2 a diameter-realizing
eccentricity always has at least two witnesses, so discarding the whole
ball still leaves a witness of the true diameter under consideration.
This is why Winnow may discard vertices whose eccentricity is *higher*
than the current bound, which no earlier pruning technique could do.

Crucially, winnowing is only sound from **one** centre per run: balls
around two different centres could each contain one endpoint of the
critical pair. The state therefore pins the centre on first use, and
later calls (after bound increases) merely *extend* the same ball — the
partial BFS resumes from the saved frontier instead of restarting
(§4.5: "Incrementally extending the winnowed region is trivial as it is
centered around one starting vertex").
"""

from __future__ import annotations

import numpy as np

from repro.core.state import WINNOWED, FDiamState
from repro.core.stats import Reason
from repro.errors import AlgorithmError

__all__ = ["winnow", "restore_winnow"]


def restore_winnow(
    state: FDiamState,
    center: int,
    radius: int,
    visited: np.ndarray,
    frontier: np.ndarray,
) -> None:
    """Adopt a previously grown winnow ball (warm start, §4.5 extended).

    The caller guarantees the ball belongs to the *same* graph (content
    digest match) and that ``radius <= state.bound // 2`` under the
    run's fresh witness bound — under those conditions the ball is
    exactly what :func:`winnow` would have grown, so adopting its
    visited set and resume frontier is sound, and a later
    :func:`winnow` call extends it incrementally as usual. Pins the
    centre; must run before any winnowing in this run.
    """
    if state.winnow_center is not None:
        raise AlgorithmError(
            "cannot restore a winnow ball after winnowing has started "
            f"(centre already pinned to {state.winnow_center})"
        )
    state.winnow_center = int(center)
    state.winnow_radius = int(radius)
    state.winnow_visited = np.asarray(visited, dtype=bool).copy()
    state.winnow_frontier = np.asarray(frontier, dtype=np.int64).copy()


def winnow(state: FDiamState, center: int, bound: int) -> int:
    """(Re-)winnow the ball of radius ``⌊bound/2⌋`` around ``center``.

    On the first call the centre is pinned and the ball is grown from
    scratch; on later calls the saved frontier is advanced by the
    radius increase. Counts one Winnow call (Table 3 convention) iff at
    least one level is actually expanded.

    Returns the number of levels expanded by this call.
    """
    if state.winnow_center is None:
        state.winnow_center = center
        # The centre vertex itself is NOT written: the driver has
        # already recorded its true eccentricity during the 2-sweep
        # (or will evaluate it). Mark it visited so the BFS never
        # rediscovers it.
        state.winnow_visited[center] = True
        state.winnow_frontier = np.array([center], dtype=np.int64)
        state.winnow_radius = 0
    elif center != state.winnow_center:
        raise AlgorithmError(
            "Winnow is only sound from a single centre per run "
            f"(pinned {state.winnow_center}, got {center})"
        )

    target_radius = bound // 2
    levels_to_expand = target_radius - state.winnow_radius
    if levels_to_expand <= 0 or len(state.winnow_frontier) == 0:
        return 0

    state.stats.winnow_calls += 1
    # The ball expansion is the kernel's batched multi-source primitive
    # resumed from the saved frontier: no new epoch (a dedicated boolean
    # visited array persists across extensions of the one winnow ball)
    # and the frontier is already marked.
    levels = state.kernel.levels(
        state.winnow_frontier,
        levels_to_expand,
        marks=_BoolMarks(state.winnow_visited),
        new_epoch=False,
        mark_sources=False,
    )
    for level in levels:
        state.remove(level, WINNOWED, Reason.WINNOW)
    expanded = len(levels)
    # Save the resume frontier: the last expanded level, or empty once
    # the ball has swallowed its whole component.
    if expanded == levels_to_expand:
        state.winnow_frontier = levels[-1]
    else:
        state.winnow_frontier = np.empty(0, dtype=np.int64)
    state.winnow_radius = target_radius
    if state.oracle is not None:
        state.oracle.check_stage(state, "winnow")
    return expanded


class _BoolMarks:
    """Adapter giving a persistent boolean array the VisitMarks protocol.

    The winnow ball must stay marked across incremental extensions, so
    it cannot share the run's epoch counter (every ``new_epoch`` would
    forget it). Duck-types the members :func:`topdown_step` and the
    bit-parallel merged sweep use.
    """

    __slots__ = ("marks", "counter")

    def __init__(self, visited: np.ndarray):
        self.marks = visited
        self.counter = True  # visited entries equal True

    def visit(self, vertices: np.ndarray | int) -> None:
        self.marks[vertices] = True

    def is_visited(self, vertices: np.ndarray | int) -> np.ndarray:
        return self.marks[vertices]
