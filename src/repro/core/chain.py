"""Chain Processing (paper §4.3, Algorithm 4) — F-Diam's second novelty.

A degree-1 vertex ``x`` routes every shortest path through its single
neighbour, so ``ecc(x) = ecc(y) + 1`` for its neighbour ``y`` (in any
component with more than one edge). Following a run of degree-2
vertices ("the chain, which looks like a linked list") from ``x`` to the
first vertex ``w`` of degree ≠ 2 generalizes this: with chain length
``s``, either some other vertex sits at distance ``s`` from ``w`` and
``ecc(w) = ecc(x) - s``, or the subtree hanging off ``w`` is shallower
than ``s`` and ``x`` has the globally maximal eccentricity. In **both**
cases every vertex within ``s`` steps of ``w`` — except ``x`` itself —
is dominated by ``x`` and can be removed without computing a single
eccentricity.

Algorithm 4 realizes the removal as one Eliminate call per chain with
the pseudo-eccentricity ``MAX - s`` and pseudo-bound ``MAX`` (expanding
exactly ``s`` levels around the anchor) and re-activates the tip
afterwards. This implementation batches all chains into a **single
staggered multi-source partial BFS**: the anchor of a length-``s``
chain enters the frontier at offset ``max_len - s``, so a vertex first
discovered at wave step ``k`` receives the bound
``MAX - max_len + k = min_i (MAX - s_i + d(anchor_i, v))`` — exactly
the element-wise minimum of the per-chain Eliminate writes that the
sequential Algorithm 4 produces under this library's tightest-bound
write rule. The removed set (the union of the per-chain balls) is
identical; the only divergence is that *every* chain tip stays active,
whereas sequential processing lets a later chain's ball swallow an
earlier tip — keeping strictly more witnesses is always safe, and it
turns up to ``#chains`` near-full traversals into one.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bitparallel import LANE_WIDTH
from repro.core.state import MAX_BOUND, FDiamState
from repro.core.stats import Reason
from repro.graph.degrees import degree_one_vertices

__all__ = ["process_chains", "follow_chain", "batch_tip_eccentricities"]


def follow_chain(state: FDiamState, tip: int) -> tuple[int, int]:
    """Walk the degree-2 chain starting at degree-1 vertex ``tip``.

    Returns ``(anchor, length)``: the first vertex of degree ≠ 2
    reached, and the number of edges walked. Termination is guaranteed
    because a degree-2 run starting at a degree-1 vertex cannot close a
    cycle (a cycle entry vertex would need degree ≥ 3).
    """
    graph = state.graph
    prev = tip
    node = int(graph.neighbors(tip)[0])
    length = 1
    while graph.degree(node) == 2:
        a, b = graph.neighbors(node)
        nxt = int(b) if int(a) == prev else int(a)
        prev, node = node, nxt
        length += 1
    return node, length


def process_chains(state: FDiamState) -> int:
    """Run Chain Processing over every degree-1 vertex.

    Returns the number of chains processed. All removals are attributed
    to the Chain stage (paper Table 4 credits them there even though
    they flow through the Eliminate machinery).
    """
    tips = degree_one_vertices(state.graph)
    if len(tips) == 0:
        return 0

    # Walk every chain first (scalar, but chains are short and few).
    anchors: list[int] = []
    lengths: list[int] = []
    for tip in tips:
        anchor, length = follow_chain(state, int(tip))
        anchors.append(anchor)
        lengths.append(length)
    max_len = max(lengths)

    n = state.graph.num_vertices
    is_tip = np.zeros(n, dtype=bool)
    is_tip[tips] = True
    is_anchor = np.zeros(n, dtype=bool)
    is_anchor[np.asarray(anchors, dtype=np.int64)] = True
    tip_step = np.full(n, -1, dtype=np.int64)

    # Staggered multi-source wave: a chain of length s injects its
    # anchor at offset max_len - s; wave step k writes MAX - max_len + k.
    # The wave itself is the kernel's staggered multi-source primitive;
    # the callback applies Algorithm 4's writes. Injected anchors are
    # removed with their own pseudo-ecc (the mark_source write); anchors
    # already swallowed by an earlier chain's wave never reach the
    # callback — the running wave continues past them with bounds at
    # least as tight, covering their ball (see module docstring).
    by_offset: dict[int, list[int]] = {}
    for anchor, length in zip(anchors, lengths):
        by_offset.setdefault(max_len - length, []).append(anchor)

    state.stats.eliminate_calls += 1
    base = int(MAX_BOUND) - max_len

    def record(depth: int, vertices: np.ndarray) -> None:
        state.remove(vertices, np.int64(base + depth), Reason.CHAIN)
        hit = vertices[is_tip[vertices]]
        tip_step[hit] = depth

    state.kernel.staggered_wave(by_offset, max_len, on_discover=record)

    # Rescue the surviving tips (Algorithm 4 line 9), applying the two
    # domination rules the sequential order applies implicitly:
    #
    # 1. Tips sharing an (anchor, length) pair have identical
    #    eccentricity (every path out runs through the same anchor at
    #    the same offset), so one representative per group suffices —
    #    sequential processing keeps exactly the last one.
    # 2. A tip first reached strictly before step max_len is *strictly*
    #    inside a longer chain's removal ball (a pendant tip is only
    #    reachable through its own chain, so early discovery implies
    #    d(anchor_j, anchor_i) < s_j - s_i for some chain j) — it is
    #    dominated by that longer chain's tip, and strict domination
    #    cannot cycle because it forces s_j > s_i.
    #
    # Tips that double as anchors (2-vertex path components) are kept
    # unconditionally.
    representative: dict[tuple[int, int], int] = {}
    for tip, anchor, length in zip(tips, anchors, lengths):
        representative[(anchor, length)] = int(tip)
    batchable: list[tuple[int, int, int]] = []
    kept: list[int] = []
    for (anchor, length), tip in representative.items():
        if tip_step[tip] == max_len or tip_step[tip] == -1 or is_anchor[tip]:
            state.reactivate(tip)
            kept.append(tip)
            if not is_anchor[tip]:
                batchable.append((tip, anchor, length))
    if state.config.chain_tip_batch and batchable:
        batch_tip_eccentricities(state, batchable)
    if state.oracle is not None:
        state.oracle.check_chain(state, kept)
        state.oracle.check_stage(state, "chain")
    return len(tips)


def batch_tip_eccentricities(
    state: FDiamState, tips: list[tuple[int, int, int]]
) -> int:
    """Resolve surviving chain tips with lane sweeps from their anchors.

    ``tips`` holds ``(tip, anchor, length)`` triples of pendant tips (a
    pendant tip is reachable only through its chain, so
    ``d(tip, x) = length + d(anchor, x)`` for every ``x`` outside it).
    One bit-parallel sweep yields up to 64 anchor eccentricities at
    once; a tip whose anchor eccentricity exceeds its chain length —
    the eccentricity is then realized *outside* the tip's own chain —
    gets the exact value ``length + ecc(anchor)`` and is removed.
    Tips whose anchor eccentricity equals the chain length (the anchor's
    farthest vertex may be the tip itself, e.g. a pure path component)
    stay active for the scalar main loop; fewer than that is impossible
    because the tip sits at exactly ``length`` hops.

    Each physical sweep counts as one traversal under the Table 3
    convention. Returns the number of tips resolved.
    """
    stats = state.stats
    old_bound = state.bound
    resolved = 0
    for base in range(0, len(tips), LANE_WIDTH):
        chunk = tips[base : base + LANE_WIDTH]
        sources = np.array([anchor for _, anchor, _ in chunk], dtype=np.int64)
        sweep = state.kernel.levels_batched64(sources)
        stats.eccentricity_bfs += 1
        for (tip, _, length), anchor_ecc in zip(
            chunk, sweep.eccentricities.tolist()
        ):
            if anchor_ecc > length:
                tip_ecc = length + anchor_ecc
                state.remove(tip, np.int64(tip_ecc), Reason.CHAIN)
                resolved += 1
                if tip_ecc > state.bound:
                    state.bound = tip_ecc
    if state.bound > old_bound:
        stats.bound_updates += 1
    return resolved
