"""The Eliminate operation (paper §4.4, Algorithm 5).

Classic triangle-inequality pruning (Theorem 1): once ``ecc(x)`` is
known and ``s = bound - ecc(x) > 0``, every vertex within ``s`` steps of
``x`` has eccentricity at most ``bound`` and can never raise the bound,
so its eccentricity need not be computed. Each discovered level ``k``
records the upper bound ``ecc + k`` in the vertex's status slot — that
recorded value is what the incremental extension of §4.5 keys on.

The paper runs Eliminate serially even in the parallel code ("Since
this code tends to only execute a couple of iterations with just a few
elements on the worklist, F-Diam runs it serially"); this reproduction
uses the shared partial-BFS level expansion for both engines, which is
the same level-synchronous computation. Under ``--bfs-batch-lanes`` the
kernel runs that expansion on the bit-parallel lane machinery (merged
mode, identical level sets); the call sites here are unchanged.
"""

from __future__ import annotations

from repro.core.state import FDiamState
from repro.core.stats import Reason

__all__ = ["eliminate"]


def eliminate(
    state: FDiamState,
    source: int,
    ecc: int,
    bound: int,
    *,
    reason: Reason = Reason.ELIMINATE,
    mark_source: bool = False,
) -> int:
    """Remove every vertex within ``bound - ecc`` steps of ``source``.

    Parameters
    ----------
    state:
        The run state (status slots, visit counter, stats).
    source:
        Starting vertex. Its own status is written only when
        ``mark_source`` is set (Chain Processing needs that; the main
        loop has already recorded the source's true eccentricity).
    ecc:
        Eccentricity (or pseudo-eccentricity, for chains) of ``source``.
    bound:
        Current diameter bound; the traversal expands ``bound - ecc``
        levels, assigning level ``k`` the upper bound ``ecc + k``.
    reason:
        Attribution for Table 4 (Chain Processing passes
        ``Reason.CHAIN`` for its internal Eliminate calls, matching how
        the paper credits those removals to the Chain stage).
    mark_source:
        Also write ``ecc`` into the source's own status slot.

    Returns
    -------
    int
        Number of vertices whose status was written (the "number of BFS
        calls eliminated" if they were still active).
    """
    if mark_source:
        state.remove(source, ecc, reason)
    depth = bound - ecc
    if depth <= 0:
        return 1 if mark_source else 0
    state.stats.eliminate_calls += 1
    levels = state.kernel.levels([source], depth)
    state.remove_levels(levels, base=ecc, reason=reason)
    if state.oracle is not None:
        state.oracle.check_eliminate(state, source, ecc, levels)
        state.oracle.check_stage(state, "eliminate")
    removed = sum(len(level) for level in levels)
    return removed + (1 if mark_source else 0)
