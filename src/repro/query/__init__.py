"""Batched multi-query engine over the bit-parallel substrate.

Answering one distance or eccentricity query costs one BFS; answering
256 of them as 256 scalar BFS calls costs 256 edge-gather passes over
the same CSR arrays. :class:`QueryEngine` instead packs the distinct
sources of a mixed batch into 64-lane bit-parallel sweeps
(:meth:`repro.bfs.kernel.TraversalKernel.distance_batch`), memoizes the
resulting distance rows (optionally persisting them through the
warm-start cache), and keeps recently used graphs' kernels alive in an
LRU registry — so a 256-query batch typically runs a handful of
physical sweeps.
"""

from repro.query.engine import BatchStats, QueryEngine, parse_query

__all__ = ["BatchStats", "QueryEngine", "parse_query"]
