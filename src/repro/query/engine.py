"""The batched query engine (see package docstring).

Query grammar (one query per string, whitespace-separated):

* ``dist U V`` — shortest-path distance between vertices ``U`` and
  ``V`` (``-1`` when they are in different components),
* ``ecc V`` — exact eccentricity of ``V`` within its component,
* ``diam`` — the exact (CC) diameter of the graph.

Tuples of the same shape (``("dist", u, v)`` etc.) are accepted
directly. Answers are plain ints, in query order.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.bfs.kernel import TraversalKernel
from repro.core.config import FDiamConfig
from repro.dynamic import DynamicDiameter, DynamicGraph, MutationBatch
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest

__all__ = ["BatchStats", "QueryEngine", "parse_query"]


def parse_query(query, *, num_vertices: int | None = None) -> tuple:
    """Normalize one query into a ``("dist"|"ecc"|"diam", ...)`` tuple.

    Vertex ids must be non-negative and — when ``num_vertices`` is
    given — below it. Violations raise :class:`AlgorithmError` here,
    at parse time, rather than deep inside a sweep: the serving layer
    rejects a bad query with a structured 400 *before* it joins a
    coalesced batch, so one malformed request can never poison the
    in-flight queries it would have shared a sweep with.
    """
    if isinstance(query, str):
        parts = query.split()
    else:
        parts = list(query)
    if not parts:
        raise AlgorithmError("empty query")
    kind = str(parts[0]).lower()
    parsed = None
    try:
        if kind == "dist" and len(parts) == 3:
            parsed = ("dist", int(parts[1]), int(parts[2]))
        elif kind == "ecc" and len(parts) == 2:
            parsed = ("ecc", int(parts[1]))
        elif kind == "diam" and len(parts) == 1:
            parsed = ("diam",)
    except (TypeError, ValueError) as exc:
        raise AlgorithmError(f"malformed query {query!r}: {exc}") from None
    if parsed is None:
        raise AlgorithmError(
            f"malformed query {query!r}; expected 'dist U V', 'ecc V', or 'diam'"
        )
    for v in parsed[1:]:
        if v < 0:
            raise AlgorithmError(
                f"malformed query {query!r}: vertex id {v} is negative"
            )
        if num_vertices is not None and v >= num_vertices:
            raise AlgorithmError(
                f"query vertex {v} out of range for n={num_vertices}"
            )
    return parsed


@dataclass
class BatchStats:
    """Accounting of one :meth:`QueryEngine.run` batch.

    ``scalar_traversals`` is what a one-BFS-per-query engine would have
    spent on the same batch (the denominator-free baseline the ISSUE's
    gather-pass comparison uses); ``sweeps`` is the number of physical
    edge-gather passes this engine actually ran. Memo hits and repeated
    sources cost zero sweeps.
    """

    queries: int = 0
    scalar_traversals: int = 0
    sweeps: int = 0
    bfs_sources: int = 0  # distinct sources actually swept this batch
    #: Queries answered without any traversal: memoized distance rows
    #: plus ``diam`` queries served from the per-graph diameter memo
    #: (a previous batch's resolution or the store's sidecar).
    memo_hits: int = 0
    edges_examined: int = 0
    lane_occupancy: float = 0.0
    #: Graph epoch the batch was answered under (0 for static graphs;
    #: the mutation counter of a registered
    #: :class:`~repro.dynamic.DynamicGraph` otherwise). The serving
    #: layer surfaces it per response so clients can line answers up
    #: with the mutation stream.
    epoch: int = 0

    @property
    def gather_pass_ratio(self) -> float:
        """How many scalar gather passes each physical sweep replaced."""
        return self.scalar_traversals / self.sweeps if self.sweeps else 0.0


class _GraphEntry:
    """One registered graph: kernel, memoized rows, cached diameter."""

    __slots__ = (
        "graph",
        "kernel",
        "executor",
        "memo",
        "diameter",
        "digest",
        "dirty",
        "dynamic",
        "maintainer",
        "epoch",
    )

    def __init__(self, graph, *, memory_budget: int | None = None):
        #: The mutable handle when registered as a DynamicGraph
        #: (``None`` for static entries).
        self.dynamic: DynamicGraph | None = (
            graph if isinstance(graph, DynamicGraph) else None
        )
        #: Incremental diameter maintainer (dynamic entries only).
        self.maintainer: DynamicDiameter | None = (
            DynamicDiameter(graph) if self.dynamic is not None else None
        )
        self.epoch = graph.epoch if self.dynamic is not None else 0
        #: The immutable CSR every sweep runs on: the graph itself for
        #: static entries, the current epoch's view for dynamic ones.
        self.graph: CSRGraph = (
            graph.view() if self.dynamic is not None else graph
        )
        self.kernel = TraversalKernel(self.graph, memory_budget=memory_budget)
        #: Lazily built sweep executor (see QueryEngine._executor_for).
        self.executor = None
        #: source vertex -> int32 distance row, LRU-ordered.
        self.memo: OrderedDict[int, np.ndarray] = OrderedDict()
        self.diameter: int | None = None
        self.digest: str | None = None
        self.dirty = False  # memo rows not yet flushed to the store

    def advance_epoch(self, *, memory_budget: int | None = None) -> None:
        """Epoch-tagged invalidation after a mutation batch.

        Everything derived from the previous epoch's adjacency is
        dropped or rebuilt: memoized distance rows (stale rows are
        upper/lower bounds, not answers), the cached diameter (the
        maintainer repairs it lazily on the next ``diam`` query), the
        kernel and executor (they hold the old CSR arrays), and the
        digest (so sidecar traffic can never alias epochs).
        """
        assert self.dynamic is not None
        self.epoch = self.dynamic.epoch
        self.graph = self.dynamic.view()
        if self.executor is not None:
            self.executor.close()
            self.executor = None
        self.kernel = TraversalKernel(self.graph, memory_budget=memory_budget)
        self.memo.clear()
        self.diameter = None
        self.dirty = False

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()
            self.executor = None


@dataclass
class QueryEngine:
    """Mixed distance/eccentricity/diameter batches over cached kernels.

    Parameters
    ----------
    store:
        Optional :class:`repro.cache.WarmStartStore`. When given, a
        registered graph preloads its memo from the sidecar's landmark
        rows, ``diam`` queries warm-start through :func:`fdiam_cached`,
        and :meth:`flush` persists the hottest memo rows back as
        landmarks for the next process.
    max_graphs:
        LRU capacity of the graph registry (kernels and memos of
        evicted graphs are dropped).
    batch_lanes:
        Upper bound on sources per physical sweep chunk
        (:meth:`TraversalKernel.distance_batch`).
    memo_vectors:
        Per-graph cap on memoized distance rows (LRU evicted).
    workers:
        Worker processes for the per-graph sweep executor. ``1`` (the
        default) keeps every sweep in-process on the bitparallel
        backend; ``> 1`` lets the cost model dispatch batches to a
        shared-memory pool per registered graph.
    memory_budget:
        Byte budget for decoded adjacency scratch, applied to every
        registered graph's kernel (and threaded into ``diam``
        resolution runs). Only takes effect for graphs backed by a
        block-compressed store (``.scsr`` loaded with ``mmap=True``);
        see :class:`repro.core.config.FDiamConfig`. ``None`` means
        unbounded.
    """

    store: object | None = None
    max_graphs: int = 4
    batch_lanes: int = 256
    memo_vectors: int = 64
    workers: int = 1
    memory_budget: int | None = None
    _graphs: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self):
        if self.max_graphs < 1:
            raise AlgorithmError("max_graphs must be >= 1")
        if self.batch_lanes < 1:
            raise AlgorithmError("batch_lanes must be >= 1")
        if self.memo_vectors < 0:
            raise AlgorithmError("memo_vectors must be >= 0")
        if self.workers < 1:
            raise AlgorithmError("workers must be >= 1")
        if self.memory_budget is not None and self.memory_budget < 0:
            raise AlgorithmError("memory_budget must be >= 0")

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add_graph(self, graph, key: str | None = None) -> str:
        """Register a graph under ``key`` (default: its name).

        ``graph`` may be a static :class:`CSRGraph` or a
        :class:`~repro.dynamic.DynamicGraph`; only the latter accepts
        :meth:`mutate` batches. Re-registering an existing key replaces
        the entry. With a store attached, the graph's sidecar (if any)
        seeds the memo with the cached landmark rows and the cached
        diameter — keyed by the epoch-aware digest for dynamic graphs,
        so a sidecar from another epoch can never seed anything.
        """
        key = key if key is not None else graph.name
        entry = _GraphEntry(graph, memory_budget=self.memory_budget)
        if self.store is not None:
            entry.digest = (
                graph.digest()
                if entry.dynamic is not None
                else graph_digest(graph)
            )
            art = self.store.load(entry.graph, digest=entry.digest)
            if art is not None:
                entry.diameter = int(art.diameter)
                if entry.maintainer is not None:
                    entry.maintainer.seed_from_artifacts(art)
                sources = np.asarray(art.landmark_sources, dtype=np.int64)
                dists = np.asarray(art.landmark_dists, dtype=np.int32)
                n = entry.graph.num_vertices
                usable = dists.shape == (len(sources), n) and bool(
                    ((sources >= 0) & (sources < n)).all()
                )
                if usable:
                    for j, s in enumerate(sources.tolist()):
                        self._memoize(entry, int(s), dists[j])
                elif len(sources):
                    if hasattr(self.store, "stale_rejects"):
                        self.store.stale_rejects += 1
                    warnings.warn(
                        f"discarding {len(sources)} stale landmark row(s) "
                        f"for graph {key!r} (shape or source mismatch); "
                        "queries run cold",
                        stacklevel=2,
                    )
                entry.dirty = False  # preloaded rows are already on disk
        old = self._graphs.get(key)
        if old is not None:
            old.close()
        self._graphs[key] = entry
        self._graphs.move_to_end(key)
        while len(self._graphs) > self.max_graphs:
            _, evicted = self._graphs.popitem(last=False)
            evicted.close()
        return key

    def remove_graph(self, key: str) -> bool:
        """Drop ``key`` from the registry, closing its executor.

        Returns whether the key was registered. The graph's backing
        store (if any) stays open — whoever opened the file owns it;
        the serving layer's byte-budgeted registry closes it after
        calling this.
        """
        entry = self._graphs.pop(key, None)
        if entry is None:
            return False
        entry.close()
        return True

    def graph_keys(self) -> list[str]:
        """Registered graph keys, least- to most-recently used."""
        return list(self._graphs)

    def executor_counters(self) -> dict:
        """Per-graph cumulative sweep-executor counters.

        Only graphs whose executor has been built (i.e. that swept at
        least one fresh source) appear; the serving layer's ``/stats``
        endpoint merges this with its own batch accounting.
        """
        return {
            key: entry.executor.counters.snapshot()
            for key, entry in self._graphs.items()
            if entry.executor is not None
        }

    def _entry(self, key: str) -> _GraphEntry:
        if key not in self._graphs:
            raise AlgorithmError(f"unknown graph {key!r}; add_graph() it first")
        self._graphs.move_to_end(key)
        return self._graphs[key]

    def _executor_for(self, entry: _GraphEntry):
        """The entry's sweep executor, built on first use.

        Single-worker engines pin the ``bitparallel`` backend, which
        reproduces the pre-executor chunked lane sweeps exactly; with a
        worker team the cost model dispatches per the graph structure.
        """
        if entry.executor is None:
            entry.executor = entry.kernel.sweep_executor(
                workers=self.workers,
                batch_lanes=self.batch_lanes,
                backend="bitparallel" if self.workers <= 1 else "auto",
            )
        return entry.executor

    def close(self) -> None:
        """Shut down every registered graph's executor (pools, shm)."""
        for entry in self._graphs.values():
            entry.close()

    # ------------------------------------------------------------------
    # Mutation (dynamic graphs)
    # ------------------------------------------------------------------
    def mutate(self, key: str, inserts=(), deletes=()) -> MutationBatch:
        """Apply one batched mutation to the dynamic graph under ``key``.

        Only valid for graphs registered as
        :class:`~repro.dynamic.DynamicGraph`; static entries raise
        :class:`AlgorithmError`. A batch that actually changes the edge
        set advances the entry's epoch and invalidates everything the
        previous epoch derived (memo rows, cached diameter, kernel,
        digest) — the diameter maintainer repairs its bounds lazily on
        the next ``diam`` query instead of recomputing here. Not
        thread-safe against concurrent :meth:`run`; the serving layer
        serializes both onto its single dispatch thread.
        """
        entry = self._entry(key)
        if entry.dynamic is None:
            raise AlgorithmError(
                f"graph {key!r} is static; register a DynamicGraph to mutate"
            )
        batch = entry.dynamic.apply(inserts, deletes)
        if batch.mutated:
            entry.advance_epoch(memory_budget=self.memory_budget)
            if self.store is not None:
                entry.digest = entry.dynamic.digest()
        return batch

    def graph_epoch(self, key: str) -> int:
        """Current mutation epoch of ``key`` (0 for static graphs)."""
        return self._entry(key).epoch

    def _memoize(self, entry: _GraphEntry, source: int, row: np.ndarray) -> None:
        if self.memo_vectors == 0:
            return
        entry.memo[source] = row
        entry.memo.move_to_end(source)
        while len(entry.memo) > self.memo_vectors:
            entry.memo.popitem(last=False)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run(self, key: str, queries) -> tuple[list[int], BatchStats]:
        """Answer a batch of queries against the graph under ``key``.

        All distinct sources the batch needs that are not already
        memoized are packed into chunked 64-lane sweeps; ``diam`` is
        answered from the entry's cached diameter when known (a
        previous batch, or the store's sidecar), else by one
        :func:`repro.core.fdiam.fdiam` run whose traversals are
        charged to the batch.
        """
        entry = self._entry(key)
        n = entry.graph.num_vertices
        parsed = [parse_query(q, num_vertices=n) for q in queries]
        stats = BatchStats(queries=len(parsed), epoch=entry.epoch)

        diam_queries = 0
        wanted: list[int] = []
        for q in parsed:
            if q[0] == "diam":
                diam_queries += 1
                continue
            # One scalar BFS from the (first) named vertex answers the
            # query, which is exactly what the batched path amortizes.
            stats.scalar_traversals += 1
            wanted.append(q[1])

        sources: list[int] = []
        seen: set[int] = set()
        for v in wanted:
            if v in entry.memo:
                entry.memo.move_to_end(v)
                stats.memo_hits += 1
            elif v not in seen:
                seen.add(v)
                sources.append(v)

        if sources:
            dist, info = self._executor_for(entry).distance_rows(sources)
            stats.bfs_sources = len(sources)
            stats.sweeps += info.sweeps
            stats.edges_examined += info.edges_examined
            stats.lane_occupancy = info.lane_occupancy
            for j, s in enumerate(sources):
                self._memoize(entry, s, dist[j])
                if self.memo_vectors > 0:
                    entry.dirty = True
            rows = {s: dist[j] for j, s in enumerate(sources)}
        else:
            rows = {}

        if diam_queries:
            if entry.diameter is None:
                entry.diameter = self._compute_diameter(entry, stats)
            else:
                # Memoized per graph across batches: every later diam
                # answer is O(1) (the serving layer's hottest query).
                stats.memo_hits += diam_queries

        answers: list[int] = []
        for q in parsed:
            if q[0] == "diam":
                answers.append(int(entry.diameter))
                continue
            source = q[1]
            row = rows.get(source)
            if row is None:
                row = entry.memo[source]
            if q[0] == "dist":
                answers.append(int(row[q[2]]))
            else:  # ecc
                answers.append(int(row.max()))
        return answers, stats

    def _compute_diameter(self, entry: _GraphEntry, stats: BatchStats) -> int:
        """Resolve a ``diam`` query, charging its traversals to ``stats``.

        The run's traversals are charged to *both* sides of the
        gather-pass ledger — a per-query scalar engine would execute
        the identical diameter run — so ``diam`` neither inflates nor
        dilutes the batching ratio; once resolved, the memoized value
        makes every later ``diam`` free.

        Dynamic entries route through the
        :class:`~repro.dynamic.DynamicDiameter` maintainer instead:
        after an insert-only mutation window the repair path typically
        costs one witness BFS rather than a full cold run, and the
        maintainer falls back to cold ``fdiam`` itself whenever repair
        is unsound (deletions, disconnection) or estimated to lose.
        """
        if entry.maintainer is not None:
            repair = entry.maintainer.refresh()
            stats.sweeps += repair.bfs_traversals
            stats.scalar_traversals += repair.bfs_traversals
            return int(entry.maintainer.diameter)
        if self.store is not None:
            # Call-time import: repro.cache sits above the query layer's
            # other dependencies and imports prep/core.
            from repro.cache.runner import fdiam_cached

            result, _ = fdiam_cached(
                entry.graph,
                FDiamConfig(prep="auto", memory_budget=self.memory_budget),
                store=self.store,
            )
        else:
            from repro.core.fdiam import fdiam

            result = fdiam(
                entry.graph,
                FDiamConfig(prep="auto", memory_budget=self.memory_budget),
            )
        stats.sweeps += result.stats.bfs_traversals
        stats.scalar_traversals += result.stats.bfs_traversals
        stats.edges_examined += result.stats.edges_examined
        return result.diameter

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def flush(self, key: str | None = None, *, max_rows: int = 8) -> int:
        """Persist the hottest memo rows as sidecar landmarks.

        Returns the number of graphs whose sidecar was rewritten. A
        no-op without a store, for clean entries, and for graphs that
        have no sidecar yet (the memo alone cannot fabricate the
        diameter/status certificate a sidecar requires).
        """
        if self.store is None:
            return 0
        keys = [key] if key is not None else list(self._graphs)
        written = 0
        for k in keys:
            entry = self._graphs.get(k)
            if entry is None or not entry.dirty:
                continue
            art = self.store.load(entry.graph, digest=entry.digest)
            if art is None:
                continue
            hottest = list(entry.memo.items())[-max_rows:]
            if not hottest:
                continue
            art.landmark_sources = np.asarray(
                [s for s, _ in hottest], dtype=np.int64
            )
            art.landmark_dists = np.stack([r for _, r in hottest]).astype(
                np.int32
            )
            art.landmark_eccs = np.asarray(
                [int(r.max()) for _, r in hottest], dtype=np.int64
            )
            self.store.save(art)
            entry.dirty = False
            written += 1
        return written
