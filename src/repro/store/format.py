"""On-disk layout of the ``.scsr`` block-compressed CSR container.

One little-endian image, in file order (DESIGN.md §13 has the design
rationale):

1. **Fixed header** (112 bytes, :data:`HEADER_STRUCT`): magic,
   schema version, flags (indices dtype), vertex/arc counts, block
   size, block count, the byte lengths of the two variable header
   strings, and the 64-char hex content digest of the decoded CSR
   arrays.
2. **Name** and **reorder-provenance** strings (UTF-8), padded to an
   8-byte boundary so everything after them stays aligned.
3. **Block index** — three fixed-width ``uint64`` tables of
   ``num_blocks + 1`` entries each, viewable zero-copy off the mmap:
   ``first_edge`` (cumulative arc count at each block boundary, i.e.
   ``indptr`` sampled every ``block_size`` vertices), ``deg_offsets``
   (byte offsets into the degree stream), and ``adj_offsets`` (byte
   offsets into the adjacency stream).
4. **Degree stream** — the ``n`` vertex degrees, varint-encoded.
5. **Adjacency stream** — per row, a zigzag first-neighbour delta,
   then ``gap - 1`` for every following neighbour (rows are sorted and
   deduplicated, so gaps are ≥ 1). First-neighbour deltas chain
   *within a block*: the block's first non-empty row encodes against
   its own vertex id, each later row against the previous non-empty
   row's first neighbour — locality-reordered CSRs have near-identical
   firsts in consecutive rows, and the chain never crosses a block
   boundary, so blocks stay independently decodable.

Every structural check in :func:`unpack_header` raises
:class:`~repro.errors.StoreFormatError` with the failing field named,
so a damaged file fails loudly at open time instead of mid-decode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import StoreFormatError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "STORAGE_TAG",
    "HEADER_STRUCT",
    "StoreHeader",
    "pack_header",
    "unpack_header",
]

#: First 8 bytes of every ``.scsr`` file.
MAGIC = b"REPRSCSR"

#: Schema version this module reads and writes.
FORMAT_VERSION = 1

#: The ``CSRGraph.storage`` tag of graphs decoded from this format —
#: the string :func:`repro.graph.io.graph_digest` folds into the cache
#: key so a ``.scsr`` load can never collide with an ``.npz`` load.
STORAGE_TAG = f"scsr:v{FORMAT_VERSION}"

#: magic, version, flags, n, m, block_size, num_blocks, name_len,
#: provenance_len, digest — 112 bytes, all little-endian.
HEADER_STRUCT = struct.Struct("<8sIIQQII II64s")

#: Flag bit: adjacency decodes to ``int64`` (unset → ``int32``).
_FLAG_INT64 = 1


@dataclass(frozen=True)
class StoreHeader:
    """Parsed fixed header plus the variable strings."""

    num_vertices: int
    num_directed_edges: int
    block_size: int
    num_blocks: int
    indices_dtype: np.dtype
    digest: str
    name: str
    provenance: str

    @property
    def index_entries(self) -> int:
        """Entries per block-index table (``num_blocks + 1``)."""
        return self.num_blocks + 1

    @property
    def index_nbytes(self) -> int:
        """Total bytes of the three ``uint64`` block-index tables."""
        return 3 * 8 * self.index_entries


def _padded(nbytes: int) -> int:
    return (nbytes + 7) & ~7


def pack_header(header: StoreHeader) -> bytes:
    """Serialize the header + strings + alignment padding."""
    name = header.name.encode("utf-8")
    provenance = header.provenance.encode("utf-8")
    digest = header.digest.encode("ascii")
    if len(digest) != 64:
        raise StoreFormatError(
            f"digest must be 64 hex chars, got {len(digest)}"
        )
    flags = _FLAG_INT64 if header.indices_dtype == np.dtype(np.int64) else 0
    fixed = HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        flags,
        header.num_vertices,
        header.num_directed_edges,
        header.block_size,
        header.num_blocks,
        len(name),
        len(provenance),
        digest,
    )
    variable = name + provenance
    return fixed + variable + b"\0" * (_padded(len(variable)) - len(variable))


def unpack_header(image: np.ndarray, *, source: str = "<buffer>") -> tuple[StoreHeader, int]:
    """Parse the header of a raw ``uint8`` image.

    Returns ``(header, index_offset)`` where ``index_offset`` is the
    byte position of the first block-index table. Raises
    :class:`StoreFormatError` on any malformed field — this is the
    single choke point the corruption tests exercise.
    """
    if len(image) < HEADER_STRUCT.size:
        raise StoreFormatError(
            f"{source}: file too short for a .scsr header "
            f"({len(image)} < {HEADER_STRUCT.size} bytes)"
        )
    (
        magic,
        version,
        flags,
        num_vertices,
        num_arcs,
        block_size,
        num_blocks,
        name_len,
        provenance_len,
        digest_raw,
    ) = HEADER_STRUCT.unpack(image[: HEADER_STRUCT.size].tobytes())
    if magic != MAGIC:
        raise StoreFormatError(
            f"{source}: bad magic {magic!r} (not a .scsr file)"
        )
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{source}: schema version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if block_size < 1:
        raise StoreFormatError(f"{source}: block size {block_size} < 1")
    expected_blocks = -(-num_vertices // block_size) if num_vertices else 0
    if num_blocks != expected_blocks:
        raise StoreFormatError(
            f"{source}: header claims {num_blocks} blocks but "
            f"{num_vertices} vertices / block size {block_size} "
            f"needs {expected_blocks}"
        )
    var_start = HEADER_STRUCT.size
    var_end = var_start + name_len + provenance_len
    index_offset = var_start + _padded(name_len + provenance_len)
    if index_offset > len(image):
        raise StoreFormatError(
            f"{source}: header strings run past end of file (truncated)"
        )
    name_end = var_start + name_len
    try:
        digest = digest_raw.decode("ascii")
        name = image[var_start:name_end].tobytes().decode("utf-8")
        provenance = image[name_end:var_end].tobytes().decode("utf-8")
    except UnicodeDecodeError as exc:
        raise StoreFormatError(f"{source}: corrupt header strings") from exc
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        raise StoreFormatError(f"{source}: corrupt content digest in header")
    header = StoreHeader(
        num_vertices=num_vertices,
        num_directed_edges=num_arcs,
        block_size=block_size,
        num_blocks=num_blocks,
        indices_dtype=np.dtype(np.int64 if flags & _FLAG_INT64 else np.int32),
        digest=digest,
        name=name,
        provenance=provenance,
    )
    return header, index_offset
