"""The ``.scsr`` succinct block-compressed CSR container.

WebGraph-style compression specialized to this package's CSR graphs
(sorted, deduplicated, symmetric adjacency): every row stores the
zigzag delta of its first neighbour against the row's own vertex id,
then ``gap - 1`` for each following neighbour, all varint-packed
(:mod:`repro.store.varint`). Rows are grouped into fixed-size vertex
*blocks* with a fixed-width ``uint64`` offset index, so any block
decodes independently of the rest of the image — partial traversals
touch only the file regions their frontier actually visits.

Locality-aware vertex orders (the PR 3 ``--prep`` reorder pipeline)
are what make the gaps small: after a BFS/RCM reorder neighbours carry
nearby ids, first deltas and gaps fit in one byte, and a road-network
CSR drops from ~12 bytes/arc (``int32`` ``.npz``) to ~1.5 bytes/arc.
The reorder strategy travels in the header's provenance string.

Three entry points:

* :func:`save_scsr` — encode a :class:`~repro.graph.csr.CSRGraph`
  (fully vectorized; returns the size accounting the benchmarks
  report).
* :func:`open_scsr` / :class:`CompressedCSR` — mmap the image
  zero-copy and decode per block through an LRU block cache
  (:meth:`CompressedCSR.gather_rows` is the traversal kernel's
  block-decoding gather path).
* :func:`load_scsr` — full decode back to a ``CSRGraph`` (storage tag
  ``"scsr:v1"``), digest-verified; with ``mmap=True`` the compressed
  image stays attached as the graph's ``backing_store`` so the kernel
  and the multiprocess pool can use it.

Every corruption mode raises :class:`~repro.errors.StoreFormatError`
with the file and failing region named.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import StoreFormatError
from repro.graph.csr import CSRGraph
from repro.graph.io import content_digest
from repro.store.format import (
    FORMAT_VERSION,
    STORAGE_TAG,
    StoreHeader,
    pack_header,
    unpack_header,
)
from repro.store.varint import (
    decode_varints,
    encode_varints,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "BlockCacheStats",
    "StoreInfo",
    "CompressedCSR",
    "save_scsr",
    "open_scsr",
    "load_scsr",
]

#: Vertices per block. 64 keeps a block's decoded rows around one
#: cache line of ids per vertex on the pinned analogs while the
#: fixed-width index stays < 0.4 bytes/vertex.
DEFAULT_BLOCK_SIZE = 64

#: Blocks the decode cache retains (LRU); at the default block size
#: this bounds resident decoded scratch to a few MiB even on hub rows.
DEFAULT_CACHE_BLOCKS = 512


@dataclass
class BlockCacheStats:
    """Decode accounting of one :class:`CompressedCSR`.

    Mirrors the :class:`~repro.bfs.kernel.WorkspaceStats` style:
    ``block_requests`` counts every block the gather path asked for,
    ``block_hits`` the ones served from the LRU cache without
    decoding, ``blocks_decoded`` / ``decoded_bytes`` the actual varint
    work, and ``evictions`` the cache pressure.
    """

    block_requests: int = 0
    block_hits: int = 0
    blocks_decoded: int = 0
    decoded_bytes: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of block requests served without a decode."""
        if self.block_requests == 0:
            return 0.0
        return self.block_hits / self.block_requests


@dataclass(frozen=True)
class StoreInfo:
    """Size accounting returned by :func:`save_scsr`."""

    path: str
    nbytes: int
    num_vertices: int
    num_edges: int
    num_directed_edges: int
    block_size: int
    num_blocks: int
    provenance: str

    @property
    def bytes_per_edge(self) -> float:
        """File bytes per undirected edge (the bench-JSON headline)."""
        return self.nbytes / max(self.num_edges, 1)

    @property
    def bytes_per_arc(self) -> float:
        """File bytes per stored directed arc."""
        return self.nbytes / max(self.num_directed_edges, 1)


def _block_boundaries(num_vertices: int, block_size: int) -> np.ndarray:
    """Vertex id at each block boundary (length ``num_blocks + 1``)."""
    num_blocks = -(-num_vertices // block_size) if num_vertices else 0
    bounds = np.arange(num_blocks + 1, dtype=np.int64) * block_size
    return np.minimum(bounds, num_vertices)


def _decode_rows(
    vals: np.ndarray,
    degrees: np.ndarray,
    first_vertex: int,
    num_vertices: int,
    block_size: int,
    *,
    source: str,
    region: str,
) -> np.ndarray:
    """Rebuild absolute neighbour ids from decoded delta values.

    ``vals`` holds the varint-decoded codes of consecutive rows whose
    degrees are ``degrees`` and whose first row is vertex
    ``first_vertex``. Two layered carry-corrected ``cumsum`` passes do
    all the work with no per-row loop:

    1. the zigzag codes at the row starts chain first-neighbour
       deltas row-to-row *within each block* (the block's first
       non-empty row is anchored to its own vertex id), so one cumsum
       per block segment realizes every row's first neighbour;
    2. the remaining codes are ``gap - 1`` values, so one global
       cumsum — minus each row's carried-in prefix (``np.repeat``) —
       realizes the absolute ids.
    """
    local_indptr = np.concatenate(
        ([0], np.cumsum(degrees.astype(np.int64)))
    )
    if len(vals) == 0:
        return np.empty(0, dtype=np.int64)
    nz = degrees > 0
    row_starts = local_indptr[:-1][nz]
    row_ids = first_vertex + np.flatnonzero(nz)

    # Pass 1: first neighbours, chained per block segment.
    z = zigzag_decode(vals[row_starts])
    blocks = row_ids // block_size
    seg_first = np.empty(len(row_ids), dtype=bool)
    seg_first[0] = True
    seg_first[1:] = blocks[1:] != blocks[:-1]
    z[seg_first] += row_ids[seg_first]
    seg_pos = np.flatnonzero(seg_first)
    seg_lens = np.diff(np.append(seg_pos, len(row_ids)))
    chained = np.cumsum(z)
    firsts = chained - np.repeat((chained - z)[seg_pos], seg_lens)

    # Pass 2: within-row gaps, carry-corrected global cumsum.
    d = vals.astype(np.int64) + 1
    d[row_starts] = firsts
    running = np.cumsum(d)
    carry = (running - d)[row_starts]
    adj = running - np.repeat(carry, degrees[nz])
    if len(adj) and (int(adj.min()) < 0 or int(adj.max()) >= num_vertices):
        raise StoreFormatError(
            f"{source}: {region}: decoded neighbour id out of range "
            f"[0, {num_vertices}) — corrupt adjacency stream"
        )
    return adj


class CompressedCSR:
    """A parsed ``.scsr`` image with per-block decoding.

    The image (mmap or in-memory buffer) is never copied: the header
    and the three ``uint64`` index tables are zero-copy views, and
    only the blocks a caller touches are varint-decoded — into fresh
    arrays held by an LRU cache whose footprint :class:`BlockCacheStats`
    tracks. All parsing errors raise
    :class:`~repro.errors.StoreFormatError` naming ``source``.
    """

    def __init__(
        self,
        image: np.ndarray,
        *,
        source: str = "<buffer>",
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    ):
        self._image = np.ascontiguousarray(image, dtype=np.uint8).reshape(-1)
        self._source = source
        self.stats = BlockCacheStats()
        self._cache: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._cache_blocks = max(int(cache_blocks), 1)
        self._degrees: np.ndarray | None = None
        self._indptr: np.ndarray | None = None

        self.header, index_offset = unpack_header(self._image, source=source)
        entries = self.header.index_entries
        table = 8 * entries
        streams_start = index_offset + 3 * table
        if streams_start > len(self._image):
            raise StoreFormatError(
                f"{source}: file too short for the block index (truncated)"
            )

        def _table(k: int) -> np.ndarray:
            lo = index_offset + k * table
            return self._image[lo : lo + table].view(np.uint64)

        self._first_edge = _table(0).astype(np.int64)
        self._deg_offsets = _table(1).astype(np.int64)
        self._adj_offsets = _table(2).astype(np.int64)
        for label, offs, last in (
            ("first_edge", self._first_edge, self.header.num_directed_edges),
            ("deg_offsets", self._deg_offsets, None),
            ("adj_offsets", self._adj_offsets, None),
        ):
            if offs[0] != 0 or (np.diff(offs) < 0).any():
                raise StoreFormatError(
                    f"{source}: {label} index is not monotone (corrupt)"
                )
            if last is not None and offs[-1] != last:
                raise StoreFormatError(
                    f"{source}: {label} index ends at {int(offs[-1])}, "
                    f"header claims {last} arcs"
                )
        deg_len = int(self._deg_offsets[-1])
        adj_len = int(self._adj_offsets[-1])
        self._deg_stream = self._image[streams_start : streams_start + deg_len]
        adj_start = streams_start + deg_len
        self._adj_stream = self._image[adj_start : adj_start + adj_len]
        if adj_start + adj_len > len(self._image):
            raise StoreFormatError(
                f"{source}: adjacency stream runs past end of file "
                f"(truncated: need {adj_start + adj_len} bytes, "
                f"have {len(self._image)})"
            )
        self._bounds = _block_boundaries(
            self.header.num_vertices, self.header.block_size
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | os.PathLike, *, cache_blocks: int = DEFAULT_CACHE_BLOCKS
    ) -> "CompressedCSR":
        """Memory-map ``path`` read-only and parse it (zero-copy)."""
        try:
            image = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise StoreFormatError(f"{path}: cannot map .scsr file ({exc})") from exc
        return cls(image, source=str(path), cache_blocks=cache_blocks)

    @classmethod
    def from_buffer(
        cls,
        buf,
        *,
        source: str = "<shared>",
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
    ) -> "CompressedCSR":
        """Parse an in-memory image (e.g. a shared-memory segment)."""
        return cls(
            np.frombuffer(buf, dtype=np.uint8),
            source=source,
            cache_blocks=cache_blocks,
        )

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def num_directed_edges(self) -> int:
        return self.header.num_directed_edges

    @property
    def num_blocks(self) -> int:
        return self.header.num_blocks

    @property
    def block_size(self) -> int:
        return self.header.block_size

    @property
    def name(self) -> str:
        return self.header.name

    @property
    def provenance(self) -> str:
        return self.header.provenance

    @property
    def digest(self) -> str:
        """Content digest of the decoded arrays (from the header)."""
        return self.header.digest

    @property
    def image_nbytes(self) -> int:
        """Bytes of the compressed image (what shm sharing ships)."""
        return len(self._image)

    @property
    def image(self) -> np.ndarray:
        """The raw ``uint8`` image (read-only view)."""
        return self._image

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """All vertex degrees (decoded once from the degree stream)."""
        if self._degrees is None:
            n = self.header.num_vertices
            degs = decode_varints(self._deg_stream, expected=n).astype(np.int64)
            if int(degs.sum()) != self.header.num_directed_edges:
                raise StoreFormatError(
                    f"{self._source}: degree stream sums to {int(degs.sum())}, "
                    f"header claims {self.header.num_directed_edges} arcs"
                )
            indptr = np.concatenate(([0], np.cumsum(degs)))
            if (indptr[self._bounds] != self._first_edge).any():
                raise StoreFormatError(
                    f"{self._source}: first_edge index disagrees with "
                    "the degree stream (corrupt)"
                )
            self._indptr = indptr
            degs.setflags(write=False)
            self._degrees = degs
        return self._degrees

    def indptr(self) -> np.ndarray:
        """The full ``int64`` row-pointer array (cached)."""
        if self._indptr is None:
            self.degrees()
        return self._indptr

    def decode_block(self, block: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode (or fetch cached) one block's rows.

        Returns ``(local_indptr, neighbors)``: ``local_indptr`` has one
        entry per block vertex plus one, relative to the block's first
        arc, and ``neighbors`` is the block's concatenated adjacency
        (``int64`` absolute ids). Vertex ``v`` of block ``b`` (global
        id ``b * block_size + i``) owns
        ``neighbors[local_indptr[i]:local_indptr[i + 1]]``.
        """
        if not 0 <= block < self.header.num_blocks:
            raise StoreFormatError(
                f"{self._source}: block {block} out of range "
                f"[0, {self.header.num_blocks})"
            )
        self.stats.block_requests += 1
        cached = self._cache.get(block)
        if cached is not None:
            self.stats.block_hits += 1
            self._cache.move_to_end(block)
            return cached
        lo_v, hi_v = int(self._bounds[block]), int(self._bounds[block + 1])
        region = f"block {block}"
        degs = decode_varints(
            self._deg_stream[self._deg_offsets[block] : self._deg_offsets[block + 1]],
            expected=hi_v - lo_v,
        ).astype(np.int64)
        arcs = int(self._first_edge[block + 1] - self._first_edge[block])
        if int(degs.sum()) != arcs:
            raise StoreFormatError(
                f"{self._source}: {region}: degrees sum to {int(degs.sum())}, "
                f"block index claims {arcs} arcs (corrupt)"
            )
        vals = decode_varints(
            self._adj_stream[self._adj_offsets[block] : self._adj_offsets[block + 1]],
            expected=arcs,
        )
        adj = _decode_rows(
            vals,
            degs,
            lo_v,
            self.header.num_vertices,
            self.header.block_size,
            source=self._source,
            region=region,
        )
        local_indptr = np.concatenate(([0], np.cumsum(degs)))
        entry = (local_indptr, adj)
        self._cache[block] = entry
        self.stats.blocks_decoded += 1
        self.stats.decoded_bytes += local_indptr.nbytes + adj.nbytes
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def gather_rows(
        self, vertices: np.ndarray, *, pool=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbour lists of ``vertices`` via block decode.

        The block-path twin of
        :func:`repro.bfs.frontier.gather_neighbors`: vertices are
        grouped by block, each needed block is decoded once (LRU-cached
        across calls), and the rows are scattered back into request
        order with the same ``repeat``/``cumsum`` arithmetic the
        in-memory gather uses. Returns ``(values, lengths)``.

        ``pool`` (a duck-typed :class:`~repro.bfs.kernel.Workspace`)
        supplies the cached ``arange`` ramp.
        """
        v = np.asarray(vertices, dtype=np.int64).ravel()
        if len(v) and (int(v.min()) < 0 or int(v.max()) >= self.num_vertices):
            raise StoreFormatError(
                f"{self._source}: gather vertex out of range "
                f"[0, {self.num_vertices})"
            )
        lengths = self.degrees()[v] if len(v) else np.empty(0, dtype=np.int64)
        total = int(lengths.sum())
        out = np.empty(total, dtype=np.int64)
        if total == 0:
            return out, lengths
        out_prefix = np.cumsum(lengths) - lengths
        blocks = v // self.header.block_size
        for block in np.unique(blocks):
            sel = np.flatnonzero(blocks == block)
            local_indptr, adj = self.decode_block(int(block))
            vloc = v[sel] - int(block) * self.header.block_size
            starts = local_indptr[vloc]
            lens = local_indptr[vloc + 1] - starts
            tot = int(lens.sum())
            if tot == 0:
                continue
            ramp = (
                pool.arange(tot)
                if pool is not None
                else np.arange(tot, dtype=np.int64)
            )
            prefix = np.cumsum(lens) - lens
            flat = ramp[:tot] + np.repeat(starts - prefix, lens)
            dest = ramp[:tot] + np.repeat(out_prefix[sel] - prefix, lens)
            out[dest] = adj[flat]
        return out, lengths

    def to_graph(self, *, verify: bool = True) -> CSRGraph:
        """Full vectorized decode into a :class:`CSRGraph`.

        The one-shot path behind :func:`load_scsr`: both streams decode
        in single passes (no per-block loop), and with ``verify`` the
        result is hashed and compared against the header's content
        digest — any bit damage the structural checks missed fails
        here instead of producing silently wrong distances.
        """
        degs = self.degrees()
        indptr = self.indptr()
        vals = decode_varints(
            self._adj_stream, expected=self.header.num_directed_edges
        )
        adj = _decode_rows(
            vals,
            degs,
            0,
            self.header.num_vertices,
            self.header.block_size,
            source=self._source,
            region="adjacency stream",
        )
        indices = adj.astype(self.header.indices_dtype)
        if verify:
            actual = content_digest(indptr, indices)
            if actual != self.header.digest:
                raise StoreFormatError(
                    f"{self._source}: content digest mismatch after decode "
                    f"(header {self.header.digest[:12]}…, decoded "
                    f"{actual[:12]}…) — corrupt store"
                )
        return CSRGraph(
            indptr, indices, name=self.header.name, storage=STORAGE_TAG
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the image reference and decoded caches (idempotent).

        For mmap-backed stores this releases the mapping once no
        decoded graph view references it (decoded arrays are copies,
        never views, so closing is always safe).
        """
        self._cache.clear()
        image = self._image
        self._image = np.empty(0, dtype=np.uint8)
        self._deg_stream = self._adj_stream = self._image
        if isinstance(image, np.memmap):
            try:
                image._mmap.close()  # type: ignore[attr-defined]
            except (AttributeError, BufferError, OSError):
                pass

    def __enter__(self) -> "CompressedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedCSR(name={self.name!r}, n={self.num_vertices}, "
            f"arcs={self.num_directed_edges}, blocks={self.num_blocks}, "
            f"{self.image_nbytes} bytes)"
        )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def save_scsr(
    graph: CSRGraph,
    path: str | os.PathLike,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    provenance: str = "",
) -> StoreInfo:
    """Encode ``graph`` into a ``.scsr`` image at ``path``.

    Fully vectorized (delta computation, varint packing, and block
    offset placement are all array passes). ``provenance`` records how
    the vertex order was produced (e.g. ``"reorder=bfs"``) — the
    compression ratio is a property of graph × order, and the header
    keeps the pairing honest. The write is atomic (temp file + rename)
    so a crash cannot leave a half-written store behind.
    """
    if block_size < 1:
        raise StoreFormatError(f"block size must be >= 1, got {block_size}")
    n = graph.num_vertices
    m = graph.num_directed_edges
    indptr = graph.indptr
    degrees = np.diff(indptr)

    deg_stream, deg_lengths = encode_varints(degrees.astype(np.uint64))

    idx = graph.indices.astype(np.int64)
    d = np.empty(m, dtype=np.int64)
    if m:
        d[0] = 0
        d[1:] = idx[1:] - idx[:-1] - 1
    row_starts = indptr[:-1][degrees > 0]
    row_ids = np.flatnonzero(degrees > 0)
    # Row-start slots hold cross-row garbage (possibly negative) until
    # this overwrite; every other slot is a within-row gap - 1 >= 0.
    d[row_starts] = 0
    codes = d.astype(np.uint64)
    if len(row_ids):
        # First-neighbour codes chain row-to-row within a block: each
        # block's first non-empty row anchors to its own vertex id,
        # later rows encode against the previous non-empty row's first
        # neighbour (consecutive rows of a locality-reordered CSR have
        # near-identical firsts, so the chained delta is ~1 byte where
        # the absolute one needs 2-3). Blocks stay self-contained.
        firsts = idx[row_starts]
        row_blocks = row_ids // block_size
        seg_first = np.empty(len(row_ids), dtype=bool)
        seg_first[0] = True
        seg_first[1:] = row_blocks[1:] != row_blocks[:-1]
        prev = np.empty(len(row_ids), dtype=np.int64)
        prev[0] = 0
        prev[1:] = firsts[:-1]
        base = np.where(seg_first, row_ids, prev)
        codes[row_starts] = zigzag_encode(firsts - base)
    adj_stream, adj_lengths = encode_varints(codes)

    bounds = _block_boundaries(n, block_size)
    num_blocks = len(bounds) - 1
    first_edge = indptr[bounds].astype(np.uint64)
    deg_cum = np.concatenate(([0], np.cumsum(deg_lengths)))
    adj_cum = np.concatenate(([0], np.cumsum(adj_lengths)))
    deg_offsets = deg_cum[bounds].astype(np.uint64)
    adj_offsets = adj_cum[indptr[bounds]].astype(np.uint64)

    header = StoreHeader(
        num_vertices=n,
        num_directed_edges=m,
        block_size=block_size,
        num_blocks=num_blocks,
        indices_dtype=graph.indices.dtype,
        digest=content_digest(graph.indptr, graph.indices),
        name=graph.name,
        provenance=provenance,
    )
    payload = b"".join(
        (
            pack_header(header),
            np.ascontiguousarray(first_edge, dtype="<u8").tobytes(),
            np.ascontiguousarray(deg_offsets, dtype="<u8").tobytes(),
            np.ascontiguousarray(adj_offsets, dtype="<u8").tobytes(),
            deg_stream.tobytes(),
            adj_stream.tobytes(),
        )
    )
    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash cleanup
            os.unlink(tmp)
    return StoreInfo(
        path=path,
        nbytes=len(payload),
        num_vertices=n,
        num_edges=graph.num_edges,
        num_directed_edges=m,
        block_size=block_size,
        num_blocks=num_blocks,
        provenance=provenance,
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def open_scsr(
    path: str | os.PathLike, *, cache_blocks: int = DEFAULT_CACHE_BLOCKS
) -> CompressedCSR:
    """Open a ``.scsr`` file as a block-decodable handle (mmap, zero-copy)."""
    return CompressedCSR.open(path, cache_blocks=cache_blocks)


def load_scsr(
    path: str | os.PathLike, *, mmap: bool = False, verify: bool = True
) -> CSRGraph:
    """Load a ``.scsr`` file into a :class:`CSRGraph`.

    The decoded graph carries ``storage="{tag}"`` so its
    :func:`~repro.graph.io.graph_digest` — and with it every warm-start
    sidecar — is distinct from an ``.npz`` load of the same arrays.

    With ``mmap=True`` the compressed image stays memory-mapped and
    attached as the graph's :attr:`~repro.graph.csr.CSRGraph.backing_store`:
    the traversal kernel can then route level-capped expansions through
    per-block decoding, and :class:`~repro.parallel.shm.SharedCSR`
    ships the compressed image (not the decoded arrays) to worker
    processes. With ``mmap=False`` the store is closed after the
    decode and the graph is indistinguishable from any in-memory CSR
    apart from its storage tag.
    """
    store = open_scsr(path)
    try:
        graph = store.to_graph(verify=verify)
    except Exception:
        store.close()
        raise
    if mmap:
        object.__setattr__(graph, "_backing", store)
    else:
        store.close()
    return graph


load_scsr.__doc__ = load_scsr.__doc__.format(tag=STORAGE_TAG)

# Re-exported for introspection parity with the format module.
SCHEMA_VERSION = FORMAT_VERSION
