"""The ``.scsr`` succinct block-compressed CSR container.

WebGraph-style compression specialized to this package's CSR graphs
(sorted, deduplicated, symmetric adjacency): every row stores the
zigzag delta of its first neighbour against the row's own vertex id,
then ``gap - 1`` for each following neighbour, all varint-packed
(:mod:`repro.store.varint`). Rows are grouped into fixed-size vertex
*blocks* with a fixed-width ``uint64`` offset index, so any block
decodes independently of the rest of the image — partial traversals
touch only the file regions their frontier actually visits.

Locality-aware vertex orders (the PR 3 ``--prep`` reorder pipeline)
are what make the gaps small: after a BFS/RCM reorder neighbours carry
nearby ids, first deltas and gaps fit in one byte, and a road-network
CSR drops from ~12 bytes/arc (``int32`` ``.npz``) to ~1.5 bytes/arc.
The reorder strategy travels in the header's provenance string.

Three entry points:

* :func:`save_scsr` — encode a :class:`~repro.graph.csr.CSRGraph`
  (fully vectorized; returns the size accounting the benchmarks
  report).
* :func:`open_scsr` / :class:`CompressedCSR` — mmap the image
  zero-copy and decode per block through an LRU block cache
  (:meth:`CompressedCSR.gather_rows` is the traversal kernel's
  block-decoding gather path).
* :func:`load_scsr` — full decode back to a ``CSRGraph`` (storage tag
  ``"scsr:v1"``), digest-verified; with ``mmap=True`` the compressed
  image stays attached as the graph's ``backing_store`` so the kernel
  and the multiprocess pool can use it.

Every corruption mode raises :class:`~repro.errors.StoreFormatError`
with the file and failing region named.
"""

from __future__ import annotations

import os
import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import StoreFormatError
from repro.graph.csr import CSRGraph
from repro.graph.io import content_digest
from repro.store.format import (
    FORMAT_VERSION,
    STORAGE_TAG,
    StoreHeader,
    pack_header,
    unpack_header,
)
from repro.store.varint import (
    decode_varints,
    encode_varints,
    varint_offsets,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "BlockCacheStats",
    "StoreInfo",
    "CompressedCSR",
    "save_scsr",
    "open_scsr",
    "load_scsr",
]

#: Vertices per block. 64 keeps a block's decoded rows around one
#: cache line of ids per vertex on the pinned analogs while the
#: fixed-width index stays < 0.4 bytes/vertex.
DEFAULT_BLOCK_SIZE = 64

#: Blocks the decode cache retains (LRU); at the default block size
#: this bounds resident decoded scratch to a few MiB even on hub rows.
DEFAULT_CACHE_BLOCKS = 512

#: Floor on the transient bulk-decode scratch (in bytes of decoded
#: adjacency) — even a tiny cache budget amortizes varint overhead
#: over passes of this size; the scratch is freed when the gather ends.
_RUN_DECODE_FLOOR = 1 << 22


@dataclass
class BlockCacheStats:
    """Decode accounting of one :class:`CompressedCSR`.

    Mirrors the :class:`~repro.bfs.kernel.WorkspaceStats` style:
    ``block_requests`` counts every block the gather path asked for,
    ``block_hits`` the ones served from the LRU cache without
    decoding, ``blocks_decoded`` / ``decoded_bytes`` the actual varint
    work, and ``evictions`` the cache pressure. ``redecoded_blocks``
    counts decodes of a block decoded before (thrash: work the cache
    would have saved with a larger budget) and ``decode_seconds`` the
    wall time inside block decodes, so ``decode_bandwidth`` reads out
    the varint path's effective decoded bytes per second.
    """

    block_requests: int = 0
    block_hits: int = 0
    blocks_decoded: int = 0
    decoded_bytes: int = 0
    evictions: int = 0
    redecoded_blocks: int = 0
    decode_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of block requests served without a decode."""
        if self.block_requests == 0:
            return 0.0
        return self.block_hits / self.block_requests

    @property
    def thrash_rate(self) -> float:
        """Fraction of decodes that re-did previously decoded work."""
        if self.blocks_decoded == 0:
            return 0.0
        return self.redecoded_blocks / self.blocks_decoded

    @property
    def decode_bandwidth(self) -> float:
        """Decoded bytes per second of decode wall time (0 if untimed)."""
        if self.decode_seconds <= 0.0:
            return 0.0
        return self.decoded_bytes / self.decode_seconds


@dataclass(frozen=True)
class StoreInfo:
    """Size accounting returned by :func:`save_scsr`.

    The per-section byte counts always satisfy ``header_nbytes +
    index_nbytes + deg_stream_nbytes + adj_stream_nbytes == nbytes``
    (asserted by ``repro convert --stats``); ``encoder_peak_bytes`` is
    the encoder's accounted transient high-water mark — every array the
    chunked writer allocates beyond its persistent block index — which
    is what the streaming encoder bounds to ``O(chunk_edges)``.
    """

    path: str
    nbytes: int
    num_vertices: int
    num_edges: int
    num_directed_edges: int
    block_size: int
    num_blocks: int
    provenance: str
    header_nbytes: int = 0
    deg_stream_nbytes: int = 0
    adj_stream_nbytes: int = 0
    encoder_peak_bytes: int = 0
    chunk_edges: int | None = None

    @property
    def bytes_per_edge(self) -> float:
        """File bytes per undirected edge (the bench-JSON headline)."""
        return self.nbytes / max(self.num_edges, 1)

    @property
    def bytes_per_arc(self) -> float:
        """File bytes per stored directed arc."""
        return self.nbytes / max(self.num_directed_edges, 1)

    @property
    def index_nbytes(self) -> int:
        """Bytes of the three ``uint64`` block-index tables."""
        return 3 * 8 * (self.num_blocks + 1)

    @property
    def section_nbytes(self) -> dict[str, int]:
        """Per-section byte breakdown in file order."""
        return {
            "header": self.header_nbytes,
            "index": self.index_nbytes,
            "degree_stream": self.deg_stream_nbytes,
            "adjacency_stream": self.adj_stream_nbytes,
        }


def _block_boundaries(num_vertices: int, block_size: int) -> np.ndarray:
    """Vertex id at each block boundary (length ``num_blocks + 1``)."""
    num_blocks = -(-num_vertices // block_size) if num_vertices else 0
    bounds = np.arange(num_blocks + 1, dtype=np.int64) * block_size
    return np.minimum(bounds, num_vertices)


def _decode_rows(
    vals: np.ndarray,
    degrees: np.ndarray,
    first_vertex: int,
    num_vertices: int,
    block_size: int,
    *,
    source: str,
    region: str,
    row_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Rebuild absolute neighbour ids from decoded delta values.

    ``vals`` holds the varint-decoded codes of consecutive rows whose
    degrees are ``degrees`` and whose first row is vertex
    ``first_vertex`` — or, when ``row_ids`` is given, of the explicit
    (ascending, possibly non-contiguous) vertices it names: the
    first-delta chains reset at block boundaries, so rows from any
    sorted set of whole blocks decode in one pass. Two layered
    carry-corrected ``cumsum`` passes do all the work with no per-row
    loop:

    1. the zigzag codes at the row starts chain first-neighbour
       deltas row-to-row *within each block* (the block's first
       non-empty row is anchored to its own vertex id), so one cumsum
       per block segment realizes every row's first neighbour;
    2. the remaining codes are ``gap - 1`` values, so one global
       cumsum — minus each row's carried-in prefix (``np.repeat``) —
       realizes the absolute ids.
    """
    local_indptr = np.concatenate(
        ([0], np.cumsum(degrees.astype(np.int64)))
    )
    if len(vals) == 0:
        return np.empty(0, dtype=np.int64)
    nz = degrees > 0
    row_starts = local_indptr[:-1][nz]
    if row_ids is None:
        row_ids = first_vertex + np.flatnonzero(nz)
    else:
        row_ids = np.asarray(row_ids, dtype=np.int64)[nz]

    # Pass 1: first neighbours, chained per block segment.
    z = zigzag_decode(vals[row_starts])
    blocks = row_ids // block_size
    seg_first = np.empty(len(row_ids), dtype=bool)
    seg_first[0] = True
    seg_first[1:] = blocks[1:] != blocks[:-1]
    z[seg_first] += row_ids[seg_first]
    seg_pos = np.flatnonzero(seg_first)
    seg_lens = np.diff(np.append(seg_pos, len(row_ids)))
    chained = np.cumsum(z)
    firsts = chained - np.repeat((chained - z)[seg_pos], seg_lens)

    # Pass 2: within-row gaps, carry-corrected global cumsum.
    d = vals.astype(np.int64) + 1
    d[row_starts] = firsts
    running = np.cumsum(d)
    carry = (running - d)[row_starts]
    adj = running - np.repeat(carry, degrees[nz])
    if len(adj) and (int(adj.min()) < 0 or int(adj.max()) >= num_vertices):
        raise StoreFormatError(
            f"{source}: {region}: decoded neighbour id out of range "
            f"[0, {num_vertices}) — corrupt adjacency stream"
        )
    return adj


class CompressedCSR:
    """A parsed ``.scsr`` image with per-block decoding.

    The image (mmap or in-memory buffer) is never copied: the header
    and the three ``uint64`` index tables are zero-copy views, and
    only the blocks a caller touches are varint-decoded — into fresh
    arrays held by an LRU cache whose footprint :class:`BlockCacheStats`
    tracks. All parsing errors raise
    :class:`~repro.errors.StoreFormatError` naming ``source``.
    """

    def __init__(
        self,
        image: np.ndarray,
        *,
        source: str = "<buffer>",
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache_bytes: int | None = None,
    ):
        self._image = np.ascontiguousarray(image, dtype=np.uint8).reshape(-1)
        self._source = source
        self.stats = BlockCacheStats()
        self._cache: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._cache_blocks = max(int(cache_blocks), 1)
        self._cache_bytes = None if cache_bytes is None else max(int(cache_bytes), 0)
        self._resident_bytes = 0
        self._degrees: np.ndarray | None = None
        self._indptr: np.ndarray | None = None

        self.header, index_offset = unpack_header(self._image, source=source)
        self._index_offset = index_offset
        entries = self.header.index_entries
        table = 8 * entries
        streams_start = index_offset + 3 * table
        if streams_start > len(self._image):
            raise StoreFormatError(
                f"{source}: file too short for the block index (truncated)"
            )

        def _table(k: int) -> np.ndarray:
            lo = index_offset + k * table
            return self._image[lo : lo + table].view(np.uint64)

        self._first_edge = _table(0).astype(np.int64)
        self._deg_offsets = _table(1).astype(np.int64)
        self._adj_offsets = _table(2).astype(np.int64)
        for label, offs, last in (
            ("first_edge", self._first_edge, self.header.num_directed_edges),
            ("deg_offsets", self._deg_offsets, None),
            ("adj_offsets", self._adj_offsets, None),
        ):
            if offs[0] != 0 or (np.diff(offs) < 0).any():
                raise StoreFormatError(
                    f"{source}: {label} index is not monotone (corrupt)"
                )
            if last is not None and offs[-1] != last:
                raise StoreFormatError(
                    f"{source}: {label} index ends at {int(offs[-1])}, "
                    f"header claims {last} arcs"
                )
        deg_len = int(self._deg_offsets[-1])
        adj_len = int(self._adj_offsets[-1])
        self._deg_stream = self._image[streams_start : streams_start + deg_len]
        adj_start = streams_start + deg_len
        self._adj_stream = self._image[adj_start : adj_start + adj_len]
        if adj_start + adj_len > len(self._image):
            raise StoreFormatError(
                f"{source}: adjacency stream runs past end of file "
                f"(truncated: need {adj_start + adj_len} bytes, "
                f"have {len(self._image)})"
            )
        self._bounds = _block_boundaries(
            self.header.num_vertices, self.header.block_size
        )
        self._decoded_once = np.zeros(self.header.num_blocks, dtype=bool)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | os.PathLike, *, cache_blocks: int = DEFAULT_CACHE_BLOCKS
    ) -> "CompressedCSR":
        """Memory-map ``path`` read-only and parse it (zero-copy)."""
        try:
            image = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise StoreFormatError(f"{path}: cannot map .scsr file ({exc})") from exc
        return cls(image, source=str(path), cache_blocks=cache_blocks)

    @classmethod
    def from_buffer(
        cls,
        buf,
        *,
        source: str = "<shared>",
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache_bytes: int | None = None,
    ) -> "CompressedCSR":
        """Parse an in-memory image (e.g. a shared-memory segment)."""
        return cls(
            np.frombuffer(buf, dtype=np.uint8),
            source=source,
            cache_blocks=cache_blocks,
            cache_bytes=cache_bytes,
        )

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def num_directed_edges(self) -> int:
        return self.header.num_directed_edges

    @property
    def num_blocks(self) -> int:
        return self.header.num_blocks

    @property
    def block_size(self) -> int:
        return self.header.block_size

    @property
    def name(self) -> str:
        return self.header.name

    @property
    def provenance(self) -> str:
        return self.header.provenance

    @property
    def digest(self) -> str:
        """Content digest of the decoded arrays (from the header)."""
        return self.header.digest

    @property
    def image_nbytes(self) -> int:
        """Bytes of the compressed image (what shm sharing ships)."""
        return len(self._image)

    @property
    def image(self) -> np.ndarray:
        """The raw ``uint8`` image (read-only view)."""
        return self._image

    @property
    def section_nbytes(self) -> dict[str, int]:
        """Per-section byte breakdown of the image, in file order.

        The sections tile the file exactly: their sum equals
        :attr:`image_nbytes` (the ``convert --stats`` assertion).
        """
        return {
            "header": self._index_offset,
            "index": self.header.index_nbytes,
            "degree_stream": len(self._deg_stream),
            "adjacency_stream": len(self._adj_stream),
        }

    # ------------------------------------------------------------------
    # Cache budget
    # ------------------------------------------------------------------
    @property
    def cache_budget(self) -> int | None:
        """Byte budget of the block cache (``None`` = block-count LRU)."""
        return self._cache_bytes

    @property
    def cache_resident_bytes(self) -> int:
        """Decoded bytes currently held by the block cache."""
        return self._resident_bytes

    def set_cache_budget(self, nbytes: int | None) -> None:
        """Cap the decoded block cache at ``nbytes`` (``None`` clears).

        A byte budget takes precedence over the block-count limit the
        store was opened with; setting one trims the cache immediately
        (evictions count toward :attr:`BlockCacheStats.evictions`).
        """
        self._cache_bytes = None if nbytes is None else max(int(nbytes), 0)
        self._trim_cache(min_keep=0)

    def _trim_cache(self, *, min_keep: int = 1) -> None:
        """Evict LRU entries until the cache fits its budget.

        ``min_keep`` protects the just-inserted entry on the decode
        path (a block larger than the whole budget must still be
        servable once); budget changes trim all the way down.
        """
        if self._cache_bytes is not None:
            while (
                self._resident_bytes > self._cache_bytes
                and len(self._cache) > min_keep
            ):
                _, (li, adj) = self._cache.popitem(last=False)
                self._resident_bytes -= li.nbytes + adj.nbytes
                self.stats.evictions += 1
        else:
            while len(self._cache) > self._cache_blocks:
                _, (li, adj) = self._cache.popitem(last=False)
                self._resident_bytes -= li.nbytes + adj.nbytes
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """All vertex degrees (decoded once from the degree stream)."""
        if self._degrees is None:
            n = self.header.num_vertices
            degs = decode_varints(self._deg_stream, expected=n).astype(np.int64)
            if int(degs.sum()) != self.header.num_directed_edges:
                raise StoreFormatError(
                    f"{self._source}: degree stream sums to {int(degs.sum())}, "
                    f"header claims {self.header.num_directed_edges} arcs"
                )
            indptr = np.concatenate(([0], np.cumsum(degs)))
            if (indptr[self._bounds] != self._first_edge).any():
                raise StoreFormatError(
                    f"{self._source}: first_edge index disagrees with "
                    "the degree stream (corrupt)"
                )
            self._indptr = indptr
            degs.setflags(write=False)
            self._degrees = degs
        return self._degrees

    def indptr(self) -> np.ndarray:
        """The full ``int64`` row-pointer array (cached)."""
        if self._indptr is None:
            self.degrees()
        return self._indptr

    def decode_block(
        self, block: int, *, retain: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode (or fetch cached) one block's rows.

        Returns ``(local_indptr, neighbors)``: ``local_indptr`` has one
        entry per block vertex plus one, relative to the block's first
        arc, and ``neighbors`` is the block's concatenated adjacency
        (``int64`` absolute ids). Vertex ``v`` of block ``b`` (global
        id ``b * block_size + i``) owns
        ``neighbors[local_indptr[i]:local_indptr[i + 1]]``.

        ``retain=False`` is the streaming-gather mode: existing cache
        entries are still served (and refreshed), but a freshly decoded
        block is returned without being inserted — the cache footprint
        never grows, at the cost of re-decoding on revisit.
        """
        if not 0 <= block < self.header.num_blocks:
            raise StoreFormatError(
                f"{self._source}: block {block} out of range "
                f"[0, {self.header.num_blocks})"
            )
        self.stats.block_requests += 1
        cached = self._cache.get(block)
        if cached is not None:
            self.stats.block_hits += 1
            self._cache.move_to_end(block)
            return cached
        return self._decode_blocks(
            np.array([block], dtype=np.int64), retain=retain
        )[0]

    def _decode_blocks(
        self, ids: np.ndarray, *, retain: bool = True
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Decode an ascending set of blocks in one varint pass each.

        ``ids`` need not be contiguous: the byte slices of each maximal
        contiguous run are concatenated (cheap memcpy of the encoded
        bytes) and both streams decode in a single
        :func:`decode_varints` call — the fixed per-call cost that
        dominates scattered single-block decodes is paid once per
        *gather*, not once per block. The first-delta chains reset at
        block boundaries, so :func:`_decode_rows` rebuilds absolute ids
        across the whole concatenation given the explicit row ids.

        Returns one ``(local_indptr, neighbors)`` entry per block in
        ``ids`` order; ``retain`` inserts each into the LRU cache
        (copies), otherwise the entries are transient views into the
        pass's scratch.
        """
        ids = np.asarray(ids, dtype=np.int64)
        region = (
            f"block {int(ids[0])}"
            if len(ids) == 1
            else f"blocks {int(ids[0])}..{int(ids[-1])} ({len(ids)} of them)"
        )
        t0 = time.perf_counter()
        # Maximal contiguous runs of ids: one byte-slice pair per run.
        cuts = np.flatnonzero(np.diff(ids) > 1) + 1
        run_lo = ids[np.concatenate(([0], cuts))]
        run_hi = ids[np.concatenate((cuts - 1, [len(ids) - 1]))] + 1
        def _splice(stream: np.ndarray, offsets: np.ndarray) -> np.ndarray:
            parts = [
                stream[offsets[lo] : offsets[hi]]
                for lo, hi in zip(run_lo, run_hi)
            ]
            return parts[0] if len(parts) == 1 else np.concatenate(parts)
        counts = self._bounds[ids + 1] - self._bounds[ids]
        degs = decode_varints(
            _splice(self._deg_stream, self._deg_offsets),
            expected=int(counts.sum()),
        ).astype(np.int64)
        exp_arcs = self._first_edge[ids + 1] - self._first_edge[ids]
        local = np.concatenate(([0], np.cumsum(degs)))
        vtx_bounds = np.concatenate(([0], np.cumsum(counts)))
        arc_bounds = np.concatenate(([0], np.cumsum(exp_arcs)))
        if (local[vtx_bounds] != arc_bounds).any():
            raise StoreFormatError(
                f"{self._source}: {region}: degrees sum to "
                f"{int(degs.sum())}, block index claims "
                f"{int(exp_arcs.sum())} arcs (corrupt)"
            )
        vals = decode_varints(
            _splice(self._adj_stream, self._adj_offsets),
            expected=int(exp_arcs.sum()),
        )
        total_rows = int(counts.sum())
        ramp = np.arange(total_rows, dtype=np.int64)
        row_ids = ramp + np.repeat(
            self._bounds[ids] - vtx_bounds[:-1], counts
        )
        adj = _decode_rows(
            vals,
            degs,
            0,
            self.header.num_vertices,
            self.header.block_size,
            source=self._source,
            region=region,
            row_ids=row_ids,
        )
        self.stats.decode_seconds += time.perf_counter() - t0
        entries: list[tuple[np.ndarray, np.ndarray]] = []
        redecoded = int(self._decoded_once[ids].sum())
        self.stats.blocks_decoded += len(ids)
        self.stats.redecoded_blocks += redecoded
        self._decoded_once[ids] = True
        for k, b in enumerate(ids.tolist()):
            rlo = int(vtx_bounds[k])
            rhi = int(vtx_bounds[k + 1])
            alo = int(local[rlo])
            li = local[rlo : rhi + 1] - alo
            a = adj[alo : int(local[rhi])]
            if retain:
                a = a.copy()
            entry = (li, a)
            self.stats.decoded_bytes += li.nbytes + a.nbytes
            if retain:
                old = self._cache.pop(b, None)
                if old is not None:
                    self._resident_bytes -= old[0].nbytes + old[1].nbytes
                self._cache[b] = entry
                self._resident_bytes += li.nbytes + a.nbytes
            entries.append(entry)
        if retain:
            self._trim_cache(min_keep=1)
        return entries

    def gather_rows(
        self, vertices: np.ndarray, *, pool=None, retain: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbour lists of ``vertices`` via block decode.

        The block-path twin of
        :func:`repro.bfs.frontier.gather_neighbors`: vertices are
        grouped by block, each needed block is decoded once (LRU-cached
        across calls), and the rows are scattered back into request
        order with the same ``repeat``/``cumsum`` arithmetic the
        in-memory gather uses. Returns ``(values, lengths)``.

        ``pool`` (a duck-typed :class:`~repro.bfs.kernel.Workspace`)
        supplies the cached ``arange`` ramp. ``retain=False`` streams:
        decoded blocks are used for this gather only and never enter
        the cache (see :meth:`decode_block`).

        Cache misses are decoded in bulk: all missing blocks (however
        scattered) share one varint pass per stream via
        :meth:`_decode_blocks` — split only when a pass would outgrow
        its scratch cap — and the request scatters in a single
        fancy-index over the assembled blocks instead of a per-block
        loop.
        """
        v = np.asarray(vertices, dtype=np.int64).ravel()
        if len(v) and (int(v.min()) < 0 or int(v.max()) >= self.num_vertices):
            raise StoreFormatError(
                f"{self._source}: gather vertex out of range "
                f"[0, {self.num_vertices})"
            )
        lengths = self.degrees()[v] if len(v) else np.empty(0, dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lengths
        blocks = v // self.header.block_size
        uniq = np.unique(blocks)
        self.stats.block_requests += len(uniq)
        entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        missing: list[int] = []
        for b in uniq.tolist():
            entry = self._cache.get(b)
            if entry is not None:
                self.stats.block_hits += 1
                self._cache.move_to_end(b)
                entries[b] = entry
            else:
                missing.append(b)
        if missing:
            # Transient pass scratch stays near the cache budget (with a
            # floor so tiny budgets still amortize the varint overhead).
            if self._cache_bytes is not None:
                cap_arcs = max(self._cache_bytes, _RUN_DECODE_FLOOR) // 8
            else:
                cap_arcs = _RUN_DECODE_FLOOR
            miss = np.array(missing, dtype=np.int64)
            arcs = (
                self._first_edge[miss + 1] - self._first_edge[miss]
            )
            group = np.cumsum(arcs) // max(cap_arcs, 1)
            for g in np.unique(group):
                chunk = miss[group == g]
                for b, entry in zip(
                    chunk.tolist(),
                    self._decode_blocks(chunk, retain=retain),
                ):
                    entries[b] = entry
        adj_list = [entries[b][1] for b in uniq.tolist()]
        sizes = np.fromiter(
            (len(a) for a in adj_list), dtype=np.int64, count=len(adj_list)
        )
        base = np.concatenate(([0], np.cumsum(sizes)))
        big = adj_list[0] if len(adj_list) == 1 else np.concatenate(adj_list)
        bidx = np.searchsorted(uniq, blocks)
        # A row's arcs sit at its global indptr offset minus the arc
        # base of its block — the entry holds the full block.
        pos = base[bidx] + (self.indptr()[v] - self._first_edge[blocks])
        ramp = (
            pool.arange(total)
            if pool is not None
            else np.arange(total, dtype=np.int64)
        )
        prefix = np.cumsum(lengths) - lengths
        flat = ramp[:total] + np.repeat(pos - prefix, lengths)
        return big[flat], lengths

    def to_graph(self, *, verify: bool = True) -> CSRGraph:
        """Full vectorized decode into a :class:`CSRGraph`.

        The one-shot path behind :func:`load_scsr`: both streams decode
        in single passes (no per-block loop), and with ``verify`` the
        result is hashed and compared against the header's content
        digest — any bit damage the structural checks missed fails
        here instead of producing silently wrong distances.
        """
        degs = self.degrees()
        indptr = self.indptr()
        vals = decode_varints(
            self._adj_stream, expected=self.header.num_directed_edges
        )
        adj = _decode_rows(
            vals,
            degs,
            0,
            self.header.num_vertices,
            self.header.block_size,
            source=self._source,
            region="adjacency stream",
        )
        indices = adj.astype(self.header.indices_dtype)
        if verify:
            actual = content_digest(indptr, indices)
            if actual != self.header.digest:
                raise StoreFormatError(
                    f"{self._source}: content digest mismatch after decode "
                    f"(header {self.header.digest[:12]}…, decoded "
                    f"{actual[:12]}…) — corrupt store"
                )
        return CSRGraph(
            indptr, indices, name=self.header.name, storage=STORAGE_TAG
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the image reference and decoded caches (idempotent).

        For mmap-backed stores this releases the mapping once no
        decoded graph view references it (decoded arrays are copies,
        never views, so closing is always safe).
        """
        self._cache.clear()
        self._resident_bytes = 0
        image = self._image
        self._image = np.empty(0, dtype=np.uint8)
        self._deg_stream = self._adj_stream = self._image
        if isinstance(image, np.memmap):
            try:
                image._mmap.close()  # type: ignore[attr-defined]
            except (AttributeError, BufferError, OSError):
                pass

    def __enter__(self) -> "CompressedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedCSR(name={self.name!r}, n={self.num_vertices}, "
            f"arcs={self.num_directed_edges}, blocks={self.num_blocks}, "
            f"{self.image_nbytes} bytes)"
        )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _chunk_block_ranges(
    bounds: np.ndarray, first_edge: np.ndarray, chunk_cap: int
) -> list[tuple[int, int]]:
    """Partition the block sequence into encoder chunks.

    Greedy block-aligned ranges ``[block_lo, block_hi)`` covering every
    block in order, each capped at ``chunk_cap`` arcs **and**
    ``chunk_cap`` vertices (the vertex cap keeps sparse regions — or
    all-isolated graphs — from pulling the whole file into one chunk),
    always at least one block so oversized single blocks still encode.
    """
    num_blocks = len(bounds) - 1
    ranges: list[tuple[int, int]] = []
    b = 0
    while b < num_blocks:
        arc_hi = int(
            np.searchsorted(first_edge, first_edge[b] + chunk_cap, side="right")
        ) - 1
        vert_hi = int(
            np.searchsorted(bounds, bounds[b] + chunk_cap, side="right")
        ) - 1
        hi = min(min(arc_hi, vert_hi), num_blocks)
        hi = max(hi, b + 1)
        ranges.append((b, hi))
        b = hi
    return ranges


def _encode_adjacency_chunk(
    idx: np.ndarray,
    degrees: np.ndarray,
    local_offsets: np.ndarray,
    first_vertex: int,
    block_size: int,
) -> np.ndarray:
    """Delta/zigzag codes for a block-aligned run of rows.

    ``idx`` holds the chunk's neighbour ids (``int64``), ``degrees``
    its per-row counts, and ``local_offsets`` the row starts relative
    to the chunk (``len(degrees) + 1`` entries starting at 0);
    ``first_vertex`` is the chunk's first vertex id and must sit on a
    block boundary — then the first-delta chain, which resets at block
    boundaries, never reaches outside the chunk and the codes are
    byte-for-byte what a whole-graph encode would produce.
    """
    d = np.empty(len(idx), dtype=np.int64)
    if len(idx):
        d[0] = 0
        d[1:] = idx[1:] - idx[:-1] - 1
    nz = degrees > 0
    row_starts = local_offsets[:-1][nz]
    row_ids = first_vertex + np.flatnonzero(nz)
    # Row-start slots hold cross-row garbage (possibly negative) until
    # this overwrite; every other slot is a within-row gap - 1 >= 0.
    d[row_starts] = 0
    codes = d.astype(np.uint64)
    if len(row_ids):
        # First-neighbour codes chain row-to-row within a block: each
        # block's first non-empty row anchors to its own vertex id,
        # later rows encode against the previous non-empty row's first
        # neighbour (consecutive rows of a locality-reordered CSR have
        # near-identical firsts, so the chained delta is ~1 byte where
        # the absolute one needs 2-3). Blocks stay self-contained.
        firsts = idx[row_starts]
        row_blocks = row_ids // block_size
        seg_first = np.empty(len(row_ids), dtype=bool)
        seg_first[0] = True
        seg_first[1:] = row_blocks[1:] != row_blocks[:-1]
        prev = np.empty(len(row_ids), dtype=np.int64)
        prev[0] = 0
        prev[1:] = firsts[:-1]
        base = np.where(seg_first, row_ids, prev)
        codes[row_starts] = zigzag_encode(firsts - base)
    return codes


def save_scsr(
    graph: CSRGraph,
    path: str | os.PathLike,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    provenance: str = "",
    chunk_edges: int | None = None,
) -> StoreInfo:
    """Encode ``graph`` into a ``.scsr`` image at ``path``.

    The encoder streams: it walks the blocks in chunk-sized runs
    (``chunk_edges`` caps each run's arcs and vertices), writes the
    degree and adjacency streams sequentially behind a zeroed index
    placeholder, and seeks back once at the end to patch the three
    block-index tables. Peak transient memory is ``O(chunk_edges)``
    regardless of graph size — ``chunk_edges=None`` uses a single
    chunk, which is the fastest path when the whole graph fits — and
    the output is byte-identical for every chunk size because the
    first-delta chain resets at block boundaries, so block-aligned
    chunks encode exactly what a whole-graph pass would.

    ``provenance`` records how the vertex order was produced (e.g.
    ``"reorder=bfs"``) — the compression ratio is a property of graph ×
    order, and the header keeps the pairing honest. The write is atomic
    (temp file + rename, with a random suffix so concurrent saves in
    one process cannot collide) so a crash cannot leave a half-written
    store behind.
    """
    if block_size < 1:
        raise StoreFormatError(f"block size must be >= 1, got {block_size}")
    if chunk_edges is not None and chunk_edges < 1:
        raise StoreFormatError(f"chunk_edges must be >= 1, got {chunk_edges}")
    n = graph.num_vertices
    m = graph.num_directed_edges
    indptr = graph.indptr
    degrees = np.diff(indptr)

    bounds = _block_boundaries(n, block_size)
    num_blocks = len(bounds) - 1
    entries = num_blocks + 1
    first_edge = indptr[bounds].astype(np.int64)
    chunk_cap = int(chunk_edges) if chunk_edges is not None else max(n, m, 1)
    ranges = _chunk_block_ranges(bounds, first_edge, chunk_cap)

    header = StoreHeader(
        num_vertices=n,
        num_directed_edges=m,
        block_size=block_size,
        num_blocks=num_blocks,
        indices_dtype=graph.indices.dtype,
        digest=content_digest(graph.indptr, graph.indices),
        name=graph.name,
        provenance=provenance,
    )
    header_bytes = pack_header(header)
    index_nbytes = 3 * 8 * entries

    deg_offsets = np.zeros(entries, dtype=np.int64)
    adj_offsets = np.zeros(entries, dtype=np.int64)
    persistent = (
        bounds.nbytes + first_edge.nbytes + deg_offsets.nbytes + adj_offsets.nbytes
    )
    peak_bytes = persistent
    deg_total = 0
    adj_total = 0

    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(header_bytes)
            fh.write(b"\0" * index_nbytes)

            # Degree stream, chunk by chunk.
            for bl, bh in ranges:
                lo_v, hi_v = int(bounds[bl]), int(bounds[bh])
                chunk_degs = degrees[lo_v:hi_v].astype(np.uint64)
                stream, lengths = encode_varints(chunk_degs)
                offs = varint_offsets(lengths)
                deg_offsets[bl:bh] = deg_total + offs[bounds[bl:bh] - lo_v]
                fh.write(stream.data)
                deg_total += len(stream)
                # uint64 copy + encode-internal copies (lengths, starts,
                # remaining) + boundary offsets + the stream itself.
                transient = (
                    2 * chunk_degs.nbytes
                    + 2 * lengths.nbytes
                    + offs.nbytes
                    + stream.nbytes
                )
                peak_bytes = max(peak_bytes, persistent + transient)
            deg_offsets[num_blocks] = deg_total

            # Adjacency stream, chunk by chunk.
            for bl, bh in ranges:
                lo_v, hi_v = int(bounds[bl]), int(bounds[bh])
                e0, e1 = int(first_edge[bl]), int(first_edge[bh])
                idx = graph.indices[e0:e1].astype(np.int64)
                local_offsets = indptr[lo_v : hi_v + 1] - e0
                codes = _encode_adjacency_chunk(
                    idx, degrees[lo_v:hi_v], local_offsets, lo_v, block_size
                )
                stream, lengths = encode_varints(codes)
                offs = varint_offsets(lengths)
                adj_offsets[bl:bh] = adj_total + offs[first_edge[bl:bh] - e0]
                fh.write(stream.data)
                adj_total += len(stream)
                # idx copy + delta/code pair + encode-internal copies
                # (lengths, starts, remaining) + offsets + stream.
                transient = (
                    3 * idx.nbytes
                    + 2 * lengths.nbytes
                    + codes.nbytes
                    + local_offsets.nbytes
                    + offs.nbytes
                    + stream.nbytes
                )
                peak_bytes = max(peak_bytes, persistent + transient)
            adj_offsets[num_blocks] = adj_total

            # Back-patch the three fixed-width index tables.
            fh.seek(len(header_bytes))
            fh.write(np.ascontiguousarray(first_edge, dtype="<u8").data)
            fh.write(np.ascontiguousarray(deg_offsets, dtype="<u8").data)
            fh.write(np.ascontiguousarray(adj_offsets, dtype="<u8").data)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash cleanup
            os.unlink(tmp)
    return StoreInfo(
        path=path,
        nbytes=len(header_bytes) + index_nbytes + deg_total + adj_total,
        num_vertices=n,
        num_edges=graph.num_edges,
        num_directed_edges=m,
        block_size=block_size,
        num_blocks=num_blocks,
        provenance=provenance,
        header_nbytes=len(header_bytes),
        deg_stream_nbytes=deg_total,
        adj_stream_nbytes=adj_total,
        encoder_peak_bytes=peak_bytes,
        chunk_edges=chunk_edges,
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def open_scsr(
    path: str | os.PathLike, *, cache_blocks: int = DEFAULT_CACHE_BLOCKS
) -> CompressedCSR:
    """Open a ``.scsr`` file as a block-decodable handle (mmap, zero-copy)."""
    return CompressedCSR.open(path, cache_blocks=cache_blocks)


def load_scsr(
    path: str | os.PathLike, *, mmap: bool = False, verify: bool = True
) -> CSRGraph:
    """Load a ``.scsr`` file into a :class:`CSRGraph`.

    The decoded graph carries ``storage="{tag}"`` so its
    :func:`~repro.graph.io.graph_digest` — and with it every warm-start
    sidecar — is distinct from an ``.npz`` load of the same arrays.

    With ``mmap=True`` the compressed image stays memory-mapped and
    attached as the graph's :attr:`~repro.graph.csr.CSRGraph.backing_store`:
    the traversal kernel can then route level-capped expansions through
    per-block decoding, and :class:`~repro.parallel.shm.SharedCSR`
    ships the compressed image (not the decoded arrays) to worker
    processes. With ``mmap=False`` the store is closed after the
    decode and the graph is indistinguishable from any in-memory CSR
    apart from its storage tag.
    """
    store = open_scsr(path)
    try:
        graph = store.to_graph(verify=verify)
    except Exception:
        store.close()
        raise
    if mmap:
        object.__setattr__(graph, "_backing", store)
    else:
        store.close()
    return graph


load_scsr.__doc__ = load_scsr.__doc__.format(tag=STORAGE_TAG)

# Re-exported for introspection parity with the format module.
SCHEMA_VERSION = FORMAT_VERSION
