"""``repro.store`` — the succinct block-compressed CSR container.

Gap/delta-encoded, varint-packed adjacency grouped into fixed-size
vertex blocks behind a fixed-width offset index; blocks decode
independently off an ``mmap``'d image (see DESIGN.md §13 and
:mod:`repro.store.format` for the exact layout).
"""

from repro.store.format import (
    FORMAT_VERSION,
    HEADER_STRUCT,
    MAGIC,
    STORAGE_TAG,
    StoreHeader,
    pack_header,
    unpack_header,
)
from repro.store.scsr import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_CACHE_BLOCKS,
    BlockCacheStats,
    CompressedCSR,
    StoreInfo,
    load_scsr,
    open_scsr,
    save_scsr,
)
from repro.store.varint import (
    MAX_VARINT_BYTES,
    decode_varints,
    encode_varints,
    varint_lengths,
    varint_offsets,
    zigzag_decode,
    zigzag_encode,
)
