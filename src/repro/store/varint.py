"""Vectorized LEB128 varint and zigzag codecs.

The byte-level substrate of the ``.scsr`` compressed store
(:mod:`repro.store.scsr`). Values are encoded little-endian,
7 bits per byte, high bit set on every byte except the last —
the WebGraph/protobuf varint. Both directions are pure NumPy:

* **encode** computes every value's byte length up front (at most 9
  comparisons against powers of ``2**7``), lays the output positions
  out with a ``cumsum``, and writes byte position ``k`` of every
  still-active value in one masked assignment — ``O(total_bytes)``
  compiled work, no Python-level per-value loop.
* **decode** finds value boundaries from the continuation bits, shifts
  each payload byte by ``7 * (position within its value)``, and sums
  the per-value contributions with ``np.add.reduceat``.

Signed first-neighbour deltas ride on the standard zigzag mapping
(``0, -1, 1, -2, ...`` → ``0, 1, 2, 3, ...``) so small magnitudes of
either sign stay one byte. Values are capped at ``2**63 - 1`` (9
encoded bytes): CSR gaps and degrees never approach that, and the cap
is what lets the decoder bound a varint's length and call a 10-byte
run corrupt instead of silently wrapping ``uint64``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StoreFormatError

__all__ = [
    "MAX_VARINT_BYTES",
    "varint_lengths",
    "varint_offsets",
    "encode_varints",
    "decode_varints",
    "zigzag_encode",
    "zigzag_decode",
]

#: Longest legal encoding: ``ceil(63 / 7)`` bytes for values < 2**63.
MAX_VARINT_BYTES = 9

_SEVEN = np.uint64(7)
_PAYLOAD = np.uint64(0x7F)
_CONTINUE = np.uint8(0x80)


def varint_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of every value (``int64`` array).

    ``values`` must be ``uint64`` with every entry below ``2**63``;
    larger entries raise (they would need a 10th byte).
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if len(v) and int(v.max()) >= 1 << 63:
        raise StoreFormatError(
            f"varint value {int(v.max())} exceeds the 2**63 - 1 cap"
        )
    lengths = np.ones(len(v), dtype=np.int64)
    for k in range(1, MAX_VARINT_BYTES):
        lengths += v >= np.uint64(1 << (7 * k))
    return lengths


def varint_offsets(lengths: np.ndarray) -> np.ndarray:
    """Byte offset of every value boundary in an encoded stream.

    ``offsets[i]`` is where value ``i`` starts and ``offsets[-1]`` the
    total stream length (``len(lengths) + 1`` entries, ``int64``) —
    the exclusive-prefix-sum the chunked encoder uses to place block
    boundaries inside a per-chunk stream.
    """
    lens = np.ascontiguousarray(lengths, dtype=np.int64)
    offsets = np.empty(len(lens) + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(lens, out=offsets[1:])
    return offsets


def encode_varints(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode ``values`` (``uint64``) into one varint byte stream.

    Returns ``(stream, lengths)`` — the concatenated ``uint8`` stream
    and the per-value byte counts (so callers can place block
    boundaries with a ``cumsum`` instead of re-scanning the stream).
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    lengths = varint_lengths(v)
    total = int(lengths.sum())
    stream = np.empty(total, dtype=np.uint8)
    starts = np.cumsum(lengths) - lengths
    remaining = v.copy()
    max_len = int(lengths.max()) if len(lengths) else 0
    for k in range(max_len):
        active = lengths > k
        byte = (remaining[active] & _PAYLOAD).astype(np.uint8)
        byte[lengths[active] > k + 1] |= _CONTINUE
        stream[starts[active] + k] = byte
        remaining >>= _SEVEN
    return stream, lengths


def decode_varints(stream: np.ndarray, expected: int | None = None) -> np.ndarray:
    """Decode a varint byte stream back into a ``uint64`` array.

    ``expected`` (when given) is the number of values the stream must
    contain; a mismatch, a trailing continuation byte, or a run longer
    than :data:`MAX_VARINT_BYTES` raises :class:`StoreFormatError` —
    the caller's corruption signal.
    """
    buf = np.ascontiguousarray(stream, dtype=np.uint8)
    if len(buf) == 0:
        if expected not in (None, 0):
            raise StoreFormatError(
                f"varint stream is empty, expected {expected} values"
            )
        return np.empty(0, dtype=np.uint64)
    cont = (buf & _CONTINUE) != 0
    if cont[-1]:
        raise StoreFormatError("varint stream ends mid-value (truncated)")
    is_start = np.empty(len(buf), dtype=bool)
    is_start[0] = True
    is_start[1:] = ~cont[:-1]
    starts = np.flatnonzero(is_start)
    if expected is not None and len(starts) != expected:
        raise StoreFormatError(
            f"varint stream holds {len(starts)} values, expected {expected}"
        )
    positions = np.arange(len(buf), dtype=np.int64)
    within = positions - starts[np.cumsum(is_start) - 1]
    if int(within.max()) >= MAX_VARINT_BYTES:
        raise StoreFormatError(
            f"varint run of {int(within.max()) + 1} bytes exceeds the "
            f"{MAX_VARINT_BYTES}-byte cap (corrupt stream)"
        )
    contrib = (buf.astype(np.uint64) & _PAYLOAD) << (
        _SEVEN * within.astype(np.uint64)
    )
    return np.add.reduceat(contrib, starts)


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed ``int64`` deltas onto small unsigned ``uint64`` codes."""
    v = np.ascontiguousarray(values, dtype=np.int64)
    return (v.astype(np.uint64) << np.uint64(1)) ^ (v >> np.int64(63)).astype(
        np.uint64
    )


def zigzag_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.ascontiguousarray(codes, dtype=np.uint64)
    return (u >> np.uint64(1)).astype(np.int64) ^ -(
        (u & np.uint64(1)).astype(np.int64)
    )
