"""F-Diam: fast exact diameter computation of sparse graphs.

A from-scratch Python reproduction of

    Bradley, Mongandampulath Akathoott, Burtscher.
    "Fast Exact Diameter Computation of Sparse Graphs", ICPP 2025.

Quickstart
----------
>>> import repro
>>> g = repro.generators.grid_2d(64, 64)
>>> result = repro.fdiam(g)
>>> result.diameter
126

The package is organized into:

* :mod:`repro.graph` — CSR graph substrate, builders, I/O.
* :mod:`repro.generators` — synthetic workload generators (analogs of
  the paper's 17 evaluation inputs).
* :mod:`repro.bfs` — level-synchronous BFS engines (vectorized
  top-down, bottom-up, direction-optimized hybrid, partial/multi-source).
* :mod:`repro.core` — the F-Diam algorithm (Winnow, Chain Processing,
  Eliminate, incremental extension).
* :mod:`repro.baselines` — iFUB, Graph-Diameter, Korf, Takes–Kosters,
  and naive all-eccentricity baselines.
* :mod:`repro.prep` — exactness-preserving preprocessing (pendant-tree
  peeling, mirror-vertex collapsing, vertex reordering, per-component
  planning) behind the ``--prep`` switch.
* :mod:`repro.parallel` — chunked executor and the level-synchronous
  parallel cost model used for the thread-scaling study.
* :mod:`repro.harness` — benchmark workloads, runners, and the
  table/figure emitters reproducing the paper's evaluation section.
"""

from repro import baselines, bfs, core, generators, graph, harness, parallel, prep
from repro._version import __version__
from repro.core.fdiam import DiameterResult, fdiam
from repro.errors import (
    AlgorithmError,
    BenchmarkTimeout,
    GraphFormatError,
    GraphValidationError,
    ReproError,
)
from repro.graph import CSRGraph, from_edges, read_graph

__all__ = [
    "AlgorithmError",
    "BenchmarkTimeout",
    "CSRGraph",
    "DiameterResult",
    "GraphFormatError",
    "GraphValidationError",
    "ReproError",
    "__version__",
    "baselines",
    "bfs",
    "core",
    "fdiam",
    "from_edges",
    "generators",
    "graph",
    "harness",
    "parallel",
    "prep",
    "read_graph",
]
