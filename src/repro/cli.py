"""Command-line interface: ``python -m repro <graph-file>``.

A downstream-friendly front door mirroring how the paper's released
binary is used — point it at a graph file, get the exact diameter plus
the run statistics. Supports every format in :mod:`repro.graph.io`,
the serial/parallel engines, the ablation switches, the extended
radius/center/periphery analysis, the cross-run warm-start cache
(``--cache DIR``), and the batched multi-query engine
(``python -m repro query <graph-file> 'dist 0 5' 'ecc 3' diam``), the
differential fuzzer (``python -m repro fuzz --budget 60 --seed 0``),
and the storage converter
(``python -m repro convert graph.npz graph.scsr --reorder bfs``) for
the block-compressed ``.scsr`` store.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__
from repro.bfs import available_engines
from repro.core import FDiamConfig, eccentricity_spectrum, fdiam
from repro.errors import ReproError
from repro.graph import degree_summary, read_graph

__all__ = [
    "main",
    "build_parser",
    "build_convert_parser",
    "build_fuzz_parser",
    "build_query_parser",
    "build_serve_parser",
    "format_bytes",
]


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (binary units, one decimal)."""
    size = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "F-Diam: fast exact diameter computation of sparse graphs "
            "(reproduction of Bradley et al., ICPP 2025)"
        ),
    )
    parser.add_argument(
        "graph",
        help="graph file (.el/.txt edge list, .gr DIMACS, .graph METIS, "
        ".npz, .scsr)",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default="parallel",
        help="BFS engine: vectorized hybrid (default), scalar reference, "
        "the batched multi-source path, or the bit-parallel lane sweep",
    )
    parser.add_argument(
        "--bfs-batch-lanes",
        type=int,
        default=0,
        metavar="K",
        help="run multi-source waves (Winnow resume, Eliminate extension, "
        "--spectrum) on the bit-parallel engine, up to K sources per "
        "shared-gather sweep (0 = scalar path; 64 fills one lane word)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes for batched source fan-outs (--spectrum): "
        "W >= 2 sweeps through the shared-memory multiprocess backend "
        "when the cost model predicts a payoff (default 1, in-process)",
    )
    parser.add_argument(
        "--prep",
        default="off",
        metavar="SPEC",
        help="exactness-preserving preprocessing before F-Diam: 'off' "
        "(default), 'auto' (peel + collapse + reorder + per-component "
        "planning), or a comma list of peel, collapse, "
        "reorder[=degree|bfs|rcm|auto], plan",
    )
    parser.add_argument(
        "--no-winnow", action="store_true", help="disable the Winnow stage"
    )
    parser.add_argument(
        "--no-eliminate", action="store_true", help="disable the Eliminate stage"
    )
    parser.add_argument(
        "--no-chain", action="store_true", help="disable Chain Processing"
    )
    parser.add_argument(
        "--start-vertex-zero",
        action="store_true",
        help="start from vertex 0 instead of the max-degree vertex",
    )
    parser.add_argument(
        "--spectrum",
        action="store_true",
        help="also compute the exact radius, center, and periphery",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-stage statistics"
    )
    parser.add_argument(
        "--workspace-stats",
        action="store_true",
        help="print traversal-workspace statistics (peak scratch bytes, "
        "buffer-reuse hit rate)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="warm-start store directory: reuse a previous run's cached "
        "certificates on the byte-identical graph (one verifying BFS "
        "instead of the full pipeline) and write a sidecar after cold runs",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the graph file instead of reading it into memory: "
        ".npz maps the raw arrays (uncompressed archives only), .scsr "
        "maps the compressed image and keeps it attached for block-"
        "decoding gathers and compressed-image process sharing",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for decoded adjacency scratch on .scsr graphs "
        "loaded with --mmap: under pressure the traversal routes every "
        "expansion through block decoding with the store's cache capped "
        "at this size (the answer is bit-identical; only wall time and "
        "resident bytes change). Default: unbounded",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    return parser


def build_convert_parser() -> argparse.ArgumentParser:
    """The ``python -m repro convert`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro convert",
        description=(
            "convert graphs between storage formats, including the "
            "block-compressed .scsr store (round-trips are bit-exact)"
        ),
    )
    parser.add_argument(
        "input",
        help="input graph (.el/.txt edge list, .gr DIMACS, .graph METIS, "
        ".npz, .scsr)",
    )
    parser.add_argument(
        "output",
        help="output file; format chosen by extension (.scsr or .npz)",
    )
    parser.add_argument(
        "--reorder",
        choices=("none", "degree", "bfs", "rcm"),
        default="none",
        help="relabel vertices with this locality order before writing "
        "(compression ratio is a property of graph x order; recorded in "
        "the .scsr header provenance). Default: keep the input order",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="B",
        help="vertices per .scsr block (default 64); smaller blocks decode "
        "less per partial traversal, larger ones shrink the offset index",
    )
    parser.add_argument(
        "--uncompressed",
        action="store_true",
        help="write .npz output without zlib (required for --mmap loading)",
    )
    parser.add_argument(
        "--chunk-edges",
        type=int,
        default=None,
        metavar="E",
        help=".scsr streaming-encoder chunk cap: encode at most ~E arcs "
        "(and ~E vertices) of block-aligned sections at a time, bounding "
        "the encoder's transient memory at O(E) instead of O(edges); the "
        "output is byte-identical to the one-shot encode (default: "
        "one-shot)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print size accounting (bytes/edge, ratio vs the input file, "
        "and for .scsr the per-section byte breakdown)",
    )
    return parser


def convert_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``convert`` subcommand; returns the exit code."""
    import os

    args = build_convert_parser().parse_args(argv)
    from repro.graph.io import save_npz
    from repro.store import DEFAULT_BLOCK_SIZE, save_scsr

    out_ext = os.path.splitext(args.output)[1].lower()
    if out_ext not in (".scsr", ".npz"):
        print(
            f"error: unsupported output format {out_ext!r} "
            "(expected .scsr or .npz)",
            file=sys.stderr,
        )
        return 2
    if args.block_size is not None and args.block_size < 1:
        print("error: --block-size must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_edges is not None and args.chunk_edges < 1:
        print("error: --chunk-edges must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_edges is not None and out_ext != ".scsr":
        print("error: --chunk-edges only applies to .scsr output",
              file=sys.stderr)
        return 2
    try:
        graph = read_graph(args.input)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    provenance = f"reorder={args.reorder}"
    if args.reorder != "none":
        from repro.prep.reorder import ORDER_STRATEGIES, apply_order

        order = ORDER_STRATEGIES[args.reorder](graph)
        graph = apply_order(graph, order, name=graph.name).graph

    info = None
    try:
        if out_ext == ".scsr":
            info = save_scsr(
                graph,
                args.output,
                block_size=args.block_size or DEFAULT_BLOCK_SIZE,
                provenance=provenance,
                chunk_edges=args.chunk_edges,
            )
            out_bytes = info.nbytes
        else:
            save_npz(graph, args.output, compressed=not args.uncompressed)
            out_bytes = os.path.getsize(args.output)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"wrote {args.output} ({format_bytes(out_bytes)})")
    if args.stats:
        in_bytes = os.path.getsize(args.input)
        print(f"input          : {format_bytes(in_bytes)} ({args.input})")
        print(f"vertices       : {graph.num_vertices:,}")
        print(f"edges          : {graph.num_edges:,}")
        print(f"reorder        : {args.reorder}")
        print(f"bytes/edge     : {out_bytes / max(graph.num_edges, 1):.2f}")
        print(f"bytes/arc      : "
              f"{out_bytes / max(graph.num_directed_edges, 1):.2f}")
        if in_bytes:
            print(f"size ratio     : {in_bytes / max(out_bytes, 1):.2f}x "
                  "(input / output)")
        if info is not None:
            sections = info.section_nbytes
            file_bytes = os.path.getsize(args.output)
            assert sum(sections.values()) == file_bytes, (
                f"section accounting {sections} does not sum to the "
                f"{file_bytes}-byte file"
            )
            print("sections       :")
            for section, nbytes in sections.items():
                share = nbytes / max(file_bytes, 1)
                print(f"  {section:<16s}: {format_bytes(nbytes)} "
                      f"({share:6.2%})")
            if info.chunk_edges is not None:
                print(f"encoder chunk  : {info.chunk_edges:,} edges")
            print(f"encoder peak   : {format_bytes(info.encoder_peak_bytes)} "
                  "(accounted transient)")
    return 0


def build_query_parser() -> argparse.ArgumentParser:
    """The ``python -m repro query`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro query",
        description=(
            "batched graph queries: distances, eccentricities, and the "
            "diameter, packed into shared bit-parallel sweeps"
        ),
    )
    parser.add_argument(
        "graph",
        help="graph file (.el/.txt edge list, .gr DIMACS, .graph METIS, "
        ".npz, .scsr)",
    )
    parser.add_argument(
        "queries",
        nargs="*",
        help="queries: 'dist U V', 'ecc V', 'diam' (one per argument; "
        "read from stdin, one per line, when omitted)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="warm-start store directory: preload memoized distance rows "
        "from the graph's sidecar, answer 'diam' warm, and persist the "
        "hottest rows back on exit",
    )
    parser.add_argument(
        "--batch-lanes",
        type=int,
        default=256,
        metavar="K",
        help="maximum sources per physical sweep chunk (default 256)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes for the sweep dispatch: W >= 2 runs fresh "
        "source batches through the shared-memory multiprocess backend "
        "when the cost model predicts a payoff (default 1, in-process)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map .npz graph files (uncompressed archives only)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print batch accounting"
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``python -m repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "always-on graph-query server: coalesces concurrent "
            "dist/ecc/diam queries into shared 64-lane sweeps "
            "(POST /query, GET /stats, GET /graphs, GET /healthz)"
        ),
    )
    parser.add_argument(
        "graphs",
        nargs="+",
        metavar="[KEY=]PATH",
        help="graph files to serve (.el/.txt, .gr, .graph, .npz, .scsr), "
        "optionally prefixed with the key clients query it under "
        "(default: the file stem); graphs open lazily on first query",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=4.0,
        metavar="MS",
        help="batching-window ceiling: how long the first query of a "
        "batch waits for company (default 4 ms)",
    )
    parser.add_argument(
        "--min-window-ms",
        type=float,
        default=0.5,
        metavar="MS",
        help="adaptive-window floor (default 0.5 ms)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="always wait the full window instead of scaling it with "
        "the measured arrival rate",
    )
    parser.add_argument(
        "--batch-limit",
        type=int,
        default=256,
        metavar="K",
        help="dispatch a window early once K queries are pending "
        "(default 256)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="K",
        help="admission control: shed queries (429) beyond K pending "
        "across all graphs (default 1024)",
    )
    parser.add_argument(
        "--resident-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for resident graphs: least-recently-queried "
        "graphs are evicted (and reopened on demand) to stay under it "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-graph decoded-adjacency budget for .scsr graphs "
        "served via --mmap (block-decode routing; see repro --help)",
    )
    parser.add_argument(
        "--batch-lanes",
        type=int,
        default=256,
        metavar="K",
        help="maximum sources per physical sweep chunk (default 256)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes for each graph's sweep dispatch "
        "(default 1, in-process)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="warm-start store directory: preload memos/diameters from "
        "sidecars and persist the hottest rows on shutdown",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="read graphs fully into memory instead of memory-mapping "
        "binary containers",
    )
    parser.add_argument(
        "--mutable",
        action="store_true",
        help="serve every graph as a dynamic graph so clients can "
        "apply batched edge insertions/deletions via POST /mutate",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``serve`` subcommand; returns the exit code."""
    import asyncio
    import os

    args = build_serve_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    # Call-time imports: the service stack is only paid for when serving.
    from repro.service import QueryService, SchedulerConfig

    try:
        config = SchedulerConfig(
            window_s=args.window_ms / 1e3,
            min_window_s=min(args.min_window_ms, args.window_ms) / 1e3,
            adaptive=not args.no_adaptive,
            batch_limit=args.batch_limit,
            max_pending=args.max_pending,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.cache is not None:
        from repro.cache import WarmStartStore

        store = WarmStartStore(args.cache)
    service = QueryService(
        store=store,
        config=config,
        byte_budget=args.resident_budget,
        memory_budget=args.memory_budget,
        batch_lanes=args.batch_lanes,
        workers=args.workers,
    )
    for spec in args.graphs:
        key, sep, path = spec.partition("=")
        if not sep:
            key, path = None, spec
        if not os.path.exists(path):
            print(f"error: graph file {path!r} not found", file=sys.stderr)
            return 2
        key = key or os.path.splitext(os.path.basename(path))[0]
        service.add_graph(
            key, path=path, mmap=not args.no_mmap, dynamic=args.mutable
        )
        suffix = " (mutable)" if args.mutable else ""
        print(f"serving {key!r} <- {path}{suffix}")

    async def run() -> None:
        host, port = await service.start(args.host, args.port)
        print(
            f"listening on http://{host}:{port} "
            f"(window {args.window_ms} ms, batch limit "
            f"{args.batch_limit}, max pending {args.max_pending})",
            flush=True,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def build_fuzz_parser() -> argparse.ArgumentParser:
    """The ``python -m repro fuzz`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "differential fuzzing with the invariant oracle: sample seeded "
            "graphs, run the full config lattice plus baselines, cache, and "
            "query engine, and shrink any disagreement into a replayable "
            "artifact"
        ),
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="wall-clock budget for the campaign (default 60)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; trial seeds derive from it deterministically "
        "(default 0)",
    )
    parser.add_argument(
        "--max-vertices",
        type=int,
        default=64,
        metavar="N",
        help="upper bound on sampled graph size (default 64)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="K",
        help="also stop after K trials (default: budget only)",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default="fuzz-artifacts",
        help="directory for minimized .npz/.json failure artifacts "
        "(default fuzz-artifacts/)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without ddmin minimization",
    )
    parser.add_argument(
        "--replay",
        metavar="NPZ",
        default=None,
        help="re-run the full battery on a saved failure artifact instead "
        "of fuzzing",
    )
    parser.add_argument(
        "--inject",
        metavar="FAULT",
        default=None,
        help="activate a deliberate fault for the campaign (oracle "
        "self-test); see repro.verify.faults",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes for the campaign: W >= 2 fans rounds of "
        "independent trials out over a process pool; the trial-seed "
        "sequence matches the serial campaign (default 1; static "
        "campaigns only)",
    )
    parser.add_argument(
        "--mutate",
        action="store_true",
        help="fuzz the dynamic-graph stack instead: random insert/delete/"
        "query interleavings replayed against recompute-from-scratch "
        "after every batch, failing traces ddmin-shrunk into replayable "
        "artifacts",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=8,
        metavar="K",
        help="mutation batches per trace with --mutate (default 8)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress"
    )
    return parser


def fuzz_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``fuzz`` subcommand; returns the exit code."""
    args = build_fuzz_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    from contextlib import nullcontext

    from repro.verify import available_faults, fuzz, inject_fault, replay

    if args.inject is not None and args.inject not in available_faults():
        print(
            f"error: unknown fault {args.inject!r}; available: "
            f"{', '.join(available_faults())}",
            file=sys.stderr,
        )
        return 2
    fault = inject_fault(args.inject) if args.inject else nullcontext()

    if args.replay is not None:
        try:
            with fault:
                disagreements = replay(args.replay)
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if disagreements:
            print(f"replay: {len(disagreements)} disagreement(s)")
            for d in disagreements:
                print(f"  {d}")
            return 1
        print("replay: clean (no disagreements)")
        return 0

    progress = None if args.quiet else lambda line: print(line, flush=True)
    if args.mutate:
        from repro.verify import fuzz_mutation

        with fault:
            result = fuzz_mutation(
                seed=args.seed,
                budget=args.budget,
                max_trials=args.trials,
                max_vertices=args.max_vertices,
                steps=args.steps,
                artifact_dir=args.artifacts,
                shrink=not args.no_shrink,
                progress=progress,
            )
    else:
        with fault:
            result = fuzz(
                seed=args.seed,
                budget=args.budget,
                max_trials=args.trials,
                max_vertices=args.max_vertices,
                artifact_dir=args.artifacts,
                shrink=not args.no_shrink,
                workers=args.workers,
                progress=progress,
            )
    families = ", ".join(
        f"{name}×{count}" for name, count in sorted(result.families.items())
    )
    print(
        f"\nfuzz: {result.trials} trials in {result.elapsed:.1f}s "
        f"(seed {result.seed}), {len(result.failures)} failure(s)"
    )
    if families:
        print(f"families: {families}")
    for failure in result.failures:
        print(f"FAIL {failure}")
    return 0 if result.ok else 1


def query_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``query`` subcommand; returns the exit code."""
    args = build_query_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    # Call-time import: the query/cache layers sit above the CLI's other
    # dependencies and are only paid for when the subcommand runs.
    from repro.query import QueryEngine

    try:
        graph = read_graph(args.graph, mmap=args.mmap)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    queries = list(args.queries)
    if not queries:
        queries = [line.strip() for line in sys.stdin if line.strip()]
    if not queries:
        print("error: no queries given (arguments or stdin)", file=sys.stderr)
        return 2

    store = None
    if args.cache is not None:
        from repro.cache import WarmStartStore

        store = WarmStartStore(args.cache)
    engine = None
    try:
        engine = QueryEngine(
            store=store, batch_lanes=args.batch_lanes, workers=args.workers
        )
        key = engine.add_graph(graph)
        start = time.perf_counter()
        answers, stats = engine.run(key, queries)
        elapsed = time.perf_counter() - start
        engine.flush()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if engine is not None:
            engine.close()
    for query, answer in zip(queries, answers):
        text = query if isinstance(query, str) else " ".join(map(str, query))
        print(f"{text} = {answer}")
    if args.stats:
        print(f"\nqueries        : {stats.queries}")
        print(f"scalar BFS     : {stats.scalar_traversals} (one-per-query "
              "baseline)")
        print(f"gather passes  : {stats.sweeps} "
              f"({stats.bfs_sources} fresh sources, "
              f"{stats.memo_hits} memo hits)")
        if stats.sweeps:
            print(f"pass ratio     : {stats.gather_pass_ratio:.1f}x fewer "
                  "gather passes")
        print(f"edges examined : {stats.edges_examined:,}")
        print(f"time           : {elapsed:.3f}s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "query":
        return query_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "convert":
        return convert_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.bfs_batch_lanes < 0:
        print("error: --bfs-batch-lanes must be >= 0", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.memory_budget is not None and args.memory_budget < 0:
        print("error: --memory-budget must be >= 0", file=sys.stderr)
        return 2
    try:
        graph = read_graph(args.graph, mmap=args.mmap)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    summary = degree_summary(graph)
    print(f"graph    : {graph.name}")
    print(f"vertices : {summary.num_vertices:,}")
    print(f"edges    : {summary.num_edges:,} "
          f"(avg degree {summary.average_degree:.1f}, max {summary.max_degree})")

    config = FDiamConfig(
        engine=args.engine,
        use_winnow=not args.no_winnow,
        use_eliminate=not args.no_eliminate,
        use_chain=not args.no_chain,
        use_max_degree_start=not args.start_vertex_zero,
        bfs_batch_lanes=args.bfs_batch_lanes,
        prep=args.prep,
        memory_budget=args.memory_budget,
    )
    store = None
    cache_info = None
    if args.cache is not None:
        from repro.cache import WarmStartStore

        store = WarmStartStore(args.cache)
    start = time.perf_counter()
    try:
        if store is not None:
            from repro.cache import fdiam_cached

            result, cache_info = fdiam_cached(graph, config, store=store)
        else:
            result = fdiam(graph, config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start

    if cache_info is not None:
        if cache_info.hit and cache_info.verified:
            state = "warm hit (verified)"
        elif cache_info.hit:
            state = "hit distrusted, ran cold"
        else:
            state = "miss, ran cold"
        written = ", sidecar written" if cache_info.saved else ""
        print(f"cache    : {state}{written} "
              f"[{cache_info.digest[:12]}]")
    if result.infinite:
        print(f"diameter : infinite (graph is disconnected); "
              f"largest component eccentricity = {result.diameter}")
    else:
        print(f"diameter : {result.diameter}")
    print(f"time     : {elapsed:.3f}s "
          f"({graph.num_vertices / max(elapsed, 1e-9):,.0f} vertices/s)")

    if args.stats:
        stats = result.stats
        print(f"\nBFS traversals : {stats.bfs_traversals} "
              f"({stats.eccentricity_bfs} eccentricity + {stats.winnow_calls} winnow)")
        print(f"edges examined : {stats.edges_examined:,}")
        print(f"initial bound  : {stats.initial_bound} "
              f"({stats.bound_updates} upgrades)")
        if stats.warm_start:
            verdict = "verified" if stats.warm_verified else "distrusted"
            print(f"warm start     : witness BFS {verdict}")
        if stats.prep is not None:
            prep = stats.prep
            print(f"prep stages    : {', '.join(prep.stages) or 'none'}")
            if prep.stages_gated:
                print(f"  gated        : {', '.join(prep.stages_gated)} "
                      "(cost model: payoff below stage cost)")
            print(f"  peel         : -{prep.peel_vertices_removed} vertices "
                  f"(-{prep.peel_edges_removed} edges, "
                  f"{prep.peel_anchors} anchors, "
                  f"{prep.peel_spine_vertices} spine vertices)")
            print(f"  collapse     : -{prep.mirror_vertices_removed} vertices "
                  f"({prep.mirror_open_groups} open + "
                  f"{prep.mirror_closed_groups} closed mirror groups)")
            print(f"  components   : {prep.components_solved} solved, "
                  f"{prep.components_skipped} skipped "
                  f"({prep.lane_components} lane, "
                  f"{prep.scalar_components} scalar, "
                  f"{prep.tip_batch_components} tip-batched)")
            if prep.reorder_strategies:
                picked = ", ".join(
                    f"{k}×{v}" for k, v in sorted(prep.reorder_strategies.items())
                )
                print(f"  reorder      : {picked} "
                      f"(edge span {prep.edge_span_before:,} → "
                      f"{prep.edge_span_after:,})")
        print("removed by     :")
        for stage, frac in stats.removal_fractions().items():
            print(f"  {stage:10s} {100 * frac:6.2f}%")
        print("time by stage  :")
        for stage, frac in stats.times.fractions().items():
            print(f"  {stage:10s} {100 * frac:6.2f}%")

    if args.workspace_stats:
        ws = result.stats.workspace
        if ws is None:
            print("\nworkspace stats unavailable for this run")
        else:
            print(f"\npeak scratch   : {format_bytes(ws.peak_scratch_bytes)} "
                  f"({ws.peak_scratch_bytes:,} bytes)")
            print(f"owned memory   : {format_bytes(ws.owned_bytes)} "
                  f"({ws.owned_bytes:,} bytes resident, pooled lane "
                  f"matrices included)")
            print(f"buffer reuse   : {ws.buffer_reuses}/{ws.buffer_requests} "
                  f"requests ({100 * ws.hit_rate:.1f}% hit rate)")
            print(f"mark epochs    : {ws.epochs}")
            if ws.lane_requests:
                print(f"lane buffers   : {ws.lane_reuses}/{ws.lane_requests} "
                      f"requests ({100 * ws.lane_hit_rate:.1f}% hit rate), "
                      f"{ws.lane_words_allocated:,} words allocated "
                      f"({format_bytes(8 * ws.lane_words_allocated)})")
            if ws.shm_segments:
                print(f"shm segments   : {ws.shm_segments} created "
                      f"(peak {format_bytes(ws.shm_bytes)}, "
                      f"{format_bytes(ws.shm_resident)} still attached)")
            if ws.store_block_requests:
                print(f"store blocks   : {ws.store_block_hits}/"
                      f"{ws.store_block_requests} requests "
                      f"({100 * ws.store_block_hit_rate:.1f}% cache hit "
                      f"rate), {ws.store_blocks_decoded:,} decoded "
                      f"({format_bytes(ws.store_decoded_bytes)}, "
                      f"{ws.store_block_evictions:,} evictions)")
                if ws.store_blocks_decoded:
                    thrash = (
                        ws.store_redecoded_blocks / ws.store_blocks_decoded
                    )
                    bandwidth = (
                        ws.store_decoded_bytes / ws.store_decode_seconds
                        if ws.store_decode_seconds > 0
                        else 0.0
                    )
                    print(f"store decode   : "
                          f"{ws.store_redecoded_blocks:,} re-decodes "
                          f"({100 * thrash:.1f}% thrash), "
                          f"{format_bytes(int(bandwidth))}/s decode "
                          "bandwidth")
        reasons = result.stats.lane_fallback_reasons
        if reasons:
            print(f"lane fallbacks : {len(reasons)}")
            for reason in reasons:
                print(f"  - {reason}")

    if args.spectrum:
        if store is not None:
            from repro.cache import spectrum_cached

            spec, _ = spectrum_cached(
                graph,
                store=store,
                engine=args.engine,
                batch_lanes=args.bfs_batch_lanes,
                workers=args.workers,
            )
        else:
            spec = eccentricity_spectrum(
                graph,
                engine=args.engine,
                batch_lanes=args.bfs_batch_lanes,
                workers=args.workers,
            )
        print(f"\nradius    : {spec.radius} (largest component)")
        print(f"center    : {len(spec.center)} vertices "
              f"(e.g. {spec.center[:5].tolist()})")
        print(f"periphery : {len(spec.periphery)} vertices "
              f"(e.g. {spec.periphery[:5].tolist()})")
        print(f"spectrum BFS traversals: {spec.bfs_traversals} "
              f"in {spec.sweeps} sweeps", end="")
        if spec.lane_fallback:
            why = f": {spec.lane_fallback_reason}" if spec.lane_fallback_reason else ""
            print(f" (lane batch dropped to scalar by the cost model{why})")
        elif args.bfs_batch_lanes > 0 or args.workers > 1:
            backend = f"{spec.backend} backend, {spec.workers} worker(s), "
            print(f" ({backend}lane occupancy {100 * spec.lane_occupancy:.0f}%)")
        else:
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
