"""Differential mutation fuzzing: dynamic maintenance vs recompute.

The static fuzzer (:mod:`repro.verify.differential`) checks that many
implementations agree on one *fixed* graph. This module fuzzes the
*evolving*-graph stack of :mod:`repro.dynamic`: a trial samples a seed
graph plus a **mutation trace** — a sequence of batched edge
insertions/deletions interleaved with queries — and replays it against
three independent witnesses after every batch:

* an **oracle edge set** maintained as a plain Python set and rebuilt
  into a canonical CSR via :func:`~repro.graph.build.from_edge_arrays`
  — the delta-overlay view (both an aggressively-compacted instance
  and an overlay-retaining one) must match it array-for-array;
* **recompute-from-scratch** reference answers — per-vertex serial BFS
  eccentricities on the rebuilt oracle — against which the
  :class:`~repro.dynamic.DynamicDiameter` maintainer's repaired
  diameter and the query engine's epoch-invalidated answers are
  compared;
* at the final epoch, the full static :data:`CONFIG_LATTICE` with the
  invariant oracle attached, so a dynamic bug that corrupts the view
  is also caught by every static configuration disagreeing.

A failing trace is shrunk with the same generic ddmin the static
shrinker uses — first over whole steps, then over individual
operations, then over the base graph's edges — and written out as a
replayable ``.npz`` + ``.json`` artifact whose metadata embeds the
minimized trace (``repro fuzz --replay`` detects it and replays the
mutations, not just the graph).

Traces are pure data (base graph + step tuples): replaying one is
deterministic, which is what makes both ddmin and the CI
``dynamic-fuzz-smoke`` job reliable.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bfs.reference import serial_distances
from repro.core.fdiam import fdiam
from repro.dynamic import DynamicDiameter, DynamicGraph
from repro.errors import ReproError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest, save_npz
from repro.verify.differential import CONFIG_LATTICE, Disagreement

__all__ = [
    "MutationFailure",
    "MutationStep",
    "MutationTrace",
    "fuzz_mutation",
    "run_mutation_trace",
    "sample_trace",
    "shrink_trace",
    "steps_from_json",
    "trace_to_json",
    "write_trace_artifact",
]


@dataclass(frozen=True)
class MutationStep:
    """One batch of a trace: edges in/out, then queries at the new epoch.

    Edges are ``(u, v)`` tuples; queries are parsed tuples in the
    query engine's format (``("diam",)``, ``("ecc", u)``,
    ``("dist", u, v)``). Any subsequence of a trace's steps is itself a
    valid trace (deleting a never-inserted edge is a counted no-op),
    which is the property ddmin shrinking relies on.
    """

    inserts: tuple = ()
    deletes: tuple = ()
    queries: tuple = ()

    @property
    def ops(self) -> int:
        return len(self.inserts) + len(self.deletes)


@dataclass(frozen=True)
class MutationTrace:
    """A replayable trial: the base graph plus its mutation steps."""

    graph: CSRGraph
    steps: tuple = ()

    @property
    def ops(self) -> int:
        return sum(step.ops for step in self.steps)


@dataclass(frozen=True)
class MutationFailure:
    """One failing mutation trial, after (optional) minimization."""

    trial_seed: int
    graph_name: str
    family: str
    disagreements: tuple
    original_steps: int
    shrunk_steps: int
    shrunk_ops: int
    shrunk_vertices: int
    shrunk_edges: int
    artifact: Path | None

    def __str__(self) -> str:
        first = self.disagreements[0]
        where = f" -> {self.artifact}" if self.artifact else ""
        return (
            f"seed={self.trial_seed} {self.graph_name} "
            f"({self.original_steps} -> {self.shrunk_steps} step(s), "
            f"{self.shrunk_ops} op(s), {self.shrunk_vertices} vertices, "
            f"{self.shrunk_edges} edges): {first}{where}"
        )


# ----------------------------------------------------------------------
# Trace sampling
# ----------------------------------------------------------------------
def _norm(edge) -> tuple[int, int]:
    u, v = int(edge[0]), int(edge[1])
    return (u, v) if u < v else (v, u)


def _edge_set(graph: CSRGraph) -> set:
    n = graph.num_vertices
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cols = graph.indices.astype(np.int64)
    upper = row_of < cols
    return set(zip(row_of[upper].tolist(), cols[upper].tolist()))


def _rebuild(n: int, edges: set, name: str) -> CSRGraph:
    if edges:
        arr = np.asarray(sorted(edges), dtype=np.int64)
        return from_edge_arrays(arr[:, 0], arr[:, 1], n, name)
    empty = np.empty(0, dtype=np.int64)
    return from_edge_arrays(empty, empty, n, name)


def _random_pair(rng: np.random.Generator, n: int) -> tuple[int, int]:
    u = int(rng.integers(n))
    v = int(rng.integers(n - 1))
    if v >= u:
        v += 1
    return (u, v) if u < v else (v, u)


def sample_trace(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    steps: int = 8,
    max_batch: int = 4,
    max_queries: int = 3,
) -> MutationTrace:
    """Sample a random insert/delete/query interleaving on ``graph``.

    Roughly 40% of steps are insert-only (so the maintainer's repair
    path, which only insert-only windows can take, is exercised often);
    deletes target currently-present edges 80% of the time (real
    deletions) and random pairs otherwise (no-op coverage). Every step
    ends with a ``diam`` query plus a few random ``dist``/``ecc``
    queries, so the engine's epoch invalidation is probed at every
    epoch, not just the final one.
    """
    n = graph.num_vertices
    if n < 2:
        return MutationTrace(graph=graph, steps=())
    edges = _edge_set(graph)
    out = []
    for _ in range(steps):
        inserts = [
            _random_pair(rng, n)
            for _ in range(int(rng.integers(0, max_batch + 1)))
        ]
        deletes = []
        if rng.random() >= 0.4:  # 40% insert-only windows
            pool = sorted(edges | set(inserts))
            for _ in range(int(rng.integers(0, max_batch + 1))):
                if pool and rng.random() < 0.8:
                    deletes.append(pool[int(rng.integers(len(pool)))])
                else:
                    deletes.append(_random_pair(rng, n))
        edges |= set(inserts)
        edges -= set(deletes)
        queries = [("diam",)]
        for _ in range(int(rng.integers(0, max_queries))):
            u = int(rng.integers(n))
            if rng.random() < 0.5:
                queries.append(("dist", u, int(rng.integers(n))))
            else:
                queries.append(("ecc", u))
        out.append(
            MutationStep(
                inserts=tuple(inserts),
                deletes=tuple(deletes),
                queries=tuple(queries),
            )
        )
    return MutationTrace(graph=graph, steps=tuple(out))


# ----------------------------------------------------------------------
# Trace execution: the differential checks
# ----------------------------------------------------------------------
def _step_reference(oracle: CSRGraph):
    """Recompute-from-scratch answers: rows, eccs, diameter, connected."""
    n = oracle.num_vertices
    rows = [serial_distances(oracle, v) for v in range(n)]
    ecc = [int(r.max()) for r in rows]
    diam = max(ecc) if ecc else 0
    connected = n <= 1 or bool((rows[0] >= 0).all())
    return rows, ecc, diam, connected


def _expected(query: tuple, rows, ecc, diam: int) -> int:
    if query[0] == "diam":
        return diam
    if query[0] == "ecc":
        return int(ecc[query[1]])
    return int(rows[query[1]][query[2]])


def run_mutation_trace(
    trace: MutationTrace, *, lattice: bool = True, verify: bool = True
) -> list[Disagreement]:
    """Replay ``trace`` against recompute-from-scratch after every batch.

    Two :class:`DynamicGraph` instances run the same batches — one
    compacting after every batch, one never compacting at fuzz scale —
    so the compacted-base and delta-overlay read paths are compared
    against the rebuilt oracle CSR *and* against each other. The
    maintainer repairs on the first instance; the second is registered
    with a :class:`~repro.query.QueryEngine` and mutated through its
    ``mutate`` path, so engine-side epoch invalidation (memos, kernel,
    cached diameter) is what answers the step's queries.
    """
    from repro.query import QueryEngine

    graph = trace.graph
    n = graph.num_vertices
    found: list[Disagreement] = []
    if n == 0:
        return found
    edges = _edge_set(graph)
    compacted = DynamicGraph(graph, compaction_ratio=0.0, min_compaction_edges=1)
    maintainer = DynamicDiameter(compacted)
    overlay = DynamicGraph(graph)  # defaults: never compacts at fuzz scale
    engine = QueryEngine(batch_lanes=64)
    key = engine.add_graph(overlay)
    try:
        rows, ecc, diam, connected = _step_reference(graph)
        for i, step in enumerate(trace.steps):
            try:
                compacted.apply(inserts=step.inserts, deletes=step.deletes)
                engine.mutate(key, inserts=step.inserts, deletes=step.deletes)
            except ReproError as exc:
                found.append(
                    Disagreement(
                        "mutation/apply",
                        f"step {i}: {type(exc).__name__}: {exc}",
                    )
                )
                return found
            edges |= {_norm(e) for e in step.inserts}
            edges -= {_norm(e) for e in step.deletes}
            oracle = _rebuild(n, edges, graph.name)
            for label, inst in (
                ("mutation/view", compacted),
                ("mutation/view-overlay", overlay),
            ):
                view = inst.view()
                if not (
                    np.array_equal(view.indptr, oracle.indptr)
                    and np.array_equal(view.indices, oracle.indices)
                ):
                    found.append(
                        Disagreement(
                            label,
                            f"step {i} (epoch {inst.epoch}): merged CSR "
                            "differs from the rebuilt oracle edge set",
                        )
                    )
                    return found  # downstream checks would be meaningless
            if compacted.epoch != overlay.epoch:
                found.append(
                    Disagreement(
                        "mutation/epoch",
                        f"step {i}: compacting instance at epoch "
                        f"{compacted.epoch}, overlay instance at "
                        f"{overlay.epoch} after identical batches",
                    )
                )
            rows, ecc, diam, connected = _step_reference(oracle)
            repair = maintainer.refresh()
            if maintainer.diameter != diam or maintainer.infinite != (
                not connected
            ):
                found.append(
                    Disagreement(
                        "mutation/diam",
                        f"step {i} (epoch {compacted.epoch}, "
                        f"{repair.strategy}): maintainer diameter "
                        f"{maintainer.diameter} infinite="
                        f"{maintainer.infinite} vs recompute {diam} "
                        f"infinite={not connected}",
                    )
                )
            try:
                answers, _stats = engine.run(key, list(step.queries))
            except ReproError as exc:
                found.append(
                    Disagreement(
                        "mutation/query",
                        f"step {i}: {type(exc).__name__}: {exc}",
                    )
                )
                continue
            for query, got in zip(step.queries, answers):
                want = _expected(query, rows, ecc, diam)
                if got != want:
                    found.append(
                        Disagreement(
                            f"mutation/query-{query[0]}",
                            f"step {i} (epoch {overlay.epoch}): "
                            f"{' '.join(map(str, query))} = {got}, "
                            f"recompute reference {want}",
                        )
                    )
        if lattice:
            final = compacted.view()
            for label, config in CONFIG_LATTICE:
                try:
                    result = fdiam(final, config.ablate(verify=verify))
                except ReproError as exc:
                    found.append(
                        Disagreement(
                            f"mutation/{label}",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                if result.diameter != diam or result.infinite != (
                    not connected
                ):
                    found.append(
                        Disagreement(
                            f"mutation/{label}",
                            f"final epoch {compacted.epoch}: diameter "
                            f"{result.diameter} infinite="
                            f"{result.infinite} vs recompute {diam} "
                            f"infinite={not connected}",
                        )
                    )
    finally:
        engine.close()
    return found


# ----------------------------------------------------------------------
# Trace shrinking
# ----------------------------------------------------------------------
def _atomize(steps) -> list[MutationStep]:
    """Explode steps into single-operation steps (order preserved)."""
    atoms = []
    for step in steps:
        for edge in step.inserts:
            atoms.append(MutationStep(inserts=(edge,)))
        for edge in step.deletes:
            atoms.append(MutationStep(deletes=(edge,)))
        for query in step.queries:
            atoms.append(MutationStep(queries=(query,)))
    return atoms


def shrink_trace(
    trace: MutationTrace, predicate, *, max_rounds: int = 3
) -> MutationTrace:
    """ddmin a failing trace: steps, then single ops, then base edges.

    ``predicate`` receives a candidate :class:`MutationTrace` and must
    return ``True`` iff the failure still reproduces (the fuzz runner
    builds it label-matched, like the static shrinker's). Step and op
    passes exploit that any subsequence of steps is a valid trace; the
    base-edge pass keeps the vertex count fixed so step endpoints stay
    in range.
    """
    from repro.verify.shrink import _ddmin

    if not predicate(trace):
        raise ValueError(
            "shrink_trace: the failure does not reproduce on the input trace"
        )
    current = trace
    for _ in range(max_rounds):
        before = (len(current.steps), current.ops, current.graph.num_edges)
        # Pass 1: drop whole steps.
        steps = list(current.steps)
        if len(steps) >= 2:
            graph = current.graph
            kept = _ddmin(
                steps,
                lambda sub: MutationTrace(graph=graph, steps=tuple(sub)),
                predicate,
            )
            current = MutationTrace(graph=graph, steps=tuple(kept))
        # Pass 2: drop individual operations.
        atoms = _atomize(current.steps)
        if len(atoms) >= 2:
            graph = current.graph
            kept = _ddmin(
                atoms,
                lambda sub: MutationTrace(graph=graph, steps=tuple(sub)),
                predicate,
            )
            current = MutationTrace(graph=graph, steps=tuple(kept))
        # Pass 3: drop base-graph edges (vertex count fixed).
        base = current.graph
        n = base.num_vertices
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
        cols = base.indices.astype(np.int64)
        upper = row_of < cols
        base_edges = list(zip(row_of[upper].tolist(), cols[upper].tolist()))
        if len(base_edges) >= 2:
            steps_now = current.steps

            def rebuild(subset, _steps=steps_now, _n=n, _name=base.name):
                return MutationTrace(
                    graph=_rebuild(_n, set(subset), _name), steps=_steps
                )

            kept = _ddmin(base_edges, rebuild, predicate)
            current = rebuild(kept)
        after = (len(current.steps), current.ops, current.graph.num_edges)
        if after == before:
            break
    return current


# ----------------------------------------------------------------------
# Replayable trace artifacts
# ----------------------------------------------------------------------
def trace_to_json(trace: MutationTrace) -> list[dict]:
    """The steps as JSON-ready dicts (the ``.json`` sidecar's ``trace``)."""
    return [
        {
            "insert": [list(edge) for edge in step.inserts],
            "delete": [list(edge) for edge in step.deletes],
            "queries": [list(query) for query in step.queries],
        }
        for step in trace.steps
    ]


def steps_from_json(data) -> tuple[MutationStep, ...]:
    """Inverse of :func:`trace_to_json`."""
    steps = []
    for entry in data:
        queries = tuple(
            (str(q[0]), *map(int, q[1:])) for q in entry.get("queries", [])
        )
        steps.append(
            MutationStep(
                inserts=tuple(_norm(e) for e in entry.get("insert", [])),
                deletes=tuple(_norm(e) for e in entry.get("delete", [])),
                queries=queries,
            )
        )
    return tuple(steps)


def write_trace_artifact(
    directory: str | Path,
    trace: MutationTrace,
    *,
    seed: int,
    label: str,
    message: str,
    original_steps: int | None = None,
) -> Path:
    """Persist a minimized failing trace; returns the ``.npz`` path.

    The ``.npz`` holds the (possibly edge-shrunk) base graph; the
    ``.json`` sidecar embeds the full minimized step sequence, so
    ``repro fuzz --replay`` re-runs the mutations, not just the static
    battery on the base graph.
    """
    from repro.verify.shrink import _slug

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"fuzz-mutate-{_slug(label)}-{seed}"
    npz_path = directory / f"{stem}.npz"
    save_npz(trace.graph, npz_path)
    meta = {
        "seed": int(seed),
        "label": label,
        "message": message,
        "kind": "mutation-trace",
        "num_vertices": int(trace.graph.num_vertices),
        "num_edges": int(trace.graph.num_edges),
        "steps": len(trace.steps),
        "original_steps": (
            int(original_steps)
            if original_steps is not None
            else len(trace.steps)
        ),
        "trace": trace_to_json(trace),
        "digest": graph_digest(trace.graph),
        "replay": f"python -m repro fuzz --replay {npz_path}",
    }
    (directory / f"{stem}.json").write_text(json.dumps(meta, indent=2) + "\n")
    return npz_path


# ----------------------------------------------------------------------
# The budgeted campaign
# ----------------------------------------------------------------------
def _trace_rng(trial_seed: int) -> np.random.Generator:
    # Distinct stream from both the graph sampler and the static
    # trial rng, same determinism.
    return np.random.default_rng((trial_seed, 0xD1A))


def _labels(disagreements) -> set[str]:
    return {d.label for d in disagreements}


def _shrink_and_record_trace(
    trace: MutationTrace,
    family: str,
    trial_seed: int,
    disagreements: list[Disagreement],
    *,
    shrink: bool,
    artifact_dir,
) -> MutationFailure:
    minimized = trace
    if shrink:
        labels = _labels(disagreements)

        def predicate(candidate: MutationTrace) -> bool:
            return bool(_labels(run_mutation_trace(candidate)) & labels)

        try:
            minimized = shrink_trace(trace, predicate)
        except ValueError:
            minimized = trace  # flaky repro; keep the unshrunk report
    artifact = None
    if artifact_dir is not None:
        first = disagreements[0]
        artifact = write_trace_artifact(
            artifact_dir,
            minimized,
            seed=trial_seed,
            label=first.label,
            message=str(first),
            original_steps=len(trace.steps),
        )
    return MutationFailure(
        trial_seed=trial_seed,
        graph_name=trace.graph.name,
        family=family,
        disagreements=tuple(disagreements),
        original_steps=len(trace.steps),
        shrunk_steps=len(minimized.steps),
        shrunk_ops=minimized.ops,
        shrunk_vertices=minimized.graph.num_vertices,
        shrunk_edges=minimized.graph.num_edges,
        artifact=artifact,
    )


def fuzz_mutation(
    *,
    seed: int = 0,
    budget: float = 60.0,
    max_trials: int | None = None,
    max_vertices: int = 48,
    steps: int = 8,
    artifact_dir: str | Path | None = None,
    shrink: bool = True,
    max_failures: int = 5,
    progress=None,
):
    """Run a mutation-fuzz campaign; stop on budget or trial count.

    Mirrors :func:`repro.verify.runner.fuzz` (same trial-seed stride,
    same stop conditions, same :class:`FuzzResult` container) but each
    trial samples a mutation trace over the sampled graph and runs
    :func:`run_mutation_trace` instead of the static battery. Failures
    are :class:`MutationFailure` records whose artifacts embed the
    minimized trace.
    """
    from repro.generators.registry import build_fuzz_graph
    from repro.verify.runner import _TRIAL_STRIDE, FuzzResult

    started = time.monotonic()
    result = FuzzResult(seed=seed)
    trial = 0
    while True:
        result.elapsed = time.monotonic() - started
        if result.elapsed >= budget:
            break
        if max_trials is not None and trial >= max_trials:
            break
        if len(result.failures) >= max_failures:
            break
        trial_seed = seed + trial * _TRIAL_STRIDE
        graph, family = build_fuzz_graph(trial_seed, max_vertices=max_vertices)
        result.families[family] = result.families.get(family, 0) + 1
        trace = sample_trace(graph, _trace_rng(trial_seed), steps=steps)
        disagreements = run_mutation_trace(trace)
        if disagreements:
            failure = _shrink_and_record_trace(
                trace,
                family,
                trial_seed,
                disagreements,
                shrink=shrink,
                artifact_dir=artifact_dir,
            )
            result.failures.append(failure)
            if progress is not None:
                progress(f"FAIL {failure}")
        elif progress is not None and trial % 10 == 0:
            progress(
                f"trial {trial} ok ({family}, {len(trace.steps)} steps, "
                f"{time.monotonic() - started:.1f}s elapsed)"
            )
        trial += 1
    result.trials = trial
    result.elapsed = time.monotonic() - started
    return result
