"""Differential fuzzing and invariant-oracle subsystem.

Four PRs of independently-toggleable machinery — BFS engines, prep
stages, warm-cache seams, lane batching, the batched query engine —
multiply into a configuration lattice no hand-written test matrix
covers. This package turns cross-configuration agreement and the
paper's pruning theorems into machine-checked properties:

* :mod:`repro.verify.oracle` — the invariant oracle attached to a run
  via ``FDiamConfig(verify=True)``. It precomputes reference BFS
  distances and asserts, at every stage transition, that lower/upper
  bounds sandwich the true eccentricities, that Winnow stays inside
  the ``⌊bound/2⌋`` ball (Theorems 2–3), that Eliminate never writes
  past the ``bound - ecc`` radius (Theorem 1), that chain-tip
  dominance holds, and that a witness of the true diameter is never
  discarded.
* :mod:`repro.verify.differential` — one fuzz trial: sample a graph,
  run the full config lattice (engines × prep × cache warm/cold ×
  lanes × QueryEngine) plus two baselines, and report any
  disagreement on diameter, connectivity flag, eccentricities, or
  per-query distances.
* :mod:`repro.verify.metamorphic` — relabeling invariance, edge
  additions never increasing (and deletions never decreasing) any
  distance, insert-then-delete identity through the dynamic overlay,
  and disjoint-union composition.
* :mod:`repro.verify.mutation` — the differential *mutation* fuzzer:
  random insert/delete/query interleavings over
  :mod:`repro.dynamic`, replayed against recompute-from-scratch after
  every batch, with ddmin trace shrinking (``repro fuzz --mutate``).
* :mod:`repro.verify.shrink` — ddmin failure minimization by vertex
  and edge deletion, plus the replayable ``.npz`` + seed artifacts.
* :mod:`repro.verify.runner` — the budgeted fuzz loop behind the
  ``repro fuzz`` CLI subcommand and the CI ``fuzz-smoke`` job.
* :mod:`repro.verify.faults` — deliberate fault injection used to
  prove the oracle actually catches the bug classes it claims to.

This package sits *above* :mod:`repro.core`: core modules only ever
reach it through call-time imports guarded by ``config.verify``.
"""

from repro.verify.differential import (
    CONFIG_LATTICE,
    Disagreement,
    reference_eccentricities,
    run_trial,
)
from repro.verify.faults import available_faults, inject_fault
from repro.verify.metamorphic import (
    check_disjoint_union,
    check_edge_addition_monotone,
    check_edge_deletion_monotone,
    check_insert_delete_identity,
    check_relabel_invariance,
)
from repro.verify.mutation import (
    MutationFailure,
    MutationStep,
    MutationTrace,
    fuzz_mutation,
    run_mutation_trace,
    sample_trace,
    shrink_trace,
    write_trace_artifact,
)
from repro.verify.oracle import InvariantOracle
from repro.verify.runner import FuzzFailure, FuzzResult, fuzz, replay
from repro.verify.shrink import (
    ddmin_edges,
    ddmin_vertices,
    load_artifact,
    shrink_failure,
    write_artifact,
)

__all__ = [
    "CONFIG_LATTICE",
    "Disagreement",
    "FuzzFailure",
    "FuzzResult",
    "InvariantOracle",
    "MutationFailure",
    "MutationStep",
    "MutationTrace",
    "available_faults",
    "check_disjoint_union",
    "check_edge_addition_monotone",
    "check_edge_deletion_monotone",
    "check_insert_delete_identity",
    "check_relabel_invariance",
    "ddmin_edges",
    "ddmin_vertices",
    "fuzz",
    "fuzz_mutation",
    "inject_fault",
    "load_artifact",
    "reference_eccentricities",
    "replay",
    "run_mutation_trace",
    "run_trial",
    "sample_trace",
    "shrink_failure",
    "shrink_trace",
    "write_artifact",
    "write_trace_artifact",
]
