"""ddmin failure minimization plus replayable failure artifacts.

When a fuzz trial fails, the triggering graph is usually tens of
vertices of which only a handful matter. :func:`shrink_failure` runs
delta debugging (Zeller's ddmin) over the failing graph:

1. **Vertex passes** — try induced subgraphs on complements of
   ever-finer chunks of the vertex set; any subgraph that still fails
   becomes the new candidate.
2. **Edge passes** — with the vertex set minimal, try deleting chunks
   of the remaining undirected edges (vertex count fixed, so pendant
   structure can degrade to isolated vertices).

The passes alternate until a fixpoint. The predicate receives a
candidate :class:`CSRGraph` and returns ``True`` iff the failure still
reproduces; predicates are expected to be deterministic (the fuzz
runner builds them from a trial's seeded check) and any exception a
candidate raises inside the predicate counts as "does not reproduce"
only if the predicate says so — the shrinker itself never swallows
predicate errors.

Minimized failures are persisted as a ``.npz`` (the exact CSR arrays,
via :func:`repro.graph.io.save_npz`) plus a ``.json`` sidecar carrying
the trial seed, the failing check label, the message, and the replay
command — everything a developer (or ``repro fuzz --replay``) needs to
reproduce the failure without re-fuzzing.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Callable

import numpy as np

from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest, load_npz, save_npz
from repro.graph.subgraph import induced_subgraph

__all__ = [
    "ddmin_edges",
    "ddmin_vertices",
    "load_artifact",
    "shrink_failure",
    "write_artifact",
]

Predicate = Callable[[CSRGraph], bool]


def _ddmin(items: list, rebuild, predicate: Predicate) -> list:
    """Generic ddmin over ``items``; ``rebuild(subset)`` -> candidate graph.

    Returns the smallest failing subset found (1-minimal up to the
    chunk granularity schedule — the classic algorithm, not exhaustive
    search).
    """
    granularity = 2
    while len(items) >= 2:
        size = max(1, len(items) // granularity)
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        reduced = False
        for i, chunk in enumerate(chunks):
            complement = [x for j, c in enumerate(chunks) if j != i for x in c]
            if not complement:
                continue
            if predicate(rebuild(complement)):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def ddmin_vertices(graph: CSRGraph, predicate: Predicate) -> CSRGraph:
    """Minimize the vertex set: smallest induced subgraph still failing."""
    if not predicate(graph):
        raise ValueError("ddmin_vertices: the failure does not reproduce "
                         "on the input graph")

    def rebuild(vertices: list) -> CSRGraph:
        return induced_subgraph(
            graph, np.asarray(sorted(vertices), dtype=np.int64)
        ).graph

    kept = _ddmin(list(range(graph.num_vertices)), rebuild, predicate)
    return rebuild(kept)


def ddmin_edges(graph: CSRGraph, predicate: Predicate) -> CSRGraph:
    """Minimize the edge set at a fixed vertex count."""
    if not predicate(graph):
        raise ValueError("ddmin_edges: the failure does not reproduce "
                         "on the input graph")
    n = graph.num_vertices
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cols = graph.indices.astype(np.int64)
    upper = row_of < cols  # one record per undirected edge
    edges = list(zip(row_of[upper].tolist(), cols[upper].tolist()))

    def rebuild(subset: list) -> CSRGraph:
        if subset:
            src = np.asarray([e[0] for e in subset], dtype=np.int64)
            dst = np.asarray([e[1] for e in subset], dtype=np.int64)
        else:
            src = dst = np.empty(0, dtype=np.int64)
        return from_edge_arrays(src, dst, n, graph.name)

    kept = _ddmin(edges, rebuild, predicate)
    return rebuild(kept)


def shrink_failure(
    graph: CSRGraph, predicate: Predicate, *, max_rounds: int = 4
) -> CSRGraph:
    """Alternate vertex and edge ddmin passes until a fixpoint."""
    current = graph
    for _ in range(max_rounds):
        before = (current.num_vertices, current.num_edges)
        current = ddmin_vertices(current, predicate)
        current = ddmin_edges(current, predicate)
        if (current.num_vertices, current.num_edges) == before:
            break
    return current


# ----------------------------------------------------------------------
# Replayable artifacts
# ----------------------------------------------------------------------
def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text).strip("-") or "failure"


def write_artifact(
    directory: str | Path,
    graph: CSRGraph,
    *,
    seed: int,
    label: str,
    message: str,
    original_vertices: int | None = None,
) -> Path:
    """Persist a minimized failure; returns the ``.npz`` path.

    Writes ``fuzz-<label>-<seed>.npz`` (the CSR arrays) and a matching
    ``.json`` with the metadata needed to replay: the trial seed, the
    failing check label, the human-readable message, the content
    digest, and the CLI replay command.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"fuzz-{_slug(label)}-{seed}"
    npz_path = directory / f"{stem}.npz"
    save_npz(graph, npz_path)
    meta = {
        "seed": int(seed),
        "label": label,
        "message": message,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "original_vertices": (
            int(original_vertices)
            if original_vertices is not None
            else int(graph.num_vertices)
        ),
        "digest": graph_digest(graph),
        "replay": f"python -m repro fuzz --replay {npz_path}",
    }
    (directory / f"{stem}.json").write_text(json.dumps(meta, indent=2) + "\n")
    return npz_path


def load_artifact(path: str | Path) -> tuple[CSRGraph, dict]:
    """Load a failure artifact: the graph plus its ``.json`` metadata.

    The metadata sidecar is optional (a bare graph ``.npz`` replays
    fine); a missing or unparsable sidecar yields an empty dict.
    """
    path = Path(path)
    graph = load_npz(path)
    meta_path = path.with_suffix(".json")
    meta: dict = {}
    if meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            meta = {}
    return graph, meta
