"""One differential fuzz trial: the config lattice must agree.

Every independently-toggleable axis the solver has grown — BFS engine
(top-down/bottom-up hybrid, serial, bit-parallel), the ``--prep``
reduction pipeline, lane batching, chain-tip batching, vertex order,
the ablation switches, the warm-start cache, the batched query
engine, and the backing storage format (in-memory CSR vs the
block-compressed ``.scsr`` store) — is run on the same sampled graph,
with the invariant oracle attached, and compared against reference
BFS distances plus two independent baselines (naive APSP and iFUB). Any disagreement on the
diameter, the connectivity/infinity flag, an eccentricity, or a
per-query distance is reported as a :class:`Disagreement`, which the
fuzz runner then shrinks into a replayable artifact.

The reference is :func:`repro.bfs.reference.serial_distances` — a
plain deque BFS that shares no code with the level-synchronous
kernels — so trials are meaningful even for bugs that would infect
every kernel-backed configuration at once.
"""

from __future__ import annotations

import tempfile
import warnings
from dataclasses import dataclass

import numpy as np

from repro.baselines.ifub import ifub_diameter
from repro.baselines.naive import naive_diameter
from repro.bfs.reference import serial_distances
from repro.core.config import FDiamConfig
from repro.core.fdiam import fdiam
from repro.errors import ReproError
from repro.graph.csr import CSRGraph

__all__ = [
    "CONFIG_LATTICE",
    "Disagreement",
    "reference_eccentricities",
    "run_trial",
]


#: The full configuration lattice a trial sweeps: engines × prep ×
#: lanes × ablations × order. Cache warm/cold and the query engine are
#: exercised separately in :func:`run_trial` (they need a store and a
#: query batch, not just a config).
CONFIG_LATTICE: list[tuple[str, FDiamConfig]] = [
    ("fdiam/par", FDiamConfig()),
    ("fdiam/ser", FDiamConfig(engine="serial")),
    ("fdiam/bitparallel", FDiamConfig(engine="bitparallel")),
    ("fdiam/par+lanes", FDiamConfig(bfs_batch_lanes=64, lane_fallback=False)),
    ("fdiam/par+prep", FDiamConfig(prep="auto")),
    ("fdiam/ser+prep", FDiamConfig(engine="serial", prep="auto")),
    (
        "fdiam/par+prep+lanes",
        FDiamConfig(prep="auto", bfs_batch_lanes=64, lane_fallback=False),
    ),
    ("fdiam/par+tip-batch", FDiamConfig(chain_tip_batch=True)),
    ("fdiam/random-order", FDiamConfig(order="random", seed=7)),
    ("fdiam/no-winnow", FDiamConfig(use_winnow=False)),
    ("fdiam/no-elim", FDiamConfig(use_eliminate=False)),
    ("fdiam/no-chain", FDiamConfig(use_chain=False)),
    ("fdiam/vertex0-start", FDiamConfig(use_max_degree_start=False)),
]


@dataclass(frozen=True)
class Disagreement:
    """One observed divergence (or invariant violation) in a trial.

    ``label`` names the configuration or check that failed (e.g.
    ``"fdiam/par+prep"``, ``"cache/warm"``, ``"query/dist"``,
    ``"metamorphic/relabel"``); ``message`` carries the specifics.
    """

    label: str
    message: str

    def __str__(self) -> str:
        return f"{self.label}: {self.message}"


def reference_eccentricities(graph: CSRGraph) -> np.ndarray:
    """Per-vertex eccentricities from the independent deque BFS."""
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int64)
    for v in range(n):
        ecc[v] = int(serial_distances(graph, v).max())
    return ecc


def _reference_connected(graph: CSRGraph) -> bool:
    n = graph.num_vertices
    if n <= 1:
        return True
    return bool((serial_distances(graph, 0) >= 0).all())


def _check_result(
    label: str, result, ref_diameter: int, ref_connected: bool
) -> list[Disagreement]:
    found = []
    if result.diameter != ref_diameter:
        found.append(
            Disagreement(
                label,
                f"diameter {result.diameter} != reference {ref_diameter}",
            )
        )
    if result.infinite != (not ref_connected):
        found.append(
            Disagreement(
                label,
                f"infinite flag {result.infinite} but reference "
                f"connected={ref_connected}",
            )
        )
    return found


def run_trial(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    verify: bool = True,
    metamorphic: bool = True,
    max_queries: int = 8,
) -> list[Disagreement]:
    """Run the full battery on ``graph``; return every disagreement.

    ``rng`` drives the query sampling and the metamorphic mutations —
    pass a generator derived from the trial seed so the whole trial
    replays exactly. ``verify`` attaches the invariant oracle to every
    lattice run (the fuzzer's default); disable it only for speed
    sanity passes.
    """
    if graph.num_vertices == 0:
        # fdiam's contract excludes the empty graph; nothing to compare.
        return []
    disagreements: list[Disagreement] = []
    ref_ecc = reference_eccentricities(graph)
    ref_diameter = int(ref_ecc.max()) if len(ref_ecc) else 0
    ref_connected = _reference_connected(graph)

    # ------------------------------------------------------------------
    # 1. The config lattice, oracle attached.
    # ------------------------------------------------------------------
    for label, config in CONFIG_LATTICE:
        try:
            result = fdiam(graph, config.ablate(verify=verify))
        except ReproError as exc:
            disagreements.append(Disagreement(label, f"{type(exc).__name__}: {exc}"))
            continue
        disagreements.extend(
            _check_result(label, result, ref_diameter, ref_connected)
        )

    # ------------------------------------------------------------------
    # 2. Two independent baselines.
    # ------------------------------------------------------------------
    for label, runner in (
        ("baseline/naive", naive_diameter),
        ("baseline/ifub", ifub_diameter),
    ):
        try:
            result = runner(graph)
        except ReproError as exc:
            disagreements.append(Disagreement(label, f"{type(exc).__name__}: {exc}"))
            continue
        disagreements.extend(
            _check_result(label, result, ref_diameter, ref_connected)
        )

    # ------------------------------------------------------------------
    # 3. Cache cold → warm: byte-identical graph must warm-verify and
    #    reproduce the cold answer.
    # ------------------------------------------------------------------
    disagreements.extend(_check_cache(graph, ref_diameter, ref_connected))

    # ------------------------------------------------------------------
    # 4. The batched query engine versus the reference rows.
    # ------------------------------------------------------------------
    disagreements.extend(
        _check_queries(graph, rng, ref_ecc, ref_diameter, max_queries)
    )

    # ------------------------------------------------------------------
    # 5. Storage-format axis: the .scsr round trip must be bit-exact
    #    and answer-identical, and must not share a cache key with the
    #    in-memory load.
    # ------------------------------------------------------------------
    disagreements.extend(_check_store(graph, ref_diameter, ref_connected))

    # ------------------------------------------------------------------
    # 6. Metamorphic relations.
    # ------------------------------------------------------------------
    if metamorphic:
        from repro.verify.metamorphic import (
            check_disjoint_union,
            check_edge_addition_monotone,
            check_edge_deletion_monotone,
            check_insert_delete_identity,
            check_relabel_invariance,
        )

        for check in (
            check_relabel_invariance,
            check_edge_addition_monotone,
            check_edge_deletion_monotone,
            check_insert_delete_identity,
            check_disjoint_union,
        ):
            disagreements.extend(check(graph, rng))

    return disagreements


def _check_cache(
    graph: CSRGraph, ref_diameter: int, ref_connected: bool
) -> list[Disagreement]:
    from repro.cache import WarmStartStore, fdiam_cached

    found: list[Disagreement] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as root:
        store = WarmStartStore(root)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a distrusted sidecar is a bug here
                cold, cold_info = fdiam_cached(graph, store=store)
                warm, warm_info = fdiam_cached(graph, store=store)
        except ReproError as exc:
            return [Disagreement("cache", f"{type(exc).__name__}: {exc}")]
        except Warning as warn:
            return [
                Disagreement(
                    "cache", f"unexpected warning on a clean sidecar: {warn}"
                )
            ]
        found.extend(_check_result("cache/cold", cold, ref_diameter, ref_connected))
        found.extend(_check_result("cache/warm", warm, ref_diameter, ref_connected))
        if cold_info.hit:
            found.append(Disagreement("cache/cold", "fresh store reported a hit"))
        if not warm_info.hit or not warm_info.verified:
            found.append(
                Disagreement(
                    "cache/warm",
                    f"expected a verified warm hit, got hit={warm_info.hit} "
                    f"verified={warm_info.verified}",
                )
            )
    return found


def _check_store(
    graph: CSRGraph, ref_diameter: int, ref_connected: bool
) -> list[Disagreement]:
    import os

    from repro.graph.io import graph_digest
    from repro.store import load_scsr, save_scsr

    found: list[Disagreement] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-store-") as root:
        path = os.path.join(root, "trial.scsr")
        try:
            # Tiny blocks so even few-vertex fuzz graphs span several
            # blocks and exercise the chained first-neighbour resets.
            save_scsr(graph, path, block_size=4)
            eager = load_scsr(path)
            mapped = load_scsr(path, mmap=True)
        except ReproError as exc:
            return [Disagreement("store", f"{type(exc).__name__}: {exc}")]
        for label, loaded in (("store/eager", eager), ("store/mmap", mapped)):
            if not (
                np.array_equal(loaded.indptr, graph.indptr)
                and np.array_equal(loaded.indices, graph.indices)
            ):
                found.append(
                    Disagreement(label, "decoded CSR arrays differ from source")
                )
                continue
            if graph_digest(loaded) == graph_digest(graph):
                found.append(
                    Disagreement(
                        label,
                        "cache key collides with the in-memory load "
                        "(storage tag missing from graph_digest)",
                    )
                )
            if loaded.num_vertices == 0:
                continue
            try:
                result = fdiam(loaded, FDiamConfig())
            except ReproError as exc:
                found.append(
                    Disagreement(label, f"{type(exc).__name__}: {exc}")
                )
                continue
            found.extend(
                _check_result(label, result, ref_diameter, ref_connected)
            )
        # Memory-budget axis: the same mapped image solved unbounded
        # (above), with the block cache capped (cached-gather mode),
        # and with cache retention disabled entirely (streaming-gather)
        # must agree bit-identically — budgets change wall time and
        # resident bytes, never answers.
        if mapped.num_vertices:
            decoded = mapped.indptr.nbytes + mapped.indices.nbytes
            budget_axis = (
                ("store/mmap+capped", FDiamConfig(memory_budget=max(decoded // 2, 1))),
                ("store/mmap+stream", FDiamConfig(memory_mode="stream")),
            )
            for label, config in budget_axis:
                try:
                    result = fdiam(mapped, config)
                except ReproError as exc:
                    found.append(
                        Disagreement(label, f"{type(exc).__name__}: {exc}")
                    )
                    continue
                found.extend(
                    _check_result(label, result, ref_diameter, ref_connected)
                )
        backing = mapped.backing_store
        if backing is not None:
            backing.close()
    return found


def _check_queries(
    graph: CSRGraph,
    rng: np.random.Generator,
    ref_ecc: np.ndarray,
    ref_diameter: int,
    max_queries: int,
) -> list[Disagreement]:
    from repro.query import QueryEngine

    n = graph.num_vertices
    if n == 0 or max_queries <= 0:
        return []
    queries: list[tuple] = [("diam",)]
    expected: list[int] = [ref_diameter]
    rows: dict[int, np.ndarray] = {}

    def row(v: int) -> np.ndarray:
        if v not in rows:
            rows[v] = serial_distances(graph, v)
        return rows[v]

    for _ in range(max_queries - 1):
        u = int(rng.integers(n))
        if rng.random() < 0.5:
            v = int(rng.integers(n))
            queries.append(("dist", u, v))
            expected.append(int(row(u)[v]))
        else:
            queries.append(("ecc", u))
            expected.append(int(ref_ecc[u]))

    try:
        engine = QueryEngine(batch_lanes=64)
        key = engine.add_graph(graph)
        answers, _stats = engine.run(key, queries)
    except ReproError as exc:
        return [Disagreement("query", f"{type(exc).__name__}: {exc}")]
    found = []
    for query, got, want in zip(queries, answers, expected):
        if got != want:
            found.append(
                Disagreement(
                    f"query/{query[0]}",
                    f"{' '.join(map(str, query))} = {got}, reference {want}",
                )
            )
    return found
