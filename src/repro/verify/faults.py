"""Deliberate fault injection for oracle and fuzzer self-tests.

A verification subsystem is only trustworthy if it demonstrably fires:
each fault here is a realistic bug in one of the solver's pruning or
repair stages, injected by rebinding the stage entry point for the
duration of a ``with`` block. The test suite (and the ``repro fuzz
--inject`` flag) use them to prove that the invariant oracle / the
mutation fuzzer catches the bug class and that the shrinker reduces
the triggering input to a small replayable artifact.

Each fault builder returns a list of ``(target, attr, faulty)`` patch
specs. Static-solver faults patch the *name bindings* in the consuming
driver modules (``repro.core.fdiam`` / ``repro.core.concurrent``), not
the defining module, because the drivers import the stage functions by
name. Dynamic-maintenance faults patch class attributes on
:class:`~repro.dynamic.diameter.DynamicDiameter` (wrapped in
``staticmethod`` so the rebinding preserves the call convention).
"""

from __future__ import annotations

import importlib
import inspect
from contextlib import contextmanager

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["available_faults", "inject_fault"]


def _stage_specs(attr: str, faulty) -> list[tuple]:
    """Patch ``attr`` in every driver module that imported it by name."""
    specs = []
    for modname in ("repro.core.fdiam", "repro.core.concurrent"):
        mod = importlib.import_module(modname)
        if hasattr(mod, attr):
            specs.append((mod, attr, faulty))
    return specs


def _eliminate_off_by_one() -> list[tuple]:
    """Eliminate expands ``bound - ecc + 1`` levels instead of ``bound - ecc``.

    The classic unsound variant of Theorem 1: the extra level removes
    vertices whose certified upper bound is ``bound + 1``, i.e. above
    the current bound — exactly the discharge condition violation the
    oracle's radius check exists for.
    """
    # importlib, not ``import a.b as m``: repro.core re-exports the
    # stage *functions*, which shadow the submodule attributes.
    elim_mod = importlib.import_module("repro.core.eliminate")

    orig = elim_mod.eliminate

    def faulty(state, source, ecc, bound, **kwargs):
        return orig(state, source, ecc, bound + 1, **kwargs)

    return _stage_specs("eliminate", faulty)


def _winnow_overgrow() -> list[tuple]:
    """Winnow grows the ball to radius ``⌊bound/2⌋ + 1``.

    Breaks the Theorem 2/3 pairing argument: two vertices of the
    oversized ball can be ``bound + 2`` apart, so discarding the ball
    may discard both witnesses of a larger-than-bound distance.
    """
    winnow_mod = importlib.import_module("repro.core.winnow")

    orig = winnow_mod.winnow

    def faulty(state, center, bound):
        return orig(state, center, bound + 2)

    return _stage_specs("winnow", faulty)


def _dynamic_witness_only() -> list[tuple]:
    """Repair trusts the witness BFS alone, skipping the candidate sweep.

    A plausible over-optimization of the insert-only repair rule: one
    BFS from the stored witness re-validates the lower bound, but no
    stale upper bound above it is ever re-checked — so an insertion
    that shrinks the old witness's eccentricity while another vertex
    still realizes a larger one yields an under-reported diameter. The
    mutation fuzzer's per-step recompute comparison is what catches it.
    """
    from repro.dynamic.diameter import DynamicDiameter

    def faulty(ecc_ub, lb):
        return np.empty(0, dtype=np.int64)

    return [(DynamicDiameter, "_candidates", staticmethod(faulty))]


def _dynamic_deletes_keep_bounds() -> list[tuple]:
    """Deletions are treated like insertions: cached bounds survive.

    Breaks the deletion repair rule outright — removing an edge can
    *grow* distances (or disconnect the graph), so the cached
    eccentricity upper bounds are invalid, yet the faulty maintainer
    repairs from them anyway and under-reports the diameter (or misses
    a disconnection).
    """
    from repro.dynamic.diameter import DynamicDiameter

    def faulty(deleted):
        return False

    return [(DynamicDiameter, "_deletes_invalidate", staticmethod(faulty))]


_FAULTS = {
    "eliminate-off-by-one": _eliminate_off_by_one,
    "winnow-overgrow": _winnow_overgrow,
    "dynamic-witness-only": _dynamic_witness_only,
    "dynamic-deletes-keep-bounds": _dynamic_deletes_keep_bounds,
}

#: Which verification harness is expected to catch each fault:
#: ``static`` faults break fdiam's pruning stages and trip the
#: invariant oracle; ``dynamic`` faults break the maintainer's repair
#: rules and only the mutation fuzzer's recompute comparison sees them.
_DOMAINS = {
    "eliminate-off-by-one": "static",
    "winnow-overgrow": "static",
    "dynamic-witness-only": "dynamic",
    "dynamic-deletes-keep-bounds": "dynamic",
}


def available_faults(domain: str | None = None) -> tuple[str, ...]:
    """Names accepted by :func:`inject_fault`.

    ``domain`` filters to ``"static"`` (solver-stage faults the
    invariant oracle catches) or ``"dynamic"`` (repair-rule faults the
    mutation fuzzer catches); ``None`` returns everything.
    """
    if domain is None:
        return tuple(_FAULTS)
    return tuple(name for name in _FAULTS if _DOMAINS[name] == domain)


@contextmanager
def inject_fault(name: str):
    """Activate the named fault inside the ``with`` block.

    Applies every patch spec the fault builder returns; always restores
    the originals on exit, even when the block raises (which is the
    expected outcome). Originals are captured with
    :func:`inspect.getattr_static` so class-level ``staticmethod``
    descriptors round-trip unbound.
    """
    if name not in _FAULTS:
        raise AlgorithmError(
            f"unknown fault {name!r}; available: {sorted(_FAULTS)}"
        )
    specs = _FAULTS[name]()
    patched = []
    for target, attr, faulty in specs:
        patched.append((target, attr, inspect.getattr_static(target, attr)))
        setattr(target, attr, faulty)
    try:
        yield
    finally:
        for target, attr, orig in reversed(patched):
            setattr(target, attr, orig)
