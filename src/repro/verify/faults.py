"""Deliberate fault injection for oracle and fuzzer self-tests.

A verification subsystem is only trustworthy if it demonstrably fires:
each fault here is a realistic off-by-one in one of F-Diam's pruning
stages, injected by rebinding the stage entry point inside the driver
modules for the duration of a ``with`` block. The test suite (and the
``repro fuzz --inject`` flag) use them to prove that the invariant
oracle catches the bug class and that the shrinker reduces the
triggering graph to a small replayable artifact.

Faults patch the *name bindings* in the consuming modules
(``repro.core.fdiam`` / ``repro.core.concurrent``), not the defining
module, because the drivers import the stage functions by name.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager

from repro.errors import AlgorithmError

__all__ = ["available_faults", "inject_fault"]


def _eliminate_off_by_one():
    """Eliminate expands ``bound - ecc + 1`` levels instead of ``bound - ecc``.

    The classic unsound variant of Theorem 1: the extra level removes
    vertices whose certified upper bound is ``bound + 1``, i.e. above
    the current bound — exactly the discharge condition violation the
    oracle's radius check exists for.
    """
    # importlib, not ``import a.b as m``: repro.core re-exports the
    # stage *functions*, which shadow the submodule attributes.
    elim_mod = importlib.import_module("repro.core.eliminate")

    orig = elim_mod.eliminate

    def faulty(state, source, ecc, bound, **kwargs):
        return orig(state, source, ecc, bound + 1, **kwargs)

    return faulty, "eliminate"


def _winnow_overgrow():
    """Winnow grows the ball to radius ``⌊bound/2⌋ + 1``.

    Breaks the Theorem 2/3 pairing argument: two vertices of the
    oversized ball can be ``bound + 2`` apart, so discarding the ball
    may discard both witnesses of a larger-than-bound distance.
    """
    winnow_mod = importlib.import_module("repro.core.winnow")

    orig = winnow_mod.winnow

    def faulty(state, center, bound):
        return orig(state, center, bound + 2)

    return faulty, "winnow"


_FAULTS = {
    "eliminate-off-by-one": _eliminate_off_by_one,
    "winnow-overgrow": _winnow_overgrow,
}


def available_faults() -> tuple[str, ...]:
    """Names accepted by :func:`inject_fault`."""
    return tuple(_FAULTS)


@contextmanager
def inject_fault(name: str):
    """Activate the named fault inside the ``with`` block.

    Rebinds the faulty stage function in every driver module that
    imported it by name; always restores the originals on exit, even
    when the block raises (which is the expected outcome).
    """
    if name not in _FAULTS:
        raise AlgorithmError(
            f"unknown fault {name!r}; available: {sorted(_FAULTS)}"
        )
    concurrent_mod = importlib.import_module("repro.core.concurrent")
    fdiam_mod = importlib.import_module("repro.core.fdiam")

    faulty, attr = _FAULTS[name]()
    patched = []
    for mod in (fdiam_mod, concurrent_mod):
        if hasattr(mod, attr):
            patched.append((mod, attr, getattr(mod, attr)))
            setattr(mod, attr, faulty)
    try:
        yield
    finally:
        for mod, attr, orig in patched:
            setattr(mod, attr, orig)
