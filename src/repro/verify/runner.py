"""The budgeted fuzz loop: sample → battery → shrink → artifact.

:func:`fuzz` drives everything the rest of the package provides. Each
trial derives its own seed from the campaign seed, samples a graph
from :func:`repro.generators.registry.build_fuzz_graph`, and runs
:func:`repro.verify.differential.run_trial` (config lattice with the
invariant oracle attached, baselines, cache cold/warm, query engine,
metamorphic relations). A trial that reports disagreements is shrunk
with ddmin under a label-matched predicate — the minimized graph must
still produce a disagreement with the *same label*, so the shrinker
cannot wander onto an unrelated failure — and written out as a
replayable ``.npz`` + ``.json`` artifact.

Trials are fully determined by their integer seed: rerunning with the
same campaign seed replays the identical graph sequence, query
batches, and metamorphic mutations, which is what makes the CI
fuzz-smoke job and ``--replay`` debugging reliable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.verify.differential import Disagreement, run_trial

__all__ = ["FuzzFailure", "FuzzResult", "fuzz", "replay"]

#: Offset mixed into the campaign seed so trial seeds never collide
#: with the raw campaign seeds users type (0, 1, 2, ...).
_TRIAL_STRIDE = 0x9E3779B1


@dataclass(frozen=True)
class FuzzFailure:
    """One failing trial, after (optional) minimization."""

    trial_seed: int
    graph_name: str
    family: str
    disagreements: tuple[Disagreement, ...]
    original_vertices: int
    shrunk_vertices: int
    shrunk_edges: int
    artifact: Path | None

    def __str__(self) -> str:
        first = self.disagreements[0]
        where = f" -> {self.artifact}" if self.artifact else ""
        return (
            f"seed={self.trial_seed} {self.graph_name} "
            f"({self.original_vertices} -> {self.shrunk_vertices} vertices, "
            f"{self.shrunk_edges} edges): {first}{where}"
        )


@dataclass
class FuzzResult:
    """Campaign summary returned by :func:`fuzz`."""

    seed: int
    trials: int = 0
    elapsed: float = 0.0
    families: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _trial_rng(trial_seed: int) -> np.random.Generator:
    # Distinct stream from the graph sampler, same determinism.
    return np.random.default_rng((trial_seed, 0xF02D))


def _labels(disagreements: list[Disagreement]) -> set[str]:
    return {d.label for d in disagreements}


def _make_predicate(trial_seed: int, labels: set[str]):
    """Candidate graph still fails with one of the original labels?

    Re-running the whole battery per candidate is affordable because
    shrinking only ever sees graphs at or below the fuzz size cap, and
    the label match keeps ddmin anchored to the original bug instead of
    hill-climbing onto a different (possibly spurious) disagreement.
    """

    def predicate(candidate: CSRGraph) -> bool:
        found = run_trial(candidate, _trial_rng(trial_seed))
        return bool(_labels(found) & labels)

    return predicate


def _shrink_and_record(
    graph: CSRGraph,
    family: str,
    trial_seed: int,
    disagreements: list[Disagreement],
    *,
    shrink: bool,
    artifact_dir: str | Path | None,
) -> FuzzFailure:
    from repro.verify.shrink import shrink_failure, write_artifact

    minimized = graph
    if shrink:
        predicate = _make_predicate(trial_seed, _labels(disagreements))
        try:
            minimized = shrink_failure(graph, predicate)
        except ValueError:
            # Flaky reproduction (should not happen with seeded trials);
            # fall back to the unshrunk graph rather than lose the report.
            minimized = graph
    artifact = None
    if artifact_dir is not None:
        first = disagreements[0]
        artifact = write_artifact(
            artifact_dir,
            minimized,
            seed=trial_seed,
            label=first.label,
            message=str(first),
            original_vertices=graph.num_vertices,
        )
    return FuzzFailure(
        trial_seed=trial_seed,
        graph_name=graph.name,
        family=family,
        disagreements=tuple(disagreements),
        original_vertices=graph.num_vertices,
        shrunk_vertices=minimized.num_vertices,
        shrunk_edges=minimized.num_edges,
        artifact=artifact,
    )


def _fuzz_trial_worker(task: tuple) -> dict:
    """Run one seeded trial in a worker process.

    Module-level and returning only primitives so both start methods
    can ship it; the graph never leaves the worker — a failing seed is
    deterministically re-run in the parent, which needs the graph and
    the full disagreement objects for shrinking anyway.
    """
    trial_seed, max_vertices = task
    from repro.generators.registry import build_fuzz_graph

    graph, family = build_fuzz_graph(trial_seed, max_vertices=max_vertices)
    disagreements = run_trial(graph, _trial_rng(trial_seed))
    return {"family": family, "failed": bool(disagreements)}


def fuzz(
    *,
    seed: int = 0,
    budget: float = 60.0,
    max_trials: int | None = None,
    max_vertices: int = 64,
    artifact_dir: str | Path | None = None,
    shrink: bool = True,
    max_failures: int = 5,
    workers: int = 1,
    start_method: str | None = None,
    progress=None,
) -> FuzzResult:
    """Run a differential fuzz campaign; stop on budget or trial count.

    ``budget`` is wall-clock seconds; the loop checks it between
    trials (between *rounds* when ``workers > 1``), so in-flight work
    may overshoot slightly. ``max_trials`` (when given) caps the number
    of trials regardless of remaining budget. The campaign stops early
    once ``max_failures`` distinct failing trials have been minimized —
    by then the signal is "the build is broken", not "find more
    examples". ``progress`` is an optional callable receiving one
    status line per trial.

    ``workers > 1`` fans rounds of ``2 * workers`` trials out over a
    process pool (:func:`repro.parallel.sweep.process_map`) — trials
    are independent by construction, so this is the verify layer's own
    embarrassingly-parallel sweep level. The trial-seed sequence is
    identical to the serial campaign's, and each failing seed is
    deterministically re-run in the parent (seeded trials reproduce
    exactly) before shrinking, so campaign results do not depend on the
    worker count; only the number of trials a given budget affords does.
    """
    from repro.generators.registry import build_fuzz_graph

    started = time.monotonic()
    result = FuzzResult(seed=seed)
    trial = 0
    while True:
        result.elapsed = time.monotonic() - started
        if result.elapsed >= budget:
            break
        if max_trials is not None and trial >= max_trials:
            break
        if len(result.failures) >= max_failures:
            break
        round_size = 1
        if workers > 1:
            round_size = 2 * workers
            if max_trials is not None:
                round_size = min(round_size, max_trials - trial)
        round_seeds = [
            seed + (trial + i) * _TRIAL_STRIDE for i in range(round_size)
        ]
        if workers > 1:
            from repro.parallel.sweep import process_map

            outcomes = process_map(
                _fuzz_trial_worker,
                [(ts, max_vertices) for ts in round_seeds],
                workers=workers,
                start_method=start_method,
            )
        else:
            outcomes = [_fuzz_trial_worker((round_seeds[0], max_vertices))]
        for trial_seed, outcome in zip(round_seeds, outcomes):
            family = outcome["family"]
            result.families[family] = result.families.get(family, 0) + 1
            if outcome["failed"] and len(result.failures) < max_failures:
                # Reproduce in the parent: seeded trials are exact
                # replays, and shrinking needs the graph plus the full
                # disagreement objects the worker did not ship back.
                graph, _ = build_fuzz_graph(trial_seed, max_vertices=max_vertices)
                disagreements = run_trial(graph, _trial_rng(trial_seed))
                if disagreements:
                    failure = _shrink_and_record(
                        graph,
                        family,
                        trial_seed,
                        disagreements,
                        shrink=shrink,
                        artifact_dir=artifact_dir,
                    )
                    result.failures.append(failure)
                    if progress is not None:
                        progress(f"FAIL {failure}")
            elif progress is not None and trial % 25 == 0:
                progress(
                    f"trial {trial} ok ({family}, "
                    f"{time.monotonic() - started:.1f}s elapsed)"
                )
            trial += 1
    result.trials = trial
    result.elapsed = time.monotonic() - started
    return result


def replay(path: str | Path, *, seed: int | None = None) -> list[Disagreement]:
    """Re-run the full battery on a saved failure artifact.

    Uses the seed recorded in the ``.json`` sidecar unless overridden,
    so the replay exercises the exact query batch and metamorphic
    mutations of the original trial. Mutation-fuzz artifacts (whose
    sidecar embeds a ``trace``) replay the recorded insert/delete/query
    interleaving through :func:`repro.verify.mutation
    .run_mutation_trace` instead of the static battery.
    """
    from repro.verify.shrink import load_artifact

    graph, meta = load_artifact(path)
    if seed is None:
        seed = int(meta.get("seed", 0))
    if "trace" in meta:
        from repro.verify.mutation import (
            MutationTrace,
            run_mutation_trace,
            steps_from_json,
        )

        trace = MutationTrace(graph=graph, steps=steps_from_json(meta["trace"]))
        return run_mutation_trace(trace)
    return run_trial(graph, _trial_rng(seed))
