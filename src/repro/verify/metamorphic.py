"""Metamorphic relations: transformed inputs with predictable answers.

Where the differential lattice checks that many implementations agree
on *one* input, metamorphic checks transform the input in ways whose
effect on the answer is known a priori:

* **Relabeling invariance** — a uniform random vertex permutation
  changes no distance, so the diameter and the infinity flag are
  unchanged. Catches any dependence on vertex ids (CSR ordering,
  max-degree tie-breaks, sequential-scan artifacts).
* **Edge-addition monotonicity** — adding an edge can only create new
  shortest paths, never destroy one: every pairwise distance is
  non-increasing (with ``∞`` for unreachable), and on a *connected*
  graph the diameter is non-increasing. (The reported CC diameter of
  a disconnected graph is deliberately exempt: bridging two
  components can legitimately raise the largest component's
  eccentricity.)
* **Edge-deletion monotonicity** — the mirror image: removing an edge
  can only destroy shortest paths, never create one, so every pairwise
  distance is non-decreasing (possibly becoming ``∞``), and when the
  reduced graph stays connected its diameter is non-decreasing.
* **Insert-then-delete identity** — applying ``+e`` then ``-e`` for
  the same absent edge through a :class:`~repro.dynamic.DynamicGraph`
  must restore the exact CSR arrays and the exact diameter, while the
  epoch (and therefore the cache digest) must *not* be restored —
  byte-identical content at a different epoch is a different cache
  key by design.
* **Disjoint-union composition** — ``diam(G ⊔ H) = max(diam G,
  diam H)`` under the paper's largest-component-eccentricity
  convention, and the union is always flagged infinite.

Each check returns a list of :class:`~repro.verify.differential
.Disagreement` (empty when the relation holds), so the fuzz runner
treats them exactly like lattice divergences.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.reference import serial_distances
from repro.core.config import FDiamConfig
from repro.core.fdiam import fdiam
from repro.errors import ReproError
from repro.generators.perturb import disjoint_union, permute_vertices
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "check_disjoint_union",
    "check_edge_addition_monotone",
    "check_edge_deletion_monotone",
    "check_insert_delete_identity",
    "check_relabel_invariance",
]

# Deferred import to avoid a cycle (differential imports this module).


def _disagreement(label: str, message: str):
    from repro.verify.differential import Disagreement

    return Disagreement(label, message)


def _run(graph: CSRGraph, label: str):
    """fdiam with the oracle attached; errors become disagreements."""
    try:
        return fdiam(graph, FDiamConfig(verify=True)), None
    except ReproError as exc:
        return None, _disagreement(label, f"{type(exc).__name__}: {exc}")


def check_relabel_invariance(graph: CSRGraph, rng: np.random.Generator) -> list:
    """Diameter and infinity flag survive a random relabeling."""
    label = "metamorphic/relabel"
    if graph.num_vertices < 2:
        return []
    base, err = _run(graph, label)
    if err is not None:
        return [err]
    relabeled = permute_vertices(graph, seed=int(rng.integers(2**31)))
    other, err = _run(relabeled, label)
    if err is not None:
        return [err]
    if (base.diameter, base.infinite) != (other.diameter, other.infinite):
        return [
            _disagreement(
                label,
                f"diameter {base.diameter} (infinite={base.infinite}) became "
                f"{other.diameter} (infinite={other.infinite}) after a "
                "vertex relabeling",
            )
        ]
    return []


def check_edge_addition_monotone(
    graph: CSRGraph, rng: np.random.Generator, *, samples: int = 4
) -> list:
    """Adding one edge never increases any pairwise distance."""
    label = "metamorphic/edge-add"
    n = graph.num_vertices
    if n < 2:
        return []
    # Sample a uniform non-loop pair; an existing edge keeps the graph
    # identical after dedup, which tests idempotence for free.
    u = int(rng.integers(n))
    v = int(rng.integers(n - 1))
    if v >= u:
        v += 1
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    src = np.concatenate([row_of, [u]])
    dst = np.concatenate([graph.indices.astype(np.int64), [v]])
    augmented = from_edge_arrays(src, dst, n, f"{graph.name}+e({u},{v})")

    sources = {u, v} | {int(rng.integers(n)) for _ in range(samples)}
    inf = np.iinfo(np.int64).max
    for s in sources:
        before = serial_distances(graph, s)
        after = serial_distances(augmented, s)
        before = np.where(before < 0, inf, before)
        after = np.where(after < 0, inf, after)
        worse = np.flatnonzero(after > before)
        if len(worse):
            t = int(worse[0])
            return [
                _disagreement(
                    label,
                    f"adding edge ({u},{v}) increased d({s},{t}) from "
                    f"{int(before[t])} to {int(after[t])}",
                )
            ]
    if graph.num_vertices and not (serial_distances(graph, 0) < 0).any():
        base, err = _run(graph, label)
        if err is not None:
            return [err]
        aug, err = _run(augmented, label)
        if err is not None:
            return [err]
        if aug.diameter > base.diameter:
            return [
                _disagreement(
                    label,
                    f"adding edge ({u},{v}) raised the connected diameter "
                    f"from {base.diameter} to {aug.diameter}",
                )
            ]
    return []


def check_edge_deletion_monotone(
    graph: CSRGraph, rng: np.random.Generator, *, samples: int = 4
) -> list:
    """Deleting one edge never decreases any pairwise distance."""
    label = "metamorphic/edge-del"
    n = graph.num_vertices
    if n < 2 or graph.num_edges == 0:
        return []
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cols = graph.indices.astype(np.int64)
    upper = row_of < cols  # one record per undirected edge
    src_all, dst_all = row_of[upper], cols[upper]
    pick = int(rng.integers(len(src_all)))
    u, v = int(src_all[pick]), int(dst_all[pick])
    keep = np.ones(len(src_all), dtype=bool)
    keep[pick] = False
    reduced = from_edge_arrays(
        src_all[keep], dst_all[keep], n, f"{graph.name}-e({u},{v})"
    )

    sources = {u, v} | {int(rng.integers(n)) for _ in range(samples)}
    inf = np.iinfo(np.int64).max
    for s in sources:
        before = serial_distances(graph, s)
        after = serial_distances(reduced, s)
        before = np.where(before < 0, inf, before)
        after = np.where(after < 0, inf, after)
        better = np.flatnonzero(after < before)
        if len(better):
            t = int(better[0])
            return [
                _disagreement(
                    label,
                    f"deleting edge ({u},{v}) decreased d({s},{t}) from "
                    f"{int(before[t])} to {int(after[t])}",
                )
            ]
    if not (serial_distances(reduced, 0) < 0).any():
        # Reduced graph connected => original connected too (superset
        # of the edges), so both diameters use the finite convention.
        base, err = _run(graph, label)
        if err is not None:
            return [err]
        red, err = _run(reduced, label)
        if err is not None:
            return [err]
        if red.diameter < base.diameter:
            return [
                _disagreement(
                    label,
                    f"deleting edge ({u},{v}) lowered the connected "
                    f"diameter from {base.diameter} to {red.diameter}",
                )
            ]
    return []


def check_insert_delete_identity(
    graph: CSRGraph, rng: np.random.Generator
) -> list:
    """``+e`` then ``-e`` restores the graph and diameter, not the epoch."""
    label = "metamorphic/insert-delete"
    n = graph.num_vertices
    if n < 2:
        return []
    from repro.dynamic import DynamicDiameter, DynamicGraph

    u = v = -1
    for _ in range(16):  # dense fuzz graphs may have no absent pair
        a = int(rng.integers(n))
        b = int(rng.integers(n - 1))
        if b >= a:
            b += 1
        if not graph.has_edge(a, b):
            u, v = a, b
            break
    if u < 0:
        return []
    base, err = _run(graph, label)
    if err is not None:
        return [err]
    dgraph = DynamicGraph(graph)
    digest0 = dgraph.digest()
    dgraph.apply(inserts=[(u, v)])
    dgraph.apply(deletes=[(u, v)])
    view = dgraph.view()
    found = []
    if not (
        np.array_equal(view.indptr, graph.indptr)
        and np.array_equal(view.indices, graph.indices)
    ):
        return [
            _disagreement(
                label,
                f"insert-then-delete of ({u},{v}) did not restore the "
                "CSR arrays",
            )
        ]
    if dgraph.epoch != 2:
        found.append(
            _disagreement(
                label,
                f"two mutating batches advanced the epoch to "
                f"{dgraph.epoch}, expected 2",
            )
        )
    if dgraph.digest() == digest0:
        found.append(
            _disagreement(
                label,
                "restored byte content reused the epoch-0 cache digest; "
                "stale sidecars would be served across mutations",
            )
        )
    maintainer = DynamicDiameter(dgraph)
    if (maintainer.diameter, maintainer.infinite) != (
        base.diameter,
        base.infinite,
    ):
        found.append(
            _disagreement(
                label,
                f"insert-then-delete of ({u},{v}) changed the diameter "
                f"from {base.diameter} (infinite={base.infinite}) to "
                f"{maintainer.diameter} (infinite={maintainer.infinite})",
            )
        )
    return found


def check_disjoint_union(graph: CSRGraph, rng: np.random.Generator) -> list:
    """``diam(G ⊔ H) = max`` of the parts, and the union is infinite."""
    label = "metamorphic/union"
    if graph.num_vertices == 0:
        return []
    # Partner: a small deterministic companion derived from the rng so
    # the composition covers both same-size and lopsided unions.
    from repro.generators.registry import build_fuzz_graph

    partner, _family = build_fuzz_graph(int(rng.integers(2**31)), max_vertices=16)
    combined = disjoint_union([graph, partner], name="fuzz-union-check")

    base, err = _run(graph, label)
    if err is not None:
        return [err]
    part, err = _run(partner, label)
    if err is not None:
        return [err]
    union, err = _run(combined, label)
    if err is not None:
        return [err]
    expected = max(base.diameter, part.diameter)
    found = []
    if union.diameter != expected:
        found.append(
            _disagreement(
                label,
                f"diam(G ⊔ H) = {union.diameter}, expected "
                f"max({base.diameter}, {part.diameter}) = {expected}",
            )
        )
    if not union.infinite:
        found.append(
            _disagreement(label, "a disjoint union was not flagged infinite")
        )
    return found
