"""The invariant oracle: per-stage safety checks against reference BFS.

The oracle precomputes the full distance matrix of the graph with the
structurally independent deque BFS (:func:`repro.bfs.reference
.serial_distances`) and exposes one check per F-Diam safety argument:

* **Sandwich** — ``state.bound`` is a true diameter lower bound, and
  every numeric status slot is a true eccentricity upper bound (exact
  for ``Reason.COMPUTED`` vertices). This is the status-encoding
  invariant of :mod:`repro.core.state`.
* **Winnow ball** (Theorems 2–3) — every ``WINNOWED`` vertex lies
  within ``⌊bound/2⌋`` of the pinned centre, so any pair of winnowed
  vertices is at most ``bound`` apart and discarding the ball keeps a
  witness of any larger distance outside it.
* **Eliminate radius** (Theorem 1) — an Eliminate call from ``x`` with
  known ``ecc(x)`` may only write levels ``1 .. bound - ecc(x)``, each
  level-``k`` vertex sits at true distance ``k`` from ``x``, and no
  written bound exceeds the current ``bound``.
* **Chain-tip dominance** (§4.3) — no vertex removed by Chain
  Processing has a larger true eccentricity than the best surviving
  tip (or the already-certified bound).
* **Witness preservation** — the master invariant implied by all of
  the above: at every stage boundary,
  ``max(bound, max ecc over active vertices) == true diameter``, i.e.
  a witness of the true diameter is still under consideration or
  already accounted for. Any unsound discard trips this check on a
  graph where the discarded vertex was the last witness.

Checks raise :class:`repro.errors.InvariantViolation` naming the stage
and offending vertices. Building the oracle costs one BFS per vertex;
it refuses graphs above ``max_vertices`` so a stray ``verify=True``
cannot silently turn a benchmark into APSP.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.reference import serial_distances
from repro.errors import AlgorithmError, InvariantViolation
from repro.graph.csr import CSRGraph

__all__ = ["InvariantOracle", "DEFAULT_MAX_VERTICES"]

#: Refuse to build reference distances above this size (O(n·m) setup).
DEFAULT_MAX_VERTICES = 4096


class InvariantOracle:
    """Reference distances plus the per-stage checks listed above."""

    __slots__ = ("graph", "dist", "true_ecc", "true_diameter", "connected")

    def __init__(self, graph: CSRGraph, *, max_vertices: int = DEFAULT_MAX_VERTICES):
        n = graph.num_vertices
        if n > max_vertices:
            raise AlgorithmError(
                f"invariant oracle needs O(n*m) reference distances; "
                f"graph has {n} > max_vertices={max_vertices} vertices"
            )
        self.graph = graph
        #: Full (n, n) distance matrix; -1 for unreachable pairs.
        self.dist = np.empty((n, n), dtype=np.int64)
        for v in range(n):
            self.dist[v] = serial_distances(graph, v)
        #: True per-vertex eccentricity within its component.
        self.true_ecc = self.dist.max(axis=1) if n else np.empty(0, np.int64)
        #: The paper's reported value: largest eccentricity in any CC.
        self.true_diameter = int(self.true_ecc.max()) if n else 0
        self.connected = bool(n <= 1 or (self.dist[0] >= 0).all())

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def check_bound(self, state, stage: str) -> None:
        """``state.bound`` must never exceed the true diameter."""
        if state.bound > self.true_diameter:
            raise InvariantViolation(
                f"[{stage}] lower bound {state.bound} exceeds the true "
                f"diameter {self.true_diameter}",
                stage=stage,
            )

    def check_upper_bounds(self, state, stage: str) -> None:
        """Every numeric status is a valid eccentricity upper bound."""
        from repro.core.state import ACTIVE, WINNOWED
        from repro.core.stats import Reason

        status = state.status
        numeric = (status != ACTIVE) & (status != WINNOWED)
        bad = np.flatnonzero(numeric & (status < self.true_ecc))
        if len(bad):
            v = int(bad[0])
            raise InvariantViolation(
                f"[{stage}] status[{v}] = {int(status[v])} is below the "
                f"true eccentricity {int(self.true_ecc[v])} "
                f"(reason {Reason(state.reason[v]).name})",
                stage=stage,
            )
        computed = numeric & (state.reason == Reason.COMPUTED)
        wrong = np.flatnonzero(computed & (status != self.true_ecc))
        if len(wrong):
            v = int(wrong[0])
            raise InvariantViolation(
                f"[{stage}] computed eccentricity status[{v}] = "
                f"{int(status[v])} != true {int(self.true_ecc[v])}",
                stage=stage,
            )

    def check_winnow(self, state, stage: str = "winnow") -> None:
        """Theorems 2–3: the winnowed set is inside ``B(c, ⌊bound/2⌋)``."""
        from repro.core.state import WINNOWED

        ball = np.flatnonzero(state.status == WINNOWED)
        if len(ball) == 0:
            return
        center = state.winnow_center
        if center is None:
            raise InvariantViolation(
                f"[{stage}] {len(ball)} WINNOWED vertices but no pinned "
                "winnow centre",
                stage=stage,
            )
        radius = state.bound // 2
        d = self.dist[center, ball]
        bad = np.flatnonzero((d < 0) | (d > radius))
        if len(bad):
            v = int(ball[bad[0]])
            raise InvariantViolation(
                f"[{stage}] winnowed vertex {v} is at distance "
                f"{int(self.dist[center, v])} from centre {center}, "
                f"outside the sound radius ⌊{state.bound}/2⌋ = {radius}",
                stage=stage,
            )

    def check_eliminate(
        self, state, source: int, ecc: int, levels: list[np.ndarray]
    ) -> None:
        """Theorem 1: radius, level membership, and bound containment."""
        stage = "eliminate"
        n = self.graph.num_vertices
        if 0 <= ecc <= n:  # real eccentricities only (chains pass MAX-s)
            if ecc != int(self.true_ecc[source]):
                raise InvariantViolation(
                    f"[{stage}] called with ecc({source}) = {ecc}, but the "
                    f"true eccentricity is {int(self.true_ecc[source])}",
                    stage=stage,
                )
            if ecc + len(levels) > state.bound:
                raise InvariantViolation(
                    f"[{stage}] expanded {len(levels)} levels from vertex "
                    f"{source} (ecc {ecc}): deepest written bound "
                    f"{ecc + len(levels)} exceeds the current diameter "
                    f"bound {state.bound} — radius must be bound - ecc = "
                    f"{state.bound - ecc}",
                    stage=stage,
                )
        for k, level in enumerate(levels):
            wrong = np.flatnonzero(self.dist[source, level] != k + 1)
            if len(wrong):
                v = int(level[wrong[0]])
                raise InvariantViolation(
                    f"[{stage}] vertex {v} surfaced on level {k + 1} of the "
                    f"partial BFS from {source} but its true distance is "
                    f"{int(self.dist[source, v])}",
                    stage=stage,
                )

    def check_chain(self, state, kept_tips) -> None:
        """§4.3 dominance: removed chain vertices never out-rank the tips."""
        from repro.core.state import ACTIVE
        from repro.core.stats import Reason

        stage = "chain"
        removed = np.flatnonzero(
            (state.reason == Reason.CHAIN) & (state.status != ACTIVE)
        )
        if len(removed) == 0:
            return
        dominated = int(self.true_ecc[removed].max())
        kept = np.asarray(list(kept_tips), dtype=np.int64)
        best_tip = int(self.true_ecc[kept].max()) if len(kept) else -1
        if dominated > max(best_tip, state.bound):
            v = int(removed[int(self.true_ecc[removed].argmax())])
            raise InvariantViolation(
                f"[{stage}] chain-removed vertex {v} has true eccentricity "
                f"{dominated}, above every surviving tip (best "
                f"{best_tip}) and the current bound {state.bound} — "
                f"dominance lost",
                stage=stage,
            )

    def check_witness(self, state, stage: str) -> None:
        """A witness of the true diameter must remain accounted for."""
        active = np.flatnonzero(state.active_mask())
        best_active = int(self.true_ecc[active].max()) if len(active) else 0
        if max(state.bound, best_active) < self.true_diameter:
            raise InvariantViolation(
                f"[{stage}] every witness of the true diameter "
                f"{self.true_diameter} was discarded: bound is "
                f"{state.bound} and the best still-active eccentricity is "
                f"{best_active}",
                stage=stage,
            )

    # ------------------------------------------------------------------
    # Composite entry points the core hooks call
    # ------------------------------------------------------------------
    def check_stage(self, state, stage: str) -> None:
        """The full post-stage battery (cheap: O(n) on cached truths)."""
        self.check_bound(state, stage)
        self.check_upper_bounds(state, stage)
        self.check_winnow(state, stage)
        self.check_witness(state, stage)

    def check_computed(self, state, vertex: int, ecc: int) -> None:
        """A main-loop eccentricity BFS must return the true value."""
        if ecc != int(self.true_ecc[vertex]):
            raise InvariantViolation(
                f"[ecc-bfs] eccentricity BFS from {vertex} returned {ecc}, "
                f"true value is {int(self.true_ecc[vertex])}",
                stage="ecc-bfs",
            )

    def check_final(self, state, diameter: int, connected: bool) -> None:
        """End-of-run: exact diameter, exact flag, no vertex left active."""
        stage = "final"
        self.check_upper_bounds(state, stage)
        if diameter != self.true_diameter:
            raise InvariantViolation(
                f"[{stage}] reported diameter {diameter} != true "
                f"{self.true_diameter}",
                stage=stage,
            )
        if connected != self.connected:
            raise InvariantViolation(
                f"[{stage}] reported connected={connected}, reference says "
                f"{self.connected}",
                stage=stage,
            )
        leftovers = state.active_count()
        if leftovers:
            raise InvariantViolation(
                f"[{stage}] {leftovers} vertices still ACTIVE after the "
                "main loop",
                stage=stage,
            )
