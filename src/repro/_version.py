"""Version information for the F-Diam reproduction package."""

__version__ = "1.0.0"

#: Version of the paper this package reproduces.
PAPER = (
    "Bradley, Mongandampulath Akathoott, Burtscher: "
    "Fast Exact Diameter Computation of Sparse Graphs, ICPP 2025"
)
