"""Graph substrate: CSR representation, builders, I/O, components.

This subpackage is the foundation every algorithm in the reproduction
runs on. See :class:`CSRGraph` for the data structure and
:mod:`repro.graph.build` for the canonicalizing constructors.
"""

from repro.graph.build import (
    empty_graph,
    from_adjacency,
    from_edge_arrays,
    from_edges,
    from_networkx,
    from_scipy_sparse,
)
from repro.graph.components import (
    ConnectedComponents,
    connected_components,
    largest_component_mask,
)
from repro.graph.csr import CSRGraph
from repro.graph.degrees import (
    DegreeSummary,
    degree_histogram,
    degree_one_vertices,
    degree_summary,
    degree_two_vertices,
    vertices_with_degree,
)
from repro.graph.kcore import (
    CoreDecomposition,
    core_numbers,
    degeneracy,
    k_core_mask,
)
from repro.graph.io import (
    graph_digest,
    load_npz,
    read_dimacs,
    read_edge_list,
    read_graph,
    read_matrix_market,
    read_metis,
    save_npz,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
    write_metis,
)
from repro.graph.subgraph import Subgraph, component_subgraph, induced_subgraph
from repro.graph.validate import is_symmetric, validate_csr

__all__ = [
    "CSRGraph",
    "ConnectedComponents",
    "CoreDecomposition",
    "DegreeSummary",
    "Subgraph",
    "component_subgraph",
    "connected_components",
    "core_numbers",
    "degeneracy",
    "degree_histogram",
    "degree_one_vertices",
    "degree_summary",
    "degree_two_vertices",
    "empty_graph",
    "from_adjacency",
    "from_edge_arrays",
    "from_edges",
    "from_networkx",
    "from_scipy_sparse",
    "graph_digest",
    "induced_subgraph",
    "is_symmetric",
    "k_core_mask",
    "largest_component_mask",
    "load_npz",
    "read_dimacs",
    "read_edge_list",
    "read_graph",
    "read_matrix_market",
    "read_metis",
    "save_npz",
    "validate_csr",
    "vertices_with_degree",
    "write_dimacs",
    "write_edge_list",
    "write_matrix_market",
    "write_metis",
]
