"""Connected components of a CSR graph.

The paper evaluates several disconnected inputs ("Several of these
graphs are disconnected, meaning the actual diameter is infinite. ...
F-Diam and all other tested codes support disconnected graphs and report
the largest eccentricity among all connected components"). Component
discovery is therefore part of the substrate: the diameter drivers use it
to restrict work to individual components and to report the
largest-eccentricity component.

The implementation is a vectorized label-propagation sweep over frontier
arrays (the same machinery as the BFS engines, specialized to labels),
which keeps it fast enough to run on every benchmark input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["ConnectedComponents", "connected_components", "largest_component_mask"]


@dataclass(frozen=True)
class ConnectedComponents:
    """Result of a connected-components computation.

    Attributes
    ----------
    labels:
        ``int64`` array mapping each vertex to its component id in
        ``[0, num_components)``. Component ids are assigned in order of
        the smallest vertex id they contain.
    sizes:
        ``int64`` array of component sizes, indexed by component id.
    """

    labels: np.ndarray
    sizes: np.ndarray

    @property
    def num_components(self) -> int:
        """Number of connected components (0 for the empty graph)."""
        return len(self.sizes)

    def largest(self) -> int:
        """Id of the largest component (lowest id wins ties)."""
        return int(np.argmax(self.sizes))

    def vertices_of(self, component: int) -> np.ndarray:
        """Sorted vertex ids belonging to ``component``."""
        return np.flatnonzero(self.labels == component)

    def is_connected(self) -> bool:
        """Whether the whole graph is a single connected component."""
        return self.num_components <= 1


def connected_components(graph: CSRGraph) -> ConnectedComponents:
    """Compute connected components with a vectorized BFS sweep.

    Runs one multi-source frontier expansion per component seed. Each
    expansion round gathers the neighbourhoods of the entire frontier
    with array slicing (``O(frontier edges)`` NumPy work), so the total
    cost is ``O(n + m)`` array operations.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices

    component = 0
    cursor = 0  # next vertex to examine as a potential new seed
    while True:
        # Find the next unlabelled vertex.
        while cursor < n and labels[cursor] != -1:
            cursor += 1
        if cursor == n:
            break
        seed = cursor
        labels[seed] = component
        frontier = np.array([seed], dtype=np.int64)
        while len(frontier):
            # Gather all neighbours of the frontier in one shot.
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            total = int((stops - starts).sum())
            if total == 0:
                break
            neigh = _gather(indices, starts, stops, total)
            neigh = neigh[labels[neigh] == -1]
            if len(neigh) == 0:
                break
            neigh = np.unique(neigh)
            labels[neigh] = component
            frontier = neigh
        component += 1

    sizes = np.bincount(labels, minlength=component) if component else np.empty(0, np.int64)
    return ConnectedComponents(labels=labels, sizes=sizes.astype(np.int64))


def largest_component_mask(graph: CSRGraph) -> np.ndarray:
    """Boolean mask selecting the vertices of the largest component."""
    cc = connected_components(graph)
    if cc.num_components == 0:
        return np.zeros(graph.num_vertices, dtype=bool)
    return cc.labels == cc.largest()


def _gather(indices: np.ndarray, starts: np.ndarray, stops: np.ndarray, total: int) -> np.ndarray:
    """Concatenate ``indices[starts[i]:stops[i]]`` for all ``i``.

    Builds a flat index with ``repeat``/``cumsum`` arithmetic instead of a
    Python loop; this is the core "parallel gather" primitive shared with
    the BFS engines (see :mod:`repro.bfs.frontier` for the general
    version with documentation of the technique).
    """
    lengths = stops - starts
    # offsets[i] = starts[i] - (cumulative length before i)
    out_pos = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths)
    flat = np.arange(total, dtype=np.int64) + out_pos
    return indices[flat].astype(np.int64)
