"""Graph readers and writers.

Supported formats
-----------------
* **Plain edge list** (``.el`` / ``.txt``) — one ``u v`` pair per line,
  ``#``/``%`` comments. This is the format SNAP distributes its graphs
  in (the paper's amazon0601, as-skitter, cit-Patents, soc-LiveJournal1).
* **DIMACS shortest-path** (``.gr``) — ``c`` comment lines, one
  ``p sp <n> <m>`` header, ``a <u> <v> [w]`` arc lines with 1-based ids.
  The format of the paper's USA-road-d inputs; weights are ignored since
  F-Diam targets unweighted graphs.
* **METIS** (``.graph``) — header ``<n> <m> [fmt]``, then line ``i``
  lists the 1-based neighbours of vertex ``i``. The format used by the
  SuiteSparse/UoFSMC conversions (citationCiteseer, coPapersDBLP, ...).
* **Matrix Market** (``.mtx``) — the SuiteSparse collection's native
  exchange format (the paper's UoFSMC inputs are published this way):
  a ``%%MatrixMarket matrix coordinate <field> <symmetry>`` header,
  ``%`` comments, a ``rows cols entries`` size line, then 1-based
  ``i j [value]`` entries. Values are ignored (F-Diam is unweighted);
  both ``general`` and ``symmetric`` symmetry are accepted since the
  builder symmetrizes anyway.
* **NumPy archive** (``.npz``) — the package's native format; stores the
  CSR arrays directly and round-trips exactly and instantly.

All text readers are line-oriented and tolerate blank lines; malformed
content raises :class:`~repro.errors.GraphFormatError` with the line
number.
"""

from __future__ import annotations

import hashlib
import io
import os
import warnings
import zipfile
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_metis",
    "write_metis",
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
    "read_graph",
    "graph_digest",
    "content_digest",
]

_COMMENT_PREFIXES = ("#", "%")


def _open_text(path_or_file: str | os.PathLike | TextIO, mode: str = "r"):
    """Return ``(file, should_close)`` for a path or open text file."""
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode, encoding="utf-8"), True


# ----------------------------------------------------------------------
# Plain edge list
# ----------------------------------------------------------------------
def read_edge_list(
    path_or_file: str | os.PathLike | TextIO,
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP style).

    A SNAP-style ``# Nodes: N ...`` comment header, when present, fixes
    the vertex count so trailing isolated vertices survive round-trips;
    otherwise the count is inferred as ``max(id) + 1``.
    """
    fh, close = _open_text(path_or_file)
    try:
        srcs: list[int] = []
        dsts: list[int] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                if num_vertices is None and line.startswith("#"):
                    parts = line[1:].split()
                    if len(parts) >= 2 and parts[0] == "Nodes:":
                        try:
                            num_vertices = int(parts[1])
                        except ValueError:
                            pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v', got {line!r}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {lineno}: non-integer vertex id in {line!r}"
                ) from exc
    finally:
        if close:
            fh.close()
    label = name or _default_name(path_or_file, "edge-list")
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        num_vertices,
        name=label,
    )


def write_edge_list(graph: CSRGraph, path_or_file: str | os.PathLike | TextIO) -> None:
    """Write one ``u v`` line per undirected edge (``u < v``)."""
    fh, close = _open_text(path_or_file, "w")
    try:
        fh.write(f"# {graph.name}\n")
        # SNAP-style header; read_edge_list uses it to preserve the
        # exact vertex count (trailing isolated vertices included).
        fh.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        n = graph.num_vertices
        row_of = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.indptr)
        )
        cols = graph.indices.astype(np.int64)
        keep = row_of < cols
        for u, v in zip(row_of[keep], cols[keep]):
            fh.write(f"{u} {v}\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# DIMACS .gr
# ----------------------------------------------------------------------
def read_dimacs(
    path_or_file: str | os.PathLike | TextIO, name: str | None = None
) -> CSRGraph:
    """Read a DIMACS shortest-path ``.gr`` file (1-based arc lines)."""
    fh, close = _open_text(path_or_file)
    try:
        declared_n: int | None = None
        srcs: list[int] = []
        dsts: list[int] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"line {lineno}: bad problem line {line!r}"
                    )
                declared_n = int(parts[2])
            elif parts[0] == "a":
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"line {lineno}: bad arc line {line!r}"
                    )
                try:
                    u, v = int(parts[1]), int(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"line {lineno}: non-integer vertex id in {line!r}"
                    ) from exc
                if u < 1 or v < 1:
                    raise GraphFormatError(
                        f"line {lineno}: DIMACS ids are 1-based, got {line!r}"
                    )
                srcs.append(u - 1)
                dsts.append(v - 1)
            else:
                raise GraphFormatError(
                    f"line {lineno}: unknown record type {parts[0]!r}"
                )
        if declared_n is None:
            raise GraphFormatError("missing 'p sp <n> <m>' problem line")
    finally:
        if close:
            fh.close()
    label = name or _default_name(path_or_file, "dimacs")
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        declared_n,
        name=label,
    )


def write_dimacs(graph: CSRGraph, path_or_file: str | os.PathLike | TextIO) -> None:
    """Write a DIMACS ``.gr`` file (both arc directions, weight 1)."""
    fh, close = _open_text(path_or_file, "w")
    try:
        fh.write(f"c {graph.name}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_directed_edges}\n")
        n = graph.num_vertices
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        for u, v in zip(row_of, graph.indices):
            fh.write(f"a {u + 1} {v + 1} 1\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# METIS
# ----------------------------------------------------------------------
def read_metis(
    path_or_file: str | os.PathLike | TextIO, name: str | None = None
) -> CSRGraph:
    """Read a METIS ``.graph`` file (unweighted variant only)."""
    fh, close = _open_text(path_or_file)
    try:
        # Blank lines are significant in METIS (an isolated vertex's
        # adjacency line is empty), so only '%' comment lines are
        # filtered out; a leading blank line before the header is not
        # valid METIS and is treated as missing-header below.
        lines = [
            (i, ln.strip())
            for i, ln in enumerate(fh, start=1)
            if not ln.lstrip().startswith("%")
        ]
    finally:
        if close:
            fh.close()
    while lines and not lines[0][1]:
        lines.pop(0)
    if not lines:
        raise GraphFormatError("empty METIS file")
    header_no, header = lines[0]
    parts = header.split()
    if len(parts) < 2:
        raise GraphFormatError(f"line {header_no}: bad METIS header {header!r}")
    try:
        n = int(parts[0])
    except ValueError as exc:
        raise GraphFormatError(f"line {header_no}: bad vertex count") from exc
    if len(parts) >= 3 and parts[2] not in ("0", "00", "000"):
        raise GraphFormatError(
            f"line {header_no}: weighted METIS format {parts[2]!r} not supported"
        )
    body = lines[1:]
    if len(body) > n:
        raise GraphFormatError(
            f"METIS file has {len(body)} adjacency lines for {n} vertices"
        )
    srcs: list[int] = []
    dsts: list[int] = []
    for row, (lineno, line) in enumerate(body):
        for token in line.split():
            try:
                v = int(token)
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {lineno}: non-integer neighbour {token!r}"
                ) from exc
            if not 1 <= v <= n:
                raise GraphFormatError(
                    f"line {lineno}: neighbour {v} out of range 1..{n}"
                )
            srcs.append(row)
            dsts.append(v - 1)
    label = name or _default_name(path_or_file, "metis")
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        n,
        name=label,
    )


def write_metis(graph: CSRGraph, path_or_file: str | os.PathLike | TextIO) -> None:
    """Write a METIS ``.graph`` file (1-based neighbour lists)."""
    fh, close = _open_text(path_or_file, "w")
    try:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in graph.neighbors(v)) + "\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# Matrix Market
# ----------------------------------------------------------------------
def read_matrix_market(
    path_or_file: str | os.PathLike | TextIO, name: str | None = None
) -> CSRGraph:
    """Read a Matrix Market ``.mtx`` coordinate file (SuiteSparse style)."""
    fh, close = _open_text(path_or_file)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError("missing '%%MatrixMarket' banner")
        parts = header.split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise GraphFormatError(
                f"unsupported MatrixMarket header {header.strip()!r} "
                "(only 'matrix coordinate' is supported)"
            )
        symmetry = parts[4].lower()
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(
                f"unsupported MatrixMarket symmetry {symmetry!r}"
            )
        size_line = None
        lineno = 1
        for line in fh:
            lineno += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            size_line = stripped
            break
        if size_line is None:
            raise GraphFormatError("missing MatrixMarket size line")
        size_parts = size_line.split()
        if len(size_parts) < 3:
            raise GraphFormatError(f"line {lineno}: bad size line {size_line!r}")
        try:
            rows, cols, entries = (int(p) for p in size_parts[:3])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer size in {size_line!r}"
            ) from exc
        if rows != cols:
            raise GraphFormatError(
                f"adjacency matrix must be square, got {rows}x{cols}"
            )
        srcs: list[int] = []
        dsts: list[int] = []
        for line in fh:
            lineno += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            entry = stripped.split()
            if len(entry) < 2:
                raise GraphFormatError(
                    f"line {lineno}: bad entry {stripped!r}"
                )
            try:
                i, j = int(entry[0]), int(entry[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {lineno}: non-integer index in {stripped!r}"
                ) from exc
            if not (1 <= i <= rows and 1 <= j <= cols):
                raise GraphFormatError(
                    f"line {lineno}: index out of range in {stripped!r}"
                )
            srcs.append(i - 1)
            dsts.append(j - 1)
        if len(srcs) != entries:
            raise GraphFormatError(
                f"expected {entries} entries, found {len(srcs)}"
            )
    finally:
        if close:
            fh.close()
    label = name or _default_name(path_or_file, "matrix-market")
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        rows,
        name=label,
    )


def write_matrix_market(
    graph: CSRGraph, path_or_file: str | os.PathLike | TextIO
) -> None:
    """Write a Matrix Market ``pattern symmetric`` coordinate file."""
    fh, close = _open_text(path_or_file, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"% {graph.name}\n")
        n = graph.num_vertices
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        cols = graph.indices.astype(np.int64)
        # Symmetric storage: lower triangle only (row >= col).
        keep = row_of >= cols
        fh.write(f"{n} {n} {int(keep.sum())}\n")
        for i, j in zip(row_of[keep], cols[keep]):
            fh.write(f"{i + 1} {j + 1}\n")
    finally:
        if close:
            fh.close()


# ----------------------------------------------------------------------
# Native .npz
# ----------------------------------------------------------------------
def save_npz(
    graph: CSRGraph, path: str | os.PathLike, *, compressed: bool = True
) -> None:
    """Save the CSR arrays to an ``.npz`` archive.

    ``compressed=False`` writes the members stored (uncompressed),
    which is what makes :func:`load_npz`'s ``mmap=True`` able to map
    the arrays straight off disk.
    """
    saver = np.savez_compressed if compressed else np.savez
    saver(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.array(graph.name),
    )


def _mmap_npz_arrays(path: str | os.PathLike) -> dict[str, np.ndarray] | None:
    """Memory-map the stored ``.npy`` members of an ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request
    for ``.npz`` archives, so the zip member offsets are resolved by
    hand: each *stored* (uncompressed) member is a plain ``.npy``
    stream at a known byte offset, mappable with :class:`numpy.memmap`.
    Returns ``None`` when any member is deflated (a compressed archive
    cannot be mapped) so the caller can fall back to a normal load.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
        for info in zf.infolist():
            if not info.filename.endswith(".npy"):
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            # Local file header: 30 fixed bytes, then the name and the
            # extra field; the member's data (the .npy stream) follows.
            fh.seek(info.header_offset + 26)
            name_len = int.from_bytes(fh.read(2), "little")
            extra_len = int.from_bytes(fh.read(2), "little")
            data_start = info.header_offset + 30 + name_len + extra_len
            fh.seek(data_start)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            else:
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            if dtype.hasobject:
                raise GraphFormatError(f"{path}: object arrays not supported")
            key = info.filename[: -len(".npy")]
            arrays[key] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=fh.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def load_npz(path: str | os.PathLike, *, mmap: bool = False) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`.

    With ``mmap=True`` the CSR arrays are memory-mapped read-only
    straight from the archive (no copy, pages fault in on first touch)
    — requires the archive to be stored uncompressed
    (``save_npz(..., compressed=False)``). A compressed archive falls
    back to the normal in-memory load with a warning.
    """
    if mmap:
        try:
            arrays = _mmap_npz_arrays(path)
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise GraphFormatError(f"{path}: not a loadable .npz ({exc})") from exc
        if arrays is None:
            warnings.warn(
                f"{path}: archive is compressed; cannot memory-map, "
                "loading into memory instead "
                "(write it with save_npz(..., compressed=False) to mmap)",
                stacklevel=2,
            )
        else:
            try:
                indptr = arrays["indptr"]
                indices = arrays["indices"]
            except KeyError as exc:
                raise GraphFormatError(
                    f"{path}: missing CSR array {exc.args[0]!r}"
                ) from exc
            if "name" in arrays:
                name = str(np.asarray(arrays["name"])[()])
            else:
                name = Path(path).stem
            return CSRGraph(indptr, indices, name=name)
    with np.load(path, allow_pickle=False) as data:
        try:
            indptr = data["indptr"]
            indices = data["indices"]
        except KeyError as exc:
            raise GraphFormatError(
                f"{path}: missing CSR array {exc.args[0]!r}"
            ) from exc
        name = str(data["name"]) if "name" in data else Path(path).stem
    return CSRGraph(indptr, indices, name=name)


def content_digest(*arrays: np.ndarray) -> str:
    """Hex SHA-256 over the dtype, shape, and bytes of some arrays.

    Storage-independent: this is what the ``.scsr`` header records so a
    decoded store can be verified against the arrays it claims to hold,
    whatever container they travelled in.
    """
    h = hashlib.sha256()
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def graph_digest(graph: CSRGraph, *, epoch: int | None = None) -> str:
    """Cache-key digest of a graph (hex SHA-256).

    The key of the warm-start cache (:mod:`repro.cache`): two graphs
    share a digest iff their ``indptr``/``indices`` arrays are byte-
    identical (dtype and shape included, so a permuted, perturbed, or
    differently-typed graph never collides) *and* they came through the
    same storage format (``CSRGraph.storage`` — an in-memory/``.npz``
    graph and its ``.scsr`` twin must not share warm-start sidecars,
    since the sidecar records which backing produced the certified
    artifacts). The name is deliberately excluded — renaming a graph
    does not change any distance.

    ``epoch`` makes the digest mutation-aware for evolving graphs
    (:class:`repro.dynamic.DynamicGraph`): folding the epoch into the
    key guarantees a sidecar written against one epoch is unreachable
    from any other, even when an insert-then-delete sequence restores
    byte-identical arrays. ``None`` (the static default) preserves the
    historical digests exactly.
    """
    h = hashlib.sha256()
    h.update(f"storage:{graph.storage}\n".encode())
    if epoch is not None:
        h.update(f"epoch:{int(epoch)}\n".encode())
    h.update(content_digest(graph.indptr, graph.indices).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Format dispatch
# ----------------------------------------------------------------------
_READERS = {
    ".el": read_edge_list,
    ".txt": read_edge_list,
    ".edges": read_edge_list,
    ".gr": read_dimacs,
    ".graph": read_metis,
    ".metis": read_metis,
    ".mtx": read_matrix_market,
}


def read_graph(
    path: str | os.PathLike, name: str | None = None, *, mmap: bool = False
) -> CSRGraph:
    """Read a graph, choosing the format from the file extension.

    ``mmap`` applies to the binary containers and dispatches on the
    format: for ``.npz`` it memory-maps the CSR arrays (see
    :func:`load_npz`); for ``.scsr`` it memory-maps the *compressed*
    image and keeps it attached as the graph's backing store (see
    :func:`repro.store.load_scsr`). Text formats always parse into
    memory.
    """
    suffix = Path(path).suffix.lower()
    if suffix == ".npz":
        return load_npz(path, mmap=mmap)
    if suffix == ".scsr":
        # Call-time import: the store package sits above graph/io.
        from repro.store import load_scsr

        return load_scsr(path, mmap=mmap)
    reader = _READERS.get(suffix)
    if reader is None:
        raise GraphFormatError(
            f"unknown graph file extension {suffix!r} "
            f"(known: {sorted(_READERS) + ['.npz', '.scsr']})"
        )
    return reader(path, name=name)


def _default_name(path_or_file, fallback: str) -> str:
    if isinstance(path_or_file, (str, os.PathLike)):
        return Path(path_or_file).stem
    if isinstance(path_or_file, io.TextIOBase):
        filename = getattr(path_or_file, "name", None)
        if isinstance(filename, str):
            return Path(filename).stem
    return fallback
