"""Compressed-sparse-row graph representation.

This is the substrate every algorithm in the package runs on. It mirrors
the representation used by the paper's C++ code (Section 2: "F-Diam uses
the compressed-sparse-row (CSR) representation to fit sparse graphs with
many millions of vertices and edges into the main memory"):

* ``indptr``  — ``int64`` array of length ``n + 1``; the neighbours of
  vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
* ``indices`` — ``int32`` (or ``int64`` for very large graphs) array of
  length ``m`` holding the concatenated, sorted adjacency lists.

Graphs are **undirected** and **unweighted**: every undirected edge
``{u, v}`` is stored twice, once as ``u → v`` and once as ``v → u``, as in
the paper's evaluation setup ("each undirected edge is represented by two
directed edges in opposite directions"). Self-loops and parallel edges
are removed at construction time by the builders in
:mod:`repro.graph.build`.

The class is deliberately immutable: algorithms never mutate the graph,
only per-vertex working arrays (eccentricity slots, visit counters) that
live outside it. This keeps a single graph shareable across every
algorithm, engine, and benchmark repetition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable undirected, unweighted graph in CSR form.

    Instances are normally created through the builders in
    :mod:`repro.graph.build` (e.g. :func:`~repro.graph.build.from_edges`)
    or the readers in :mod:`repro.graph.io`, which take care of
    symmetrizing, sorting, and deduplicating the adjacency structure.

    Attributes
    ----------
    indptr:
        ``int64`` row-pointer array of length ``num_vertices + 1``.
    indices:
        Column-index array of length ``num_directed_edges``; each
        undirected edge contributes two entries.
    name:
        Optional human-readable label used in benchmark tables.
    storage:
        Storage-format tag of the container the graph was decoded
        from: ``"csr"`` for in-memory construction and the plain
        array formats (``.npz``, text), ``"scsr:v1"`` for the
        block-compressed store. :func:`repro.graph.io.graph_digest`
        folds this tag into the cache key so loads of the same graph
        through different formats never share warm-start sidecars.
        Excluded from equality — the adjacency structure is what a
        graph *is*; the tag records where it came from.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = "graph"
    storage: str = field(default="csr", compare=False)
    _degrees: np.ndarray = field(init=False, repr=False, compare=False)
    _adj_lists: list | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices)
        if indices.dtype not in (np.int32, np.int64):
            indices = indices.astype(np.int64)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        degrees = np.diff(indptr)
        degrees.setflags(write=False)
        object.__setattr__(self, "_degrees", degrees)

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (vertex ids are ``0 .. n-1``)."""
        return len(self.indptr) - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored directed arcs (``2 *`` undirected edges)."""
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return self.num_vertices

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the sorted neighbour list of ``v``."""
        self._check_vertex(v)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Read-only array of all vertex degrees (length ``n``)."""
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists.

        Binary search on the sorted neighbour list of the lower-degree
        endpoint; ``O(log max(deg(u), deg(v)))``.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if self._degrees[u] > self._degrees[v]:
            u, v = v, u
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def adjacency_lists(self) -> list:
        """Adjacency as plain Python ``list``-of-``list`` (lazily cached).

        The scalar serial BFS engine iterates edges one at a time;
        indexing NumPy arrays element-wise boxes every value and is
        several times slower than iterating native lists. The conversion
        is done once per graph and memoized (safe despite the frozen
        dataclass: the cache is derived state, invisible to equality).
        """
        if self._adj_lists is None:
            indptr, indices = self.indptr, self.indices
            lists = [
                indices[indptr[v] : indptr[v + 1]].tolist()
                for v in range(self.num_vertices)
            ]
            object.__setattr__(self, "_adj_lists", lists)
        return self._adj_lists

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` pairs with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    # ------------------------------------------------------------------
    # Derived vertices of interest
    # ------------------------------------------------------------------
    def max_degree_vertex(self) -> int:
        """The vertex ``u`` with the largest degree (lowest id wins ties).

        F-Diam uses this vertex as both the 2-sweep starting point and
        the Winnow centre because high-degree vertices tend to be
        centrally located (paper Section 3).
        """
        if self.num_vertices == 0:
            raise AlgorithmError("max_degree_vertex() on an empty graph")
        return int(np.argmax(self._degrees))

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self._degrees.max())

    def average_degree(self) -> float:
        """Average degree ``num_directed_edges / n`` (paper Table 1 column)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_directed_edges / self.num_vertices

    def isolated_vertices(self) -> np.ndarray:
        """Ids of degree-0 vertices (paper Table 4's last column)."""
        return np.flatnonzero(self._degrees == 0)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "CSRGraph":
        """A copy of this graph (sharing arrays) under a different name.

        The memoized adjacency-list cache is shared too — it is derived
        purely from the (shared) CSR arrays, and rebuilding it on the
        renamed copy would silently repeat the most expensive part of a
        serial-engine warm-up.
        """
        copy = CSRGraph(
            self.indptr, self.indices, name=name, storage=self.storage
        )
        if self._adj_lists is not None:
            object.__setattr__(copy, "_adj_lists", self._adj_lists)
        backing = self.backing_store
        if backing is not None:
            object.__setattr__(copy, "_backing", backing)
        return copy

    @property
    def backing_store(self):
        """The open compressed container behind this graph, if any.

        ``.scsr`` loads with ``mmap=True`` attach their
        :class:`~repro.store.CompressedCSR` here (via
        ``object.__setattr__`` — derived state, like the adjacency-list
        cache) so the traversal kernel can route partial expansions
        through per-block decoding and the multiprocess pool can ship
        the compressed image instead of the decoded arrays. ``None``
        for every other graph.
        """
        return getattr(self, "_backing", None)

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (useful in benchmark reports)."""
        return self.indptr.nbytes + self.indices.nbytes

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise AlgorithmError(
                f"vertex {v} out of range for graph with "
                f"{self.num_vertices} vertices"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )
