"""k-core decomposition — the core-periphery substrate of §3.

The paper's structural argument for its heuristics rests on
core-periphery structure: "high-degree vertices tend to be core
vertices in the core-periphery structure of the graph and are some of
the most 'centrally' located ... Conversely, vertices with a low degree
and, in particular, vertices with degree 1 tend to be on the
'periphery'". The k-core decomposition is the standard formalization:
the *core number* of a vertex is the largest ``k`` such that the vertex
survives in the maximal subgraph of minimum degree ``k``.

Implemented with the classic peeling algorithm in bucket form
(Batagelj–Zaveršnik), ``O(n + m)``: vertices are processed in
increasing current-degree order; removing a vertex decrements its
neighbours' effective degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["CoreDecomposition", "core_numbers", "k_core_mask", "degeneracy"]


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a k-core peeling pass.

    Attributes
    ----------
    core:
        ``core[v]`` is the core number of vertex ``v`` (0 for isolated
        vertices).
    peel_order:
        Vertices in the order the peeling removed them — an ordering by
        "peripherality": early = peripheral, late = deep core.
    """

    core: np.ndarray
    peel_order: np.ndarray

    @property
    def degeneracy(self) -> int:
        """The graph's degeneracy (maximum core number)."""
        return int(self.core.max()) if len(self.core) else 0


def core_numbers(graph: CSRGraph) -> CoreDecomposition:
    """Compute all core numbers with bucketed peeling."""
    n = graph.num_vertices
    if n == 0:
        return CoreDecomposition(
            core=np.zeros(0, dtype=np.int64),
            peel_order=np.zeros(0, dtype=np.int64),
        )
    degree = graph.degrees.astype(np.int64).copy()
    max_deg = int(degree.max()) if n else 0

    # Bucket sort vertices by degree (counting sort, the B-Z layout).
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(degree, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_start[1:])
    pos = np.empty(n, dtype=np.int64)  # position of each vertex in `vert`
    vert = np.empty(n, dtype=np.int64)  # vertices sorted by current degree
    fill = bin_start[:-1].copy()
    for v in range(n):
        d = degree[v]
        pos[v] = fill[d]
        vert[fill[d]] = v
        fill[d] += 1

    indptr, indices = graph.indptr, graph.indices
    core = degree.copy()
    bin_ptr = bin_start[:-1].copy()  # start index of each degree bucket
    for i in range(n):
        v = int(vert[i])
        dv = int(core[v])
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            dw = int(core[w])
            if dw > dv:
                # Move w one bucket down: swap with the first vertex of
                # its current bucket, then shrink the bucket.
                first_pos = bin_ptr[dw]
                first_vert = int(vert[first_pos])
                pw = int(pos[w])
                if first_vert != w:
                    vert[pw], vert[first_pos] = first_vert, w
                    pos[w], pos[first_vert] = first_pos, pw
                bin_ptr[dw] += 1
                core[w] = dw - 1
    return CoreDecomposition(core=core, peel_order=vert.copy())


def k_core_mask(graph: CSRGraph, k: int) -> np.ndarray:
    """Boolean mask of the vertices in the ``k``-core."""
    if k < 0:
        raise AlgorithmError("k must be non-negative")
    return core_numbers(graph).core >= k


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy (maximum core number)."""
    return core_numbers(graph).degeneracy
