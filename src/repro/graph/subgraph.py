"""Induced-subgraph extraction.

Used by the diameter drivers to restrict computation to one connected
component of a disconnected input, and by tests to cross-check results
on components against the whole-graph code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["Subgraph", "induced_subgraph", "component_subgraph"]


@dataclass(frozen=True)
class Subgraph:
    """An induced subgraph plus the vertex-id mappings to its parent.

    Attributes
    ----------
    graph:
        The extracted subgraph with vertices relabelled ``0..k-1``.
    to_parent:
        ``to_parent[i]`` is the parent-graph id of subgraph vertex ``i``.
    from_parent:
        Inverse mapping; ``-1`` for parent vertices outside the subgraph.
    """

    graph: CSRGraph
    to_parent: np.ndarray
    from_parent: np.ndarray


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray, name: str | None = None
) -> Subgraph:
    """Extract the subgraph induced by ``vertices``.

    ``vertices`` may be a boolean mask of length ``n`` or an array of
    vertex ids (duplicates are removed). Runs in ``O(n + m)`` vectorized
    work: the adjacency lists of the kept vertices are gathered, filtered
    through the membership mask, and relabelled in one pass.
    """
    n = graph.num_vertices
    vertices = np.asarray(vertices)
    if vertices.dtype == bool:
        if len(vertices) != n:
            raise AlgorithmError(
                f"boolean mask has length {len(vertices)}, expected {n}"
            )
        mask = vertices
    else:
        mask = np.zeros(n, dtype=bool)
        ids = vertices.astype(np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= n):
            raise AlgorithmError("subgraph vertex id out of range")
        mask[ids] = True

    to_parent = np.flatnonzero(mask)
    from_parent = np.full(n, -1, dtype=np.int64)
    from_parent[to_parent] = np.arange(len(to_parent), dtype=np.int64)

    # Gather the kept rows and filter their entries through the mask.
    row_lengths = (graph.indptr[1:] - graph.indptr[:-1])[to_parent]
    row_of = np.repeat(to_parent, row_lengths)
    # Flat positions of all entries belonging to kept rows.
    starts = graph.indptr[to_parent]
    prefix = np.concatenate(([0], np.cumsum(row_lengths)[:-1]))
    flat = (
        np.arange(int(row_lengths.sum()), dtype=np.int64)
        + np.repeat(starts - prefix, row_lengths)
    )
    cols = graph.indices[flat]
    keep = mask[cols]
    new_src = from_parent[row_of[keep]]
    new_dst = from_parent[cols[keep]]

    counts = np.bincount(new_src, minlength=len(to_parent))
    indptr = np.zeros(len(to_parent) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # Rows were gathered in sorted order, and within each row the parent's
    # neighbour order is preserved; relabelling is monotone on the kept
    # set, so each new row is already sorted.
    sub = CSRGraph(
        indptr,
        new_dst.astype(graph.indices.dtype),
        name=name or f"{graph.name}[{len(to_parent)}]",
    )
    return Subgraph(graph=sub, to_parent=to_parent, from_parent=from_parent)


def component_subgraph(graph: CSRGraph, component_vertices: np.ndarray) -> CSRGraph:
    """Shorthand for the graph part of :func:`induced_subgraph`."""
    return induced_subgraph(graph, component_vertices).graph
