"""Degree-based utilities shared by the algorithms and the harness.

F-Diam leans on degree structure in several places: the max-degree
vertex seeds the 2-sweep and Winnow, degree-1 vertices seed Chain
Processing, and degree-0 vertices are reported as their own removal
category (paper Table 4). The harness additionally reports average and
maximum degree for the input table (paper Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "degree_histogram",
    "degree_one_vertices",
    "degree_two_vertices",
    "vertices_with_degree",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Aggregate degree statistics of a graph (paper Table 1 columns)."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    max_degree_vertex: int
    num_isolated: int

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the harness table renderers."""
        return {
            "vertices": self.num_vertices,
            "edges": 2 * self.num_edges,  # paper counts both directions
            "avg degree": round(self.average_degree, 1),
            "max degree": self.max_degree,
        }


def degree_summary(graph: CSRGraph) -> DegreeSummary:
    """Compute the Table-1-style degree summary of ``graph``."""
    degs = graph.degrees
    n = graph.num_vertices
    return DegreeSummary(
        num_vertices=n,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_degree=int(degs.max()) if n else 0,
        max_degree_vertex=int(np.argmax(degs)) if n else -1,
        num_isolated=int(np.count_nonzero(degs == 0)),
    )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram ``h`` where ``h[d]`` counts vertices of degree ``d``."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.degrees)


def vertices_with_degree(graph: CSRGraph, degree: int) -> np.ndarray:
    """Sorted ids of all vertices with exactly the given degree."""
    return np.flatnonzero(graph.degrees == degree)


def degree_one_vertices(graph: CSRGraph) -> np.ndarray:
    """Degree-1 vertices — the starting points of Chain Processing."""
    return vertices_with_degree(graph, 1)


def degree_two_vertices(graph: CSRGraph) -> np.ndarray:
    """Degree-2 vertices — the interior links of chains."""
    return vertices_with_degree(graph, 2)
