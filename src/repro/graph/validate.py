"""Structural validation of CSR graphs.

The builders in :mod:`repro.graph.build` always emit canonical graphs,
but graphs can also arrive from disk (:mod:`repro.graph.io`) or be
constructed directly from arrays by callers. :func:`validate_csr` checks
every invariant the algorithms rely on and raises
:class:`~repro.errors.GraphValidationError` with a precise description
of the first violation found.

Invariants checked
------------------
1. ``indptr`` starts at 0, ends at ``len(indices)``, and is monotone.
2. All column indices are in ``[0, n)``.
3. No self-loops.
4. Each adjacency list is strictly increasing (sorted + deduplicated).
5. The adjacency structure is symmetric (``u → v`` implies ``v → u``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = ["validate_csr", "is_symmetric"]


def validate_csr(graph: CSRGraph) -> None:
    """Raise :class:`GraphValidationError` unless all invariants hold."""
    indptr, indices = graph.indptr, graph.indices
    n = graph.num_vertices

    if len(indptr) == 0 or indptr[0] != 0:
        raise GraphValidationError("indptr must start with 0")
    if indptr[-1] != len(indices):
        raise GraphValidationError(
            f"indptr[-1]={int(indptr[-1])} != len(indices)={len(indices)}"
        )
    if np.any(np.diff(indptr) < 0):
        v = int(np.flatnonzero(np.diff(indptr) < 0)[0])
        raise GraphValidationError(f"indptr decreases at vertex {v}")

    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            bad = int(indices[(indices < 0) | (indices >= n)][0])
            raise GraphValidationError(f"column index {bad} out of range [0, {n})")

    # Per-row sortedness, dedup, and self-loop check, vectorized: within a
    # row consecutive entries must strictly increase; at row boundaries the
    # comparison is skipped.
    if len(indices) > 1:
        increases = indices[1:] > indices[:-1]
        row_starts = np.zeros(len(indices), dtype=bool)
        # First entry of each later row; trailing isolated vertices have
        # indptr values equal to len(indices), which index no entry.
        starts = indptr[1:-1]
        row_starts[starts[starts < len(indices)]] = True
        bad = ~(increases | row_starts[1:])
        if np.any(bad):
            pos = int(np.flatnonzero(bad)[0]) + 1
            v = int(np.searchsorted(indptr, pos, side="right") - 1)
            raise GraphValidationError(
                f"adjacency list of vertex {v} is not strictly increasing "
                f"(duplicate or unsorted neighbour at offset {pos})"
            )

    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    if np.any(row_of == indices):
        v = int(row_of[row_of == indices][0])
        raise GraphValidationError(f"self-loop at vertex {v}")

    if not is_symmetric(graph):
        raise GraphValidationError("adjacency structure is not symmetric")


def is_symmetric(graph: CSRGraph) -> bool:
    """Whether every arc ``u → v`` has a reverse arc ``v → u``.

    Implemented by encoding arcs as ``u * n + v`` scalars and comparing
    the sorted forward and reverse multisets — ``O(m log m)`` with no
    Python-level loops.
    """
    n = graph.num_vertices
    if n == 0 or len(graph.indices) == 0:
        return True
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    col = graph.indices.astype(np.int64)
    forward = row_of * n + col
    backward = col * n + row_of
    forward.sort()
    backward.sort()
    return bool(np.array_equal(forward, backward))
