"""Builders that construct :class:`~repro.graph.csr.CSRGraph` instances.

Every builder performs the same normalization pipeline so that all
algorithms can rely on a canonical adjacency structure:

1. drop self-loops,
2. symmetrize (add the reverse of every arc),
3. sort each adjacency list,
4. deduplicate parallel edges.

The pipeline is fully vectorized: edges are handled as two parallel
NumPy arrays and the CSR arrays are produced with ``bincount`` /
``lexsort``, never with per-edge Python loops, so building the largest
benchmark analogs (hundreds of thousands of edges) takes milliseconds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = [
    "from_edge_arrays",
    "from_edge_chunks",
    "from_edges",
    "from_adjacency",
    "from_scipy_sparse",
    "from_networkx",
    "empty_graph",
]


def _index_dtype(num_vertices: int) -> np.dtype:
    """Smallest integer dtype that can index ``num_vertices`` vertices."""
    return np.dtype(np.int32) if num_vertices <= np.iinfo(np.int32).max else np.dtype(np.int64)


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from parallel source/destination id arrays.

    This is the primitive every other builder funnels into.

    Parameters
    ----------
    src, dst:
        Integer arrays of equal length; each position describes one
        (possibly directed, possibly duplicated) input edge. Self-loops
        are dropped, and the result is symmetrized and deduplicated.
    num_vertices:
        Total vertex count. Defaults to ``max(id) + 1``; pass explicitly
        to keep trailing isolated vertices (several paper inputs, e.g.
        the Kronecker analog, have them).
    name:
        Label attached to the resulting graph.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphValidationError(
            f"edge arrays have mismatched lengths {len(src)} != {len(dst)}"
        )
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise GraphValidationError("negative vertex id in edge list")

    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    elif len(src) and max(src.max(), dst.max()) >= num_vertices:
        raise GraphValidationError(
            f"vertex id {int(max(src.max(), dst.max()))} exceeds "
            f"num_vertices={num_vertices}"
        )

    # Drop self-loops before symmetrizing.
    keep = src != dst
    src, dst = src[keep], dst[keep]

    # Symmetrize: stack both directions of every arc.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])

    if len(all_src):
        # Sort by (src, dst) and deduplicate identical arcs.
        order = np.lexsort((all_dst, all_src))
        all_src, all_dst = all_src[order], all_dst[order]
        uniq = np.empty(len(all_src), dtype=bool)
        uniq[0] = True
        np.not_equal(all_src[1:], all_src[:-1], out=uniq[1:])
        uniq[1:] |= all_dst[1:] != all_dst[:-1]
        all_src, all_dst = all_src[uniq], all_dst[uniq]

    counts = np.bincount(all_src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = all_dst.astype(_index_dtype(num_vertices))
    return CSRGraph(indptr, indices, name=name)


def _normalize_chunk(
    src, dst, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validate one COO chunk and drop its self-loops."""
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphValidationError(
            f"edge arrays have mismatched lengths {len(src)} != {len(dst)}"
        )
    if len(src):
        if src.min() < 0 or dst.min() < 0:
            raise GraphValidationError("negative vertex id in edge list")
        if max(src.max(), dst.max()) >= num_vertices:
            raise GraphValidationError(
                f"vertex id {int(max(src.max(), dst.max()))} exceeds "
                f"num_vertices={num_vertices}"
            )
    keep = src != dst
    return src[keep], dst[keep]


def from_edge_chunks(
    chunk_factory: Callable[[], Iterable[tuple[np.ndarray, np.ndarray]]],
    num_vertices: int,
    name: str = "graph",
    *,
    chunk_arcs: int = 1 << 22,
) -> CSRGraph:
    """Build a graph from a re-iterable stream of COO edge chunks.

    The out-of-core twin of :func:`from_edge_arrays` for the
    10^7-edge generation tier: the full COO edge list is never
    materialized. ``chunk_factory`` is a zero-argument callable
    returning a fresh iterable of ``(src, dst)`` array pairs — it is
    consumed twice (a degree-counting pass, then a placement pass), so
    a generator function fits and a one-shot generator object does
    not. Peak transient memory is ``O(largest chunk)`` on top of the
    output CSR arrays themselves.

    The normalization pipeline is identical to
    :func:`from_edge_arrays` — drop self-loops, symmetrize, sort each
    adjacency list, deduplicate — and the result is *bit-identical* to
    feeding the concatenated chunks through :func:`from_edge_arrays`
    (the equivalence is regression-tested): pass 1 bin-counts
    duplicated degrees; pass 2 places both directions of every arc at
    per-source cursor positions (stable, so each list's pre-sort order
    matches the concatenated order, though sorting erases it anyway);
    a final in-place pass sorts and deduplicates vertex slabs of at
    most ``chunk_arcs`` arcs and left-compacts the survivors.

    Parameters
    ----------
    chunk_factory:
        Callable returning an iterable of ``(src, dst)`` pairs.
    num_vertices:
        Total vertex count — required (a streaming builder cannot
        know ``max(id) + 1`` before allocating).
    name:
        Label attached to the resulting graph.
    chunk_arcs:
        Arc cap per finalization slab (degree-sorting scratch).
    """
    n = int(num_vertices)
    if n < 0:
        raise GraphValidationError("num_vertices must be >= 0")
    if chunk_arcs < 1:
        raise GraphValidationError("chunk_arcs must be >= 1")

    # Pass 1: duplicated (pre-dedup, symmetrized) degree of every vertex.
    counts = np.zeros(n, dtype=np.int64)
    for src, dst in chunk_factory():
        src, dst = _normalize_chunk(src, dst, n)
        counts += np.bincount(src, minlength=n)
        counts += np.bincount(dst, minlength=n)
    indptr_dup = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr_dup[1:])

    # Pass 2: place both directions of every arc. Within one chunk a
    # stable sort groups arcs by source; the run rank of each arc plus
    # the per-source cursor carried across chunks gives its slot.
    adj = np.empty(int(indptr_dup[-1]), dtype=_index_dtype(n))
    cursor = np.zeros(n, dtype=np.int64)
    for src, dst in chunk_factory():
        src, dst = _normalize_chunk(src, dst, n)
        csrc = np.concatenate([src, dst])
        cdst = np.concatenate([dst, src])
        if not len(csrc):
            continue
        order = np.argsort(csrc, kind="stable")
        s, d = csrc[order], cdst[order]
        first = np.empty(len(s), dtype=bool)
        first[0] = True
        np.not_equal(s[1:], s[:-1], out=first[1:])
        run_starts = np.flatnonzero(first)
        run_lengths = np.diff(np.append(run_starts, len(s)))
        ranks = np.arange(len(s), dtype=np.int64) - np.repeat(
            run_starts, run_lengths
        )
        adj[indptr_dup[s] + cursor[s] + ranks] = d
        cursor += np.bincount(csrc, minlength=n)

    # Pass 3: sort + dedup each adjacency list, one vertex slab at a
    # time, compacting survivors leftward in place (the write cursor
    # never overtakes the slab being read, and the sorted slab copies
    # out of ``adj`` before any write).
    final_counts = np.zeros(n, dtype=np.int64)
    write = 0
    v0 = 0
    while v0 < n:
        v1 = int(
            np.searchsorted(indptr_dup, indptr_dup[v0] + chunk_arcs, side="right")
        ) - 1
        v1 = min(max(v1, v0 + 1), n)
        e0, e1 = int(indptr_dup[v0]), int(indptr_dup[v1])
        degs = np.diff(indptr_dup[v0 : v1 + 1])
        srcs = np.repeat(np.arange(v0, v1, dtype=np.int64), degs)
        order = np.lexsort((adj[e0:e1], srcs))
        s, d = srcs[order], adj[e0:e1][order]
        if len(s):
            uniq = np.empty(len(s), dtype=bool)
            uniq[0] = True
            np.not_equal(s[1:], s[:-1], out=uniq[1:])
            uniq[1:] |= d[1:] != d[:-1]
            s, d = s[uniq], d[uniq]
        adj[write : write + len(d)] = d
        final_counts[v0:v1] = np.bincount(s - v0, minlength=v1 - v0)
        write += len(d)
        v0 = v1

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(final_counts, out=indptr[1:])
    return CSRGraph(indptr, adj[:write].copy(), name=name)


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Convenience wrapper around :func:`from_edge_arrays` for tests and
    examples; for bulk construction prefer passing arrays directly.
    """
    pairs = np.array(list(edges), dtype=np.int64).reshape(-1, 2)
    return from_edge_arrays(pairs[:, 0], pairs[:, 1], num_vertices, name)


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from an adjacency mapping or list-of-lists.

    Accepts either ``{vertex: [neighbours...]}`` or a dense
    ``[[neighbours of 0], [neighbours of 1], ...]`` structure. The input
    need not be symmetric; symmetrization is applied as usual.
    """
    if isinstance(adjacency, Mapping):
        items = adjacency.items()
    else:
        items = enumerate(adjacency)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    max_key = -1
    for u, nbrs in items:
        u = int(u)
        max_key = max(max_key, u)
        arr = np.asarray(list(nbrs), dtype=np.int64)
        if len(arr):
            srcs.append(np.full(len(arr), u, dtype=np.int64))
            dsts.append(arr)
    if num_vertices is None:
        num_vertices = max_key + 1
        for d in dsts:
            if len(d):
                num_vertices = max(num_vertices, int(d.max()) + 1)
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    return from_edge_arrays(src, dst, num_vertices, name)


def from_scipy_sparse(matrix, name: str = "graph") -> CSRGraph:
    """Build a graph from any SciPy sparse matrix.

    Nonzero entries are treated as edges; values and explicit zeros are
    ignored. The matrix does not have to be symmetric or square-free;
    normalization handles both.
    """
    from scipy import sparse

    coo = sparse.coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise GraphValidationError(
            f"adjacency matrix must be square, got shape {coo.shape}"
        )
    return from_edge_arrays(
        coo.row.astype(np.int64), coo.col.astype(np.int64), coo.shape[0], name
    )


def from_networkx(nx_graph, name: str | None = None) -> CSRGraph:
    """Build a graph from a :mod:`networkx` graph.

    Node labels must be hashable; they are relabelled to ``0..n-1`` in
    iteration order. Directed graphs are symmetrized. Mainly used by the
    test suite, where networkx serves as the correctness oracle.
    """
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = np.array(
        [(index[u], index[v]) for u, v in nx_graph.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edge_arrays(
        edges[:, 0],
        edges[:, 1],
        num_vertices=len(nodes),
        name=name or getattr(nx_graph, "name", "") or "networkx-graph",
    )


def empty_graph(num_vertices: int = 0, name: str = "empty") -> CSRGraph:
    """A graph with ``num_vertices`` isolated vertices and no edges."""
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=np.int64),
        np.empty(0, dtype=np.int32),
        name=name,
    )
