"""Builders that construct :class:`~repro.graph.csr.CSRGraph` instances.

Every builder performs the same normalization pipeline so that all
algorithms can rely on a canonical adjacency structure:

1. drop self-loops,
2. symmetrize (add the reverse of every arc),
3. sort each adjacency list,
4. deduplicate parallel edges.

The pipeline is fully vectorized: edges are handled as two parallel
NumPy arrays and the CSR arrays are produced with ``bincount`` /
``lexsort``, never with per-edge Python loops, so building the largest
benchmark analogs (hundreds of thousands of edges) takes milliseconds.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = [
    "from_edge_arrays",
    "from_edges",
    "from_adjacency",
    "from_scipy_sparse",
    "from_networkx",
    "empty_graph",
]


def _index_dtype(num_vertices: int) -> np.dtype:
    """Smallest integer dtype that can index ``num_vertices`` vertices."""
    return np.dtype(np.int32) if num_vertices <= np.iinfo(np.int32).max else np.dtype(np.int64)


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from parallel source/destination id arrays.

    This is the primitive every other builder funnels into.

    Parameters
    ----------
    src, dst:
        Integer arrays of equal length; each position describes one
        (possibly directed, possibly duplicated) input edge. Self-loops
        are dropped, and the result is symmetrized and deduplicated.
    num_vertices:
        Total vertex count. Defaults to ``max(id) + 1``; pass explicitly
        to keep trailing isolated vertices (several paper inputs, e.g.
        the Kronecker analog, have them).
    name:
        Label attached to the resulting graph.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphValidationError(
            f"edge arrays have mismatched lengths {len(src)} != {len(dst)}"
        )
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise GraphValidationError("negative vertex id in edge list")

    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    elif len(src) and max(src.max(), dst.max()) >= num_vertices:
        raise GraphValidationError(
            f"vertex id {int(max(src.max(), dst.max()))} exceeds "
            f"num_vertices={num_vertices}"
        )

    # Drop self-loops before symmetrizing.
    keep = src != dst
    src, dst = src[keep], dst[keep]

    # Symmetrize: stack both directions of every arc.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])

    if len(all_src):
        # Sort by (src, dst) and deduplicate identical arcs.
        order = np.lexsort((all_dst, all_src))
        all_src, all_dst = all_src[order], all_dst[order]
        uniq = np.empty(len(all_src), dtype=bool)
        uniq[0] = True
        np.not_equal(all_src[1:], all_src[:-1], out=uniq[1:])
        uniq[1:] |= all_dst[1:] != all_dst[:-1]
        all_src, all_dst = all_src[uniq], all_dst[uniq]

    counts = np.bincount(all_src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = all_dst.astype(_index_dtype(num_vertices))
    return CSRGraph(indptr, indices, name=name)


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Convenience wrapper around :func:`from_edge_arrays` for tests and
    examples; for bulk construction prefer passing arrays directly.
    """
    pairs = np.array(list(edges), dtype=np.int64).reshape(-1, 2)
    return from_edge_arrays(pairs[:, 0], pairs[:, 1], num_vertices, name)


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from an adjacency mapping or list-of-lists.

    Accepts either ``{vertex: [neighbours...]}`` or a dense
    ``[[neighbours of 0], [neighbours of 1], ...]`` structure. The input
    need not be symmetric; symmetrization is applied as usual.
    """
    if isinstance(adjacency, Mapping):
        items = adjacency.items()
    else:
        items = enumerate(adjacency)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    max_key = -1
    for u, nbrs in items:
        u = int(u)
        max_key = max(max_key, u)
        arr = np.asarray(list(nbrs), dtype=np.int64)
        if len(arr):
            srcs.append(np.full(len(arr), u, dtype=np.int64))
            dsts.append(arr)
    if num_vertices is None:
        num_vertices = max_key + 1
        for d in dsts:
            if len(d):
                num_vertices = max(num_vertices, int(d.max()) + 1)
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    return from_edge_arrays(src, dst, num_vertices, name)


def from_scipy_sparse(matrix, name: str = "graph") -> CSRGraph:
    """Build a graph from any SciPy sparse matrix.

    Nonzero entries are treated as edges; values and explicit zeros are
    ignored. The matrix does not have to be symmetric or square-free;
    normalization handles both.
    """
    from scipy import sparse

    coo = sparse.coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise GraphValidationError(
            f"adjacency matrix must be square, got shape {coo.shape}"
        )
    return from_edge_arrays(
        coo.row.astype(np.int64), coo.col.astype(np.int64), coo.shape[0], name
    )


def from_networkx(nx_graph, name: str | None = None) -> CSRGraph:
    """Build a graph from a :mod:`networkx` graph.

    Node labels must be hashable; they are relabelled to ``0..n-1`` in
    iteration order. Directed graphs are symmetrized. Mainly used by the
    test suite, where networkx serves as the correctness oracle.
    """
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = np.array(
        [(index[u], index[v]) for u, v in nx_graph.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edge_arrays(
        edges[:, 0],
        edges[:, 1],
        num_vertices=len(nodes),
        name=name or getattr(nx_graph, "name", "") or "networkx-graph",
    )


def empty_graph(num_vertices: int = 0, name: str = "empty") -> CSRGraph:
    """A graph with ``num_vertices`` isolated vertices and no edges."""
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=np.int64),
        np.empty(0, dtype=np.int32),
        name=name,
    )
