"""The prep pipeline driver: peel → collapse → split → reorder → plan.

:func:`fdiam_prepped` is what :func:`repro.core.fdiam.fdiam` routes
through when ``config.prep`` enables any stage. The contract is exact
equality with the plain path:

* ``diameter`` — identical, by the peel lemma (DESIGN.md §9.2), the
  mirror eccentricity equality (§9.3), and the fact that the largest
  eccentricity over a disconnected graph is the max over its
  components' diameters.
* ``connected`` / ``infinite`` — identical: peeling and collapsing
  never change the number of connected components (a pendant tree
  stays attached through its anchor's spine; a collapsed mirror class
  keeps a representative), so components of the original = components
  of the reduced graph + whole tree components the peel absorbed.

Per component the planner may reorder vertices (locality only;
diameters are permutation-invariant) and pick scalar vs bit-parallel
lanes; components too small to beat the running bound are skipped
outright (a component of ``s`` vertices has diameter at most
``s - 1``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import FDiamConfig
from repro.core.fdiam import DiameterResult, fdiam_with_state
from repro.core.stats import FDiamStats, PrepStats, Reason
from repro.errors import AlgorithmError
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import induced_subgraph
from repro.parallel.costmodel import LevelSynchronousCostModel
from repro.prep.mirror import MirrorResult, collapse_mirrors, mirror_potential
from repro.prep.peel import PeelResult, peel_pendant_trees
from repro.prep.plan import PrepSpec, plan_component
from repro.prep.reorder import ORDER_STRATEGIES, apply_order, edge_span

__all__ = ["Prepared", "preprocess", "fdiam_prepped", "gate_spec"]


@dataclass(frozen=True)
class Prepared:
    """A reduced graph plus everything needed to interpret its diameter.

    ``diam(original component) = max(diam(reduced component),
    correction)`` per surviving component; ``removed_components`` whole
    components (trees the peel absorbed) have their diameters folded
    into ``correction`` already.
    """

    graph: CSRGraph
    correction: int
    removed_components: int
    peel: PeelResult | None
    mirror: MirrorResult | None
    stats: PrepStats


def preprocess(graph: CSRGraph, spec: PrepSpec) -> Prepared:
    """Run the enabled reduction stages (peel, then collapse)."""
    stats = PrepStats(stages=spec.tokens)
    work = graph
    correction = 0
    removed_components = 0
    peel_result = None
    mirror_result = None
    if spec.peel and work.num_vertices:
        peel_result = peel_pendant_trees(work)
        work = peel_result.graph
        correction = max(correction, peel_result.correction)
        removed_components += peel_result.tree_components
        stats.peel_vertices_removed = peel_result.vertices_removed
        stats.peel_edges_removed = peel_result.edges_removed
        stats.peel_spine_vertices = peel_result.spine_vertices
        stats.peel_anchors = peel_result.anchors
        stats.peel_tree_components = peel_result.tree_components
        stats.peel_correction = peel_result.correction
    if spec.collapse and work.num_vertices:
        mirror_result = collapse_mirrors(work)
        work = mirror_result.graph
        correction = max(correction, mirror_result.correction)
        stats.mirror_vertices_removed = mirror_result.vertices_removed
        stats.mirror_edges_removed = mirror_result.edges_removed
        stats.mirror_open_groups = mirror_result.open_groups
        stats.mirror_closed_groups = mirror_result.closed_groups
        stats.mirror_max_multiplicity = mirror_result.max_multiplicity
        stats.mirror_correction = mirror_result.correction
    return Prepared(
        graph=work,
        correction=correction,
        removed_components=removed_components,
        peel=peel_result,
        mirror=mirror_result,
        stats=stats,
    )


def gate_spec(
    graph: CSRGraph,
    spec: PrepSpec,
    model: LevelSynchronousCostModel | None = None,
) -> tuple[PrepSpec, tuple[str, ...]]:
    """Drop stages whose modeled cost exceeds their plausible payoff.

    Only consulted when the ``plan`` stage is on (``--prep auto`` or an
    explicit spec including ``plan``): each structural stage's O(n + m)
    pass costs real wall-clock, and on graphs where the stage can touch
    only a sliver of the vertices that cost is pure regression versus
    the plain path. Returns the surviving spec plus the tokens of the
    vetoed stages (recorded in :attr:`PrepStats.stages_gated`). Specs
    without ``plan`` are returned untouched — an explicit stage list is
    a command, not a suggestion.
    """
    if not spec.plan:
        return spec, ()
    model = model or LevelSynchronousCostModel()
    gates = model.reduction_gates(
        num_vertices=graph.num_vertices,
        num_directed_edges=graph.num_directed_edges,
        deg1_count=int(np.count_nonzero(graph.degrees == 1)),
        graph_bytes=graph.memory_bytes(),
        mirror_candidates=lambda: mirror_potential(graph),
    )
    gated: list[str] = []
    if spec.peel and not gates.peel:
        gated.append("peel")
        spec = replace(spec, peel=False)
    if spec.collapse and not gates.collapse:
        gated.append("collapse")
        spec = replace(spec, collapse=False)
    if spec.reorder != "off" and not gates.reorder:
        gated.append("reorder")
        spec = replace(spec, reorder="off")
    return spec, tuple(gated)


def fdiam_prepped(
    graph: CSRGraph,
    config: FDiamConfig,
    *,
    deadline: float | None = None,
) -> DiameterResult:
    """Exact diameter via the reduction pipeline (see module docstring)."""
    if graph.num_vertices == 0:
        raise AlgorithmError("fdiam() requires a graph with at least one vertex")
    requested = PrepSpec.parse(config.prep)
    base_config = config.ablate(prep="off")
    if not requested.enabled:
        result, _ = fdiam_with_state(graph, base_config, deadline=deadline)
        return result

    model = LevelSynchronousCostModel()
    gate_started = time.perf_counter()
    spec, stages_gated = gate_spec(graph, requested, model)
    gate_elapsed = time.perf_counter() - gate_started

    if spec.plan and not (spec.peel or spec.collapse or spec.reorder != "off"):
        # Every structural stage was vetoed: skip the reductions and the
        # component split entirely (plain fdiam is exact on disconnected
        # graphs too) and keep only the planner's engine verdict, so
        # e.g. low-diameter graphs retain the chain-tip lane batching
        # without paying a single O(n + m) reduction pass.
        prep_stats = PrepStats(
            stages=requested.tokens, stages_gated=stages_gated
        )
        with_timer = time.perf_counter()
        plan = plan_component(
            graph,
            spec=spec,
            requested_lanes=base_config.bfs_batch_lanes,
            model=model,
        )
        prep_stats.components_total = 1
        prep_stats.components_solved = 1
        if plan.batch_lanes > 0:
            prep_stats.lane_components += 1
        else:
            prep_stats.scalar_components += 1
        if plan.chain_tip_batch:
            prep_stats.tip_batch_components += 1
        plan_elapsed = time.perf_counter() - with_timer
        result, _ = fdiam_with_state(
            graph,
            base_config.ablate(
                bfs_batch_lanes=plan.batch_lanes,
                chain_tip_batch=plan.chain_tip_batch,
            ),
            deadline=deadline,
        )
        result.stats.prep = prep_stats
        result.stats.times.other += gate_elapsed + plan_elapsed
        return result

    total = FDiamStats(
        num_vertices=graph.num_vertices, num_edges=graph.num_edges
    )
    started = time.perf_counter()
    prepared = preprocess(graph, spec)
    prep_stats = prepared.stats
    prep_stats.stages = requested.tokens
    prep_stats.stages_gated = stages_gated
    total.prep = prep_stats
    total.removed_by[Reason.PREP] += prep_stats.vertices_removed
    total.times.other += gate_elapsed + time.perf_counter() - started

    work = prepared.graph
    best = prepared.correction
    num_components = prepared.removed_components
    have_initial_bound = False

    if work.num_vertices:
        components = connected_components(work)
        num_components += components.num_components
        prep_stats.components_total = components.num_components
        # Largest first: its diameter usually dominates, so later
        # (smaller) components can be skipped against the running bound.
        order = np.argsort(-components.sizes, kind="stable")
        for comp in order.tolist():
            size = int(components.sizes[comp])
            if size - 1 <= best:
                prep_stats.components_skipped += 1
                total.removed_by[Reason.PREP] += size
                continue
            with total.timing("other"):
                if components.num_components == 1:
                    comp_graph = work
                else:
                    comp_graph = induced_subgraph(
                        work, components.vertices_of(comp)
                    ).graph
                plan = plan_component(
                    comp_graph,
                    spec=spec,
                    requested_lanes=base_config.bfs_batch_lanes,
                    model=model,
                )
                if plan.reorder in ORDER_STRATEGIES:
                    prep_stats.edge_span_before += edge_span(comp_graph)
                    reordering = apply_order(
                        comp_graph, ORDER_STRATEGIES[plan.reorder](comp_graph)
                    )
                    comp_graph = reordering.graph
                    prep_stats.edge_span_after += edge_span(comp_graph)
                    prep_stats.reorder_strategies[plan.reorder] = (
                        prep_stats.reorder_strategies.get(plan.reorder, 0) + 1
                    )
                if plan.batch_lanes > 0:
                    prep_stats.lane_components += 1
                else:
                    prep_stats.scalar_components += 1
                if plan.chain_tip_batch:
                    prep_stats.tip_batch_components += 1
            sub_result, _ = fdiam_with_state(
                comp_graph,
                base_config.ablate(
                    bfs_batch_lanes=plan.batch_lanes,
                    chain_tip_batch=plan.chain_tip_batch,
                ),
                deadline=deadline,
            )
            prep_stats.components_solved += 1
            if not have_initial_bound:
                total.initial_bound = sub_result.stats.initial_bound
                have_initial_bound = True
            best = max(best, sub_result.diameter)
            total.merge_from(sub_result.stats)

    connected = num_components == 1
    return DiameterResult(
        diameter=best,
        connected=connected,
        infinite=not connected,
        stats=total,
    )
