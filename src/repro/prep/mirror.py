"""Mirror-vertex collapsing — stage 2 of the prep pipeline.

Two vertices are *open mirrors* (false twins) when they have identical
open neighborhoods ``N(u) = N(v)`` — they are then non-adjacent and,
having a common neighbor, sit at distance exactly 2. They are *closed
mirrors* (true twins) when ``N[u] = N[v]`` — then they are adjacent at
distance 1. Either way the twins are interchangeable: for every other
vertex ``w``, ``d(u, w) = d(v, w)``, because any shortest path from
``u`` can be rerouted through ``v``'s identical neighborhood. Deleting
all but one representative of each mirror class therefore preserves
every distance among survivors, and the only distances lost are the
intra-class ones — exactly 2 (open) or 1 (closed). Hence (DESIGN.md
§9.3):

``diam(G) = max(diam(G'), 2 if any open class collapsed else 0,
1 if any closed class collapsed else 0)``

whenever the reduced graph ``G'`` is non-trivial. Kronecker/R-MAT
generators produce many such duplicate neighborhoods (low-degree
vertices attached to the same hubs), which is what makes this stage pay
off on the paper's synthetic families.

Detection is one exact pass: candidates are pre-bucketed by vectorized
``(degree, neighbor-sum)`` signatures (``(degree + 1, neighbor-sum +
id)`` for closed mirrors), then confirmed byte-exactly on the sorted
adjacency rows, so hash collisions cannot produce a wrong collapse.
Open classes are collapsed first; closed detection only considers
vertices not already in an open class of size >= 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.subgraph import induced_subgraph

__all__ = ["MirrorResult", "collapse_mirrors", "mirror_potential"]


@dataclass(frozen=True)
class MirrorResult:
    """Outcome of one mirror-collapsing pass.

    ``multiplicity[i]`` is how many original vertices the surviving
    vertex ``i`` stands for (1 when it was never part of a mirror
    class); ``to_parent[i]`` is its original id. ``correction`` is the
    intra-class distance floor described in the module docstring.
    """

    graph: CSRGraph
    to_parent: np.ndarray
    multiplicity: np.ndarray
    correction: int
    open_groups: int
    closed_groups: int
    max_multiplicity: int
    vertices_removed: int
    edges_removed: int

    @property
    def changed(self) -> bool:
        """Whether any mirror class was collapsed."""
        return self.vertices_removed > 0


def _duplicate_signature_mask(
    primary: np.ndarray, secondary: np.ndarray
) -> np.ndarray:
    """Mask of entries whose ``(primary, secondary)`` pair is not unique.

    Cheap vectorized pre-filter: only vertices sharing both signature
    components can possibly be mirrors, so the exact byte-level
    comparison below runs on a small candidate set.
    """
    order = np.lexsort((secondary, primary))
    a, b = primary[order], secondary[order]
    same_prev = np.zeros(len(a), dtype=bool)
    if len(a) > 1:
        same_prev[1:] = (a[1:] == a[:-1]) & (b[1:] == b[:-1])
    dup_sorted = same_prev.copy()
    dup_sorted[:-1] |= same_prev[1:]
    dup = np.zeros(len(a), dtype=bool)
    dup[order] = dup_sorted
    return dup


def mirror_potential(graph: CSRGraph) -> int:
    """Upper bound on the vertices :func:`collapse_mirrors` could remove.

    Counts the positive-degree vertices whose ``(degree, neighbour-sum)``
    signature is shared with at least one other vertex — the same cheap
    O(n + m) pre-filter the collapse itself uses, without the exact
    adjacency comparison. Every true mirror shares its signature, so
    this never undercounts; the cost-model payoff gate uses it to skip
    the full collapse pass on graphs where even the candidate set is
    too small to pay for it.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    degrees = graph.degrees.astype(np.int64)
    nonzero = degrees > 0
    neighbor_sums = np.zeros(n, dtype=np.int64)
    if nonzero.any():
        neighbor_sums[nonzero] = np.add.reduceat(
            graph.indices.astype(np.int64), graph.indptr[:-1][nonzero]
        )
    dup = _duplicate_signature_mask(degrees, neighbor_sums) & nonzero
    return int(np.count_nonzero(dup))


def collapse_mirrors(graph: CSRGraph, name: str | None = None) -> MirrorResult:
    """Collapse every open/closed mirror class to its smallest-id member."""
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees.astype(np.int64)
    nonzero = degrees > 0
    neighbor_sums = np.zeros(n, dtype=np.int64)
    if nonzero.any():
        # reduceat over the non-empty rows only: each start then reduces
        # exactly one adjacency row (empty rows would alias the next).
        neighbor_sums[nonzero] = np.add.reduceat(
            indices.astype(np.int64), indptr[:-1][nonzero]
        )

    keep = np.ones(n, dtype=bool)
    multiplicity = np.ones(n, dtype=np.int64)
    in_open = np.zeros(n, dtype=bool)
    open_groups = closed_groups = 0
    open_removed = closed_removed = 0

    # Open mirrors: N(u) == N(v). Exact key = the adjacency row bytes
    # (row length is implied by the byte length, so degree is encoded).
    open_candidates = np.flatnonzero(
        nonzero & _duplicate_signature_mask(degrees, neighbor_sums)
    )
    groups: dict[bytes, list[int]] = {}
    for v in open_candidates.tolist():
        key = indices[indptr[v]:indptr[v + 1]].tobytes()
        groups.setdefault(key, []).append(v)
    for members in groups.values():
        if len(members) < 2:
            continue
        open_groups += 1
        in_open[members] = True
        keep[members[1:]] = False  # members are in increasing-id order
        multiplicity[members[0]] = len(members)
        open_removed += len(members) - 1

    # Closed mirrors: N[u] == N[v]. Exact key = the row with the vertex
    # itself inserted in sorted position. Open-class members are
    # excluded — they were already collapsed.
    ids = np.arange(n, dtype=np.int64)
    closed_candidates = np.flatnonzero(
        nonzero
        & ~in_open
        & _duplicate_signature_mask(degrees + 1, neighbor_sums + ids)
    )
    closed: dict[bytes, list[int]] = {}
    index_type = indices.dtype.type
    for v in closed_candidates.tolist():
        row = indices[indptr[v]:indptr[v + 1]]
        pos = int(np.searchsorted(row, v))
        key = np.insert(row, pos, index_type(v)).tobytes()
        closed.setdefault(key, []).append(v)
    for members in closed.values():
        if len(members) < 2:
            continue
        closed_groups += 1
        keep[members[1:]] = False
        multiplicity[members[0]] = len(members)
        closed_removed += len(members) - 1

    removed = open_removed + closed_removed
    if removed == 0:
        return MirrorResult(
            graph=graph,
            to_parent=np.arange(n, dtype=np.int64),
            multiplicity=multiplicity,
            correction=0,
            open_groups=0,
            closed_groups=0,
            max_multiplicity=1,
            vertices_removed=0,
            edges_removed=0,
        )

    sub = induced_subgraph(graph, keep, name=name or f"{graph.name}:collapsed")
    mult = multiplicity[sub.to_parent]
    correction = 2 if open_removed else 1
    return MirrorResult(
        graph=sub.graph,
        to_parent=sub.to_parent,
        multiplicity=mult,
        correction=correction,
        open_groups=open_groups,
        closed_groups=closed_groups,
        max_multiplicity=int(mult.max()) if len(mult) else 1,
        vertices_removed=removed,
        edges_removed=graph.num_edges - sub.graph.num_edges,
    )
