"""Vertex reordering — stage 3 of the prep pipeline.

A permutation layer over :class:`~repro.graph.csr.CSRGraph`: relabel
vertices so the traversal kernels touch memory sequentially, run the
algorithm on the relabelled graph, and map any vertex-valued result
back through :attr:`Reordering.to_original`. The diameter itself is
permutation-invariant, so no correction term is involved — the layer
exists purely for locality:

* ``degree`` — degree-descending. Hub-heavy graphs spend most gather
  passes on the few high-degree rows; fronting them packs the hot rows
  into the first cache lines and makes the bottom-up switch scan them
  first.
* ``bfs`` — level order from the max-degree vertex. Frontiers of a
  level-synchronous BFS become (nearly) contiguous index ranges.
* ``rcm`` — reverse Cuthill-McKee. The classic bandwidth-minimizing
  order for meshes/roads: neighbors get nearby ids, shrinking the
  span every ``indices`` access jumps across.

:func:`edge_span` is the deterministic locality proxy recorded in
:class:`~repro.core.stats.PrepStats` — the sum over edges of
``|u - v|``, i.e. the total index distance the kernel's gathers cover
(halved, counting each undirected edge once).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.bfs.frontier import gather_rows
from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "ORDER_STRATEGIES",
    "Reordering",
    "apply_order",
    "bfs_order",
    "degree_order",
    "edge_span",
    "rcm_order",
]


@dataclass(frozen=True)
class Reordering:
    """A permuted graph plus both direction maps.

    ``to_original[i]`` is the original id of new vertex ``i`` (this is
    the permutation itself); ``from_original`` is its inverse.
    """

    graph: CSRGraph
    to_original: np.ndarray
    from_original: np.ndarray

    def map_back(self, vertices: np.ndarray) -> np.ndarray:
        """Translate vertex ids of :attr:`graph` to original ids."""
        return self.to_original[np.asarray(vertices, dtype=np.int64)]


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Vertices in degree-descending order (stable, so id-ascending ties)."""
    return np.argsort(-graph.degrees.astype(np.int64), kind="stable")


def bfs_order(graph: CSRGraph, source: int | None = None) -> np.ndarray:
    """Level order of a BFS from ``source`` (default: max-degree vertex).

    Unreached vertices (other components) are appended in id order, so
    the result is always a full permutation.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if source is None:
        source = graph.max_degree_vertex()
    indptr, indices = graph.indptr, graph.indices
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    while len(frontier):
        neigh, _ = gather_rows(indices, indptr[frontier], indptr[frontier + 1])
        fresh = neigh[~visited[neigh]]
        if len(fresh) == 0:
            break
        frontier = np.unique(fresh)
        visited[frontier] = True
        levels.append(frontier)
    unreached = np.flatnonzero(~visited)
    if len(unreached):
        levels.append(unreached)
    return np.concatenate(levels)


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill-McKee order (queue-based, lowest-degree seeds).

    Components are seeded at their lowest-degree vertex (id-ascending
    tie-break); within the queue, newly discovered neighbors enter in
    degree-ascending order, and the final Cuthill-McKee order is
    reversed — the standard bandwidth-reducing recipe.
    """
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees.astype(np.int64)
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    seeds = np.lexsort((np.arange(n), degrees))
    cursor = 0
    pos = 0
    queue: deque[int] = deque()
    while pos < n:
        while visited[seeds[cursor]]:
            cursor += 1
        seed = int(seeds[cursor])
        visited[seed] = True
        queue.append(seed)
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            row = indices[indptr[v]:indptr[v + 1]]
            fresh = row[~visited[row]]
            if len(fresh):
                fresh = fresh[np.lexsort((fresh, degrees[fresh]))]
                visited[fresh] = True
                queue.extend(fresh.tolist())
    return order[::-1].copy()


ORDER_STRATEGIES = {
    "degree": degree_order,
    "bfs": bfs_order,
    "rcm": rcm_order,
}


def apply_order(
    graph: CSRGraph, order: np.ndarray, name: str | None = None
) -> Reordering:
    """Relabel ``graph`` so new vertex ``i`` is old vertex ``order[i]``."""
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if len(order) != n or (
        n > 0
        and (
            order.min() < 0
            or order.max() >= n
            or (np.bincount(order, minlength=n) != 1).any()
        )
    ):
        raise AlgorithmError(
            f"reorder permutation must be a bijection on 0..{n - 1}"
        )
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    permuted = from_edge_arrays(
        ranks[row_of],
        ranks[graph.indices.astype(np.int64)],
        num_vertices=n,
        name=name or f"{graph.name}:reordered",
    )
    return Reordering(
        graph=permuted, to_original=order.copy(), from_original=ranks
    )


def edge_span(graph: CSRGraph) -> int:
    """Total index distance covered by the adjacency structure.

    ``sum_{u~v} |u - v|`` over undirected edges — the deterministic
    locality proxy for before/after reorder comparisons (lower means
    gathers stay closer to the frontier's index range).
    """
    row_of = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    return int(np.abs(row_of - graph.indices.astype(np.int64)).sum()) // 2
