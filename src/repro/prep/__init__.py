"""Exactness-preserving preprocessing before :func:`repro.core.fdiam.fdiam`.

The structure-aware reduction & reordering pipeline (DESIGN.md §9):

* :mod:`repro.prep.peel` — pendant-tree peeling (generalized Chain
  Processing): replace every tree hanging off the 2-core by a single
  spine path and fold purely-internal tree distances into a correction
  term.
* :mod:`repro.prep.mirror` — mirror-vertex collapsing: vertices with
  identical open/closed neighborhoods keep one representative with a
  recorded multiplicity.
* :mod:`repro.prep.reorder` — degree-descending / BFS / RCM vertex
  permutations as an explicit layer over ``CSRGraph``, with results
  mapped back to original ids.
* :mod:`repro.prep.plan` — the ``--prep`` grammar and the
  per-component planner (scalar vs bit-parallel lanes, reorder
  strategy) backed by the parallel cost model.
* :mod:`repro.prep.pipeline` — the driver gluing it all together and
  merging per-component results under the disconnected-input
  "infinity + largest component eccentricity" convention.

Every stage is exact: ``fdiam(graph, FDiamConfig(prep="auto"))``
returns the identical diameter (and infinity flag) as the plain run.
"""

from repro.prep.mirror import MirrorResult, collapse_mirrors
from repro.prep.peel import PeelResult, peel_pendant_trees
from repro.prep.pipeline import Prepared, fdiam_prepped, preprocess
from repro.prep.plan import ComponentPlan, PrepSpec, plan_component
from repro.prep.reorder import (
    ORDER_STRATEGIES,
    Reordering,
    apply_order,
    bfs_order,
    degree_order,
    edge_span,
    rcm_order,
)

__all__ = [
    "ComponentPlan",
    "MirrorResult",
    "ORDER_STRATEGIES",
    "PeelResult",
    "Prepared",
    "PrepSpec",
    "Reordering",
    "apply_order",
    "bfs_order",
    "collapse_mirrors",
    "degree_order",
    "edge_span",
    "fdiam_prepped",
    "peel_pendant_trees",
    "plan_component",
    "preprocess",
    "rcm_order",
]
