"""Prep-pipeline specification and the per-component planner.

:class:`PrepSpec` parses the CLI's ``--prep`` grammar
(``auto | off | <stage>[,<stage>...]`` with stages ``peel``,
``collapse``/``mirror``, ``reorder[=degree|bfs|rcm|auto]`` and
``plan``/``components``) into an immutable plan of which stages run.

:func:`plan_component` is the per-component decision point: given one
connected component of the reduced graph, it consults the structural
side of :class:`~repro.parallel.costmodel.LevelSynchronousCostModel`
(estimated diameter, degree skew, lane occupancy) to pick the engine —
bit-parallel lane waves versus scalar — the reorder strategy
(degree-descending for hub-heavy components, BFS level order for
mesh-like ones), and whether surviving chain tips are resolved through
the bit-parallel anchor sweep
(:func:`repro.core.chain.batch_tip_eccentricities`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.bitparallel import LANE_WIDTH
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.parallel.costmodel import LevelSynchronousCostModel

__all__ = ["ComponentPlan", "PrepSpec", "plan_component"]

_REORDER_CHOICES = ("auto", "degree", "bfs", "rcm")


@dataclass(frozen=True)
class PrepSpec:
    """Which prep stages are enabled for a run."""

    peel: bool = False
    collapse: bool = False
    reorder: str = "off"
    plan: bool = False

    @property
    def enabled(self) -> bool:
        """Whether any stage is on (``False`` means plain ``fdiam``)."""
        return self.peel or self.collapse or self.reorder != "off" or self.plan

    @property
    def tokens(self) -> tuple[str, ...]:
        """Canonical stage tokens (round-trips through :meth:`parse`)."""
        out: list[str] = []
        if self.peel:
            out.append("peel")
        if self.collapse:
            out.append("collapse")
        if self.reorder != "off":
            out.append(f"reorder={self.reorder}")
        if self.plan:
            out.append("plan")
        return tuple(out)

    @classmethod
    def parse(cls, text: str | None) -> PrepSpec:
        """Parse a ``--prep`` value; raises :class:`AlgorithmError` on junk."""
        if text is None:
            return cls()
        value = text.strip().lower()
        if value in ("", "off", "none"):
            return cls()
        if value == "auto":
            return cls(peel=True, collapse=True, reorder="auto", plan=True)
        peel = collapse = plan = False
        reorder = "off"
        for raw in value.split(","):
            token = raw.strip()
            if not token:
                continue
            if token == "peel":
                peel = True
            elif token in ("collapse", "mirror"):
                collapse = True
            elif token == "reorder":
                reorder = "auto"
            elif token.startswith("reorder="):
                choice = token.split("=", 1)[1]
                if choice not in _REORDER_CHOICES:
                    raise AlgorithmError(
                        f"unknown reorder strategy {choice!r}; "
                        f"expected one of {', '.join(_REORDER_CHOICES)}"
                    )
                reorder = choice
            elif token in ("plan", "components"):
                plan = True
            else:
                raise AlgorithmError(
                    f"unknown prep stage {token!r}; expected auto, off, or a "
                    "comma list of peel, collapse, reorder[=STRATEGY], plan"
                )
        return cls(peel=peel, collapse=collapse, reorder=reorder, plan=plan)


@dataclass(frozen=True)
class ComponentPlan:
    """Planner verdict for one connected component."""

    batch_lanes: int
    reorder: str
    estimated_diameter: int
    chain_tip_batch: bool = False


def plan_component(
    graph: CSRGraph,
    *,
    spec: PrepSpec,
    requested_lanes: int,
    model: LevelSynchronousCostModel | None = None,
) -> ComponentPlan:
    """Pick engine, reorder strategy, and tip batching for one component.

    ``requested_lanes`` is the run's ``bfs_batch_lanes``; when the
    ``plan`` stage is on and the cost model advises against merged lane
    waves for this component's estimated diameter, it is zeroed (the
    scalar engine). The ``auto`` reorder strategy resolves to ``degree``
    for hub-heavy components and BFS level order for mesh-like ones,
    using the model's skew threshold (RCM stays available explicitly,
    but its reversal scrambles the id scan F-Diam's main loop relies
    on, measurably inflating the traversal count on road meshes).
    ``plan`` also decides chain-tip batching: profitable exactly when a
    full-occupancy lane-mode sweep fits the model's level budget —
    low-diameter components whose pendant tips would otherwise each pay
    a scalar eccentricity BFS.
    """
    model = model or LevelSynchronousCostModel()
    max_degree = graph.max_degree() if graph.num_vertices else 0
    estimate = model.estimate_diameter(
        graph.num_vertices, graph.num_directed_edges, max_degree
    )
    lanes = requested_lanes
    if spec.plan and lanes > 0 and not model.lane_batch_advisable(
        estimate, lanes, merged=True
    ):
        lanes = 0
    tip_batch = spec.plan and model.lane_batch_advisable(
        estimate, LANE_WIDTH, merged=False
    )
    strategy = spec.reorder
    if strategy == "auto":
        average = max(graph.average_degree(), 1e-12)
        strategy = (
            "degree" if max_degree >= model.params.hub_skew * average else "bfs"
        )
    return ComponentPlan(
        batch_lanes=lanes,
        reorder=strategy,
        estimated_diameter=estimate,
        chain_tip_batch=tip_batch,
    )
