"""Pendant-tree peeling — stage 1 of the prep pipeline.

Chain Processing (paper §5.3) removes degree-1/degree-2 *paths*; this
stage generalizes it to whole pendant **trees**. Every vertex outside
the 2-core belongs to a tree that hangs off the core at a single
*anchor* (or forms a free-standing tree component). Such trees can be
removed before a single full BFS runs, provided two quantities are
recorded:

* per-anchor **height** ``h(a)`` — the depth of the deepest tree vertex
  hanging at anchor ``a``. A path realizing the diameter that ends
  inside the tree at ``a`` can always be extended to end at that
  deepest vertex, so replacing the whole tree by a single *spine path*
  of length ``h(a)`` preserves every anchor-crossing distance.
* the **internal correction** ``T`` — the largest distance between two
  vertices whose connecting path never leaves one pendant tree (or one
  free-standing tree component). For a tree rooted by the BFS that
  discovered it, that is the classic "top-two child heights" maximum
  over all internal vertices.

With ``G'`` the 2-core plus one spine per anchor, the exactness lemma
(DESIGN.md §9.2) is ``diam(G) = max(diam(G'), T)`` — and for
disconnected inputs the same identity holds per component, which is how
:mod:`repro.prep.pipeline` consumes it.

Everything here is vectorized per BFS level; the only Python-level loop
is over tree depth (bounded by the longest pendant path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.frontier import gather_rows
from repro.graph.build import from_edge_arrays
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from repro.graph.kcore import core_numbers
from repro.graph.subgraph import induced_subgraph

__all__ = ["PeelResult", "peel_pendant_trees"]


@dataclass(frozen=True)
class PeelResult:
    """Outcome of one peeling pass.

    Attributes
    ----------
    graph:
        The reduced graph: the 2-core (vertices relabelled ``0..k-1``)
        plus one synthetic spine path of length ``h(a)`` per anchor
        ``a``. Spine vertex ids start at ``num_core``.
    core_to_parent:
        Original id of each surviving core vertex (spine vertices are
        synthetic and have no original id).
    num_core:
        Number of 2-core vertices kept (``graph`` has
        ``num_core + spine_vertices`` vertices in total).
    correction:
        The internal correction ``T``: the largest pairwise distance
        realized entirely inside one pendant tree or free-standing tree
        component. ``diam(original) = max(diam(graph), correction)``
        per component.
    anchors:
        Number of core vertices with at least one pendant tree.
    spine_vertices:
        Synthetic path vertices added to stand in for the peeled trees.
    tree_components:
        Whole components that were trees (they vanish from ``graph``;
        their diameters are folded into ``correction``).
    vertices_removed / edges_removed:
        Net size reduction versus the input graph.
    """

    graph: CSRGraph
    core_to_parent: np.ndarray
    num_core: int
    correction: int
    anchors: int
    spine_vertices: int
    tree_components: int
    vertices_removed: int
    edges_removed: int

    @property
    def changed(self) -> bool:
        """Whether peeling removed anything."""
        return self.vertices_removed > 0


def _identity_result(graph: CSRGraph) -> PeelResult:
    return PeelResult(
        graph=graph,
        core_to_parent=np.arange(graph.num_vertices, dtype=np.int64),
        num_core=graph.num_vertices,
        correction=0,
        anchors=0,
        spine_vertices=0,
        tree_components=0,
        vertices_removed=0,
        edges_removed=0,
    )


def peel_pendant_trees(graph: CSRGraph, name: str | None = None) -> PeelResult:
    """Peel every pendant tree (and free tree component) off ``graph``.

    Returns the reduced graph (2-core + per-anchor spines) together
    with the internal correction ``T``; see the module docstring for
    the exactness statement. ``O(n + m)`` plus one vectorized pass per
    tree-depth level.
    """
    n = graph.num_vertices
    if n == 0:
        return _identity_result(graph)
    in_core = core_numbers(graph).core >= 2
    num_forest = int(n - np.count_nonzero(in_core))
    if num_forest == 0:
        return _identity_result(graph)

    indptr, indices = graph.indptr, graph.indices
    # depth = BFS depth inside the forest (0 on seeds, -1 undiscovered);
    # parent = the neighbor that discovered each forest vertex. Because
    # forest vertices have at most one neighbor closer to the seeds (a
    # second one would put them on a cycle, i.e. in the 2-core), the BFS
    # tree *is* the pendant tree and `parent` is its real tree parent.
    depth = np.where(in_core, 0, -1).astype(np.int64)
    parent = np.full(n, -1, dtype=np.int64)

    def wave(seeds: np.ndarray) -> list[np.ndarray]:
        """Level-synchronous BFS from ``seeds`` into undiscovered forest."""
        levels: list[np.ndarray] = []
        frontier = seeds
        while len(frontier):
            neigh, lengths = gather_rows(indices, indptr[frontier], indptr[frontier + 1])
            rows = np.repeat(frontier, lengths)
            undiscovered = depth[neigh] == -1
            cand, cand_parent = neigh[undiscovered], rows[undiscovered]
            if len(cand) == 0:
                break
            uniq, first = np.unique(cand, return_index=True)
            depth[uniq] = depth[frontier[0]] + 1
            parent[uniq] = cand_parent[first]
            levels.append(uniq)
            frontier = uniq
        return levels

    # Wave 1: grow pendant trees outward from the whole 2-core at once.
    waves: list[list[np.ndarray]] = []
    core_vertices = np.flatnonzero(in_core)
    if len(core_vertices):
        waves.append(wave(core_vertices))

    # Wave 2: anything still undiscovered lives in a free-standing tree
    # component. Root each such component at its smallest vertex id
    # (deterministic) and run the same wave.
    remaining = np.flatnonzero(depth == -1)
    tree_components = 0
    if len(remaining):
        rest = induced_subgraph(graph, remaining)
        labels = connected_components(rest.graph).labels
        tree_components = int(labels.max()) + 1 if len(labels) else 0
        _, first = np.unique(labels, return_index=True)
        roots = rest.to_parent[first]
        depth[roots] = 0
        waves.append(wave(roots))

    # Bottom-up DP: up[v] = height of the pendant subtree rooted at v.
    up = np.zeros(n, dtype=np.int64)
    for levels in waves:
        for level in reversed(levels):
            np.maximum.at(up, parent[level], up[level] + 1)

    # Group the child contributions (up[child] + 1) by parent. The top
    # value per group is the parent's height; top1 + top2 is the longest
    # path whose topmost vertex is that parent, and its maximum over all
    # parents is the internal correction T.
    children = np.flatnonzero(parent >= 0)
    correction = 0
    anchor_ids = np.empty(0, dtype=np.int64)
    heights = np.empty(0, dtype=np.int64)
    if len(children):
        vals = up[children] + 1
        par = parent[children]
        order = np.lexsort((-vals, par))
        par_sorted, vals_sorted = par[order], vals[order]
        starts = np.flatnonzero(
            np.concatenate(([True], par_sorted[1:] != par_sorted[:-1]))
        )
        seg_len = np.diff(np.concatenate((starts, [len(par_sorted)])))
        top1 = vals_sorted[starts]
        top2 = np.zeros(len(starts), dtype=np.int64)
        has_two = seg_len >= 2
        top2[has_two] = vals_sorted[starts[has_two] + 1]
        correction = int((top1 + top2).max())
        group_parents = par_sorted[starts]
        is_anchor = in_core[group_parents]
        anchor_ids = group_parents[is_anchor]
        heights = top1[is_anchor]

    # Reduced graph = induced 2-core + one spine path per anchor.
    sub = induced_subgraph(graph, in_core)
    k = sub.graph.num_vertices
    total_spine = int(heights.sum())
    reduced_name = name or f"{graph.name}:peeled"
    base_src = np.repeat(
        np.arange(k, dtype=np.int64), np.diff(sub.graph.indptr)
    )
    base_dst = sub.graph.indices.astype(np.int64)
    if total_spine:
        anchors_local = sub.from_parent[anchor_ids]
        offsets = np.concatenate(([0], np.cumsum(heights)[:-1])).astype(np.int64)
        spine_anchor = np.repeat(np.arange(len(anchor_ids)), heights)
        spine_ids = k + np.arange(total_spine, dtype=np.int64)
        spine_pos = np.arange(total_spine, dtype=np.int64) - offsets[spine_anchor]
        prev = np.where(
            spine_pos == 0, anchors_local[spine_anchor], spine_ids - 1
        )
        src = np.concatenate([base_src, prev])
        dst = np.concatenate([base_dst, spine_ids])
    else:
        src, dst = base_src, base_dst
    reduced = from_edge_arrays(src, dst, k + total_spine, name=reduced_name)

    return PeelResult(
        graph=reduced,
        core_to_parent=sub.to_parent,
        num_core=k,
        correction=correction,
        anchors=len(anchor_ids),
        spine_vertices=total_spine,
        tree_components=tree_components,
        vertices_removed=n - reduced.num_vertices,
        edges_removed=graph.num_edges - reduced.num_edges,
    )
