"""Exception hierarchy for the F-Diam reproduction package.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish construction problems
(:class:`GraphFormatError`, :class:`GraphValidationError`) from usage
problems (:class:`AlgorithmError`) and resource problems
(:class:`BenchmarkTimeout`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """An on-disk graph representation could not be parsed.

    Raised by the readers in :mod:`repro.graph.io` when a file does not
    conform to the expected format (bad header, non-integer vertex id,
    truncated record, ...). The message always includes the offending
    line number when one is available.
    """


class StoreFormatError(GraphFormatError):
    """A ``.scsr`` compressed-store image could not be decoded.

    Raised by :mod:`repro.store` when a block-compressed CSR container
    is damaged or unreadable: bad magic, an unknown schema version, a
    truncated file, offset tables that point outside the image, or a
    block whose varint stream decodes to out-of-range vertex ids. The
    message names the file (when one is involved) and the failing
    block or header field. Subclasses :class:`GraphFormatError` so
    existing ``except GraphFormatError`` call sites treat a corrupt
    store exactly like any other unreadable graph file.
    """


class GraphValidationError(ReproError):
    """A :class:`~repro.graph.CSRGraph` invariant does not hold.

    Raised by :func:`repro.graph.validate.validate_csr` when row pointers
    are not monotone, column indices are out of range, the adjacency
    structure is not symmetric, or rows are not sorted/deduplicated.
    """


class AlgorithmError(ReproError):
    """An algorithm was invoked with arguments it cannot handle.

    Examples: asking for the eccentricity of a vertex that is not in the
    graph, running the 2-sweep on an empty graph, or configuring
    mutually-exclusive ablation switches.
    """


class InvariantViolation(ReproError):
    """A machine-checked algorithm invariant failed mid-run.

    Raised by the invariant oracle of :mod:`repro.verify` when a run
    executed with ``FDiamConfig.verify`` breaks one of the paper's
    safety properties — an upper bound below a true eccentricity, a
    winnowed vertex outside the ``⌊bound/2⌋`` ball (Theorems 2–3), an
    Eliminate write past the ``bound - ecc`` radius (Theorem 1), lost
    chain-tip dominance, or a discarded diameter witness. The message
    names the stage and the offending vertices; the differential fuzzer
    shrinks the triggering graph into a replayable artifact.
    """

    def __init__(self, message: str, *, stage: str = ""):
        super().__init__(message)
        #: The pipeline stage whose check failed (``"winnow"`` etc.).
        self.stage = stage


class BenchmarkTimeout(ReproError):
    """A benchmark run exceeded its configured time budget.

    Mirrors the paper's 2.5-hour per-input timeout: harness runners
    convert this exception into a ``T/O`` table entry rather than failing
    the whole experiment.
    """

    def __init__(self, message: str, elapsed: float | None = None):
        super().__init__(message)
        #: Seconds spent before the run was abandoned (``None`` if unknown).
        self.elapsed = elapsed
