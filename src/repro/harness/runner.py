"""Timed benchmark runner with per-input timeouts.

Reproduces the paper's measurement protocol (§5) at laptop scale:

* every (algorithm, input) pair is run ``repeats`` times and the
  **median** runtime reported ("We run the codes 9 times on each input
  and use the median runtime"),
* a per-input time budget turns slow runs into ``T/O`` table entries
  instead of failures ("we limited the running time to 2.5 hours per
  input") — scaled down to seconds here,
* the primary metric is throughput, vertices per second ("Doing so
  normalizes the results as the graphs vary greatly in size").
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import BenchmarkTimeout
from repro.graph.csr import CSRGraph

__all__ = ["TimedRun", "run_timed", "DEFAULT_TIMEOUT_S", "DEFAULT_REPEATS"]

#: Scaled-down analog of the paper's 2.5-hour cap, chosen to keep the
#: paper's budget-to-slowest-F-Diam-run ratio: the paper's cap is ~4.5x
#: its slowest F-Diam (ser) time (9000s vs 2017s); ours is ~4.5x the
#: slowest analog run (~20s on the Kronecker input).
DEFAULT_TIMEOUT_S = 90.0
#: Scaled-down analog of the paper's 9 repetitions.
DEFAULT_REPEATS = 3


@dataclass(frozen=True)
class TimedRun:
    """Outcome of a timed algorithm execution on one input.

    ``timed_out`` runs carry ``None`` results and infinite runtimes;
    the table renderers print them as ``T/O`` exactly like the paper.
    """

    algorithm: str
    graph_name: str
    num_vertices: int
    median_seconds: float
    result: object | None
    timed_out: bool

    @property
    def throughput(self) -> float:
        """Vertices per second (0 for timeouts)."""
        if self.timed_out or self.median_seconds <= 0:
            return 0.0
        return self.num_vertices / self.median_seconds


def run_timed(
    algorithm: str,
    fn: Callable[..., object],
    graph: CSRGraph,
    *,
    repeats: int = DEFAULT_REPEATS,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    **kwargs,
) -> TimedRun:
    """Run ``fn(graph, deadline=..., **kwargs)`` ``repeats`` times.

    The timeout budget covers the *whole* repetition loop the way the
    paper's per-input budget covers a code's run: the first repetition
    gets the full budget; if it times out (or any later one does with
    the remaining budget), the pair is reported ``T/O``.
    """
    overall_deadline = time.perf_counter() + timeout_s
    durations: list[float] = []
    result: object | None = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        if start >= overall_deadline:
            break  # budget exhausted by earlier repetitions; keep what we have
        try:
            result = fn(graph, deadline=overall_deadline, **kwargs)
        except BenchmarkTimeout:
            if not durations:
                return TimedRun(
                    algorithm=algorithm,
                    graph_name=graph.name,
                    num_vertices=graph.num_vertices,
                    median_seconds=float("inf"),
                    result=None,
                    timed_out=True,
                )
            break
        durations.append(time.perf_counter() - start)
    return TimedRun(
        algorithm=algorithm,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        median_seconds=statistics.median(durations),
        result=result,
        timed_out=False,
    )
