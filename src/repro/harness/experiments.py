"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver returns an :class:`ExperimentReport` carrying both the
structured data (asserted on by the benchmark tests and recorded in
EXPERIMENTS.md) and the rendered plain-text table/figure.

Code names match the paper's: ``F-Diam (ser)``, ``F-Diam (par)``,
``iFUB (ser)``, ``iFUB (par)``, ``Graph-Diam.``. The serial/parallel
split maps to the scalar and vectorized BFS engines (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.graph_diameter import graph_diameter
from repro.baselines.ifub import ifub_diameter
from repro.core.config import ABLATIONS, FDiamConfig
from repro.core.fdiam import fdiam
from repro.graph.degrees import degree_summary
from repro.harness.figures import line_series, log_bar_chart, stacked_percent_bars
from repro.harness.runner import (
    DEFAULT_REPEATS,
    DEFAULT_TIMEOUT_S,
    TimedRun,
    run_timed,
)
from repro.harness.tables import render_table
from repro.harness.throughput import geomean_throughput, pairwise_speedup
from repro.harness.workloads import ALL_INPUTS, iter_workloads
from repro.parallel.scaling import PAPER_THREAD_COUNTS, ScalingStudy

__all__ = [
    "ExperimentReport",
    "SuiteConfig",
    "CODES",
    "table1_inputs",
    "run_all_codes",
    "table2_runtimes",
    "fig6_throughput",
    "fig7_scaling",
    "table3_bfs_counts",
    "table4_stage_effectiveness",
    "fig8_runtime_breakdown",
    "table5_ablation_bfs",
    "table_prep_reduction",
    "fig9_ablation_throughput",
]


@dataclass(frozen=True)
class ExperimentReport:
    """Structured data plus rendered text of one reproduced experiment."""

    experiment: str
    text: str
    data: object


@dataclass(frozen=True)
class SuiteConfig:
    """Shared knobs of an experiment run."""

    inputs: tuple[str, ...] = ALL_INPUTS
    repeats: int = DEFAULT_REPEATS
    timeout_s: float = DEFAULT_TIMEOUT_S


def _fdiam_runner(config: FDiamConfig) -> Callable:
    def run(graph, deadline=None):
        return fdiam(graph, config, deadline=deadline)

    return run


#: The five codes of Table 2 / Figure 6, in the paper's column order.
CODES: dict[str, Callable] = {
    "F-Diam (ser)": _fdiam_runner(FDiamConfig(engine="serial")),
    "F-Diam (par)": _fdiam_runner(FDiamConfig(engine="parallel")),
    "iFUB (ser)": lambda graph, deadline=None: ifub_diameter(
        graph, engine="serial", deadline=deadline
    ),
    "iFUB (par)": lambda graph, deadline=None: ifub_diameter(
        graph, engine="parallel", deadline=deadline
    ),
    "Graph-Diam.": lambda graph, deadline=None: graph_diameter(
        graph, engine="parallel", deadline=deadline
    ),
}


# ----------------------------------------------------------------------
# Table 1 — input graphs
# ----------------------------------------------------------------------
def table1_inputs(cfg: SuiteConfig | None = None) -> ExperimentReport:
    """Reproduce Table 1: the input catalog (for the analogs)."""
    cfg = cfg or SuiteConfig()
    rows = []
    for wl in iter_workloads(cfg.inputs):
        summary = degree_summary(wl.graph)
        result = fdiam(wl.graph)
        rows.append(
            {
                "name": wl.name,
                "type": wl.spec.topology,
                "vertices": summary.num_vertices,
                "edges": 2 * summary.num_edges,
                "avg degree": round(summary.average_degree, 1),
                "max degree": summary.max_degree,
                "CC diameter": result.diameter,
                "paper vertices": wl.spec.paper_vertices,
                "paper CC diameter": wl.spec.paper_diameter,
            }
        )
    text = render_table(
        "Table 1: Information about the input graphs (synthetic analogs)",
        [
            "name",
            "type",
            "vertices",
            "edges",
            "avg degree",
            "max degree",
            "CC diameter",
            "paper vertices",
            "paper CC diameter",
        ],
        rows,
    )
    return ExperimentReport("table1", text, rows)


# ----------------------------------------------------------------------
# Table 2 / Figure 6 / Table 3 share one measurement pass
# ----------------------------------------------------------------------
def run_all_codes(cfg: SuiteConfig | None = None) -> dict[str, list[TimedRun]]:
    """Measure all five codes on all configured inputs."""
    cfg = cfg or SuiteConfig()
    runs: dict[str, list[TimedRun]] = {name: [] for name in CODES}
    for wl in iter_workloads(cfg.inputs):
        for code_name, fn in CODES.items():
            runs[code_name].append(
                run_timed(
                    code_name,
                    fn,
                    wl.graph,
                    repeats=cfg.repeats,
                    timeout_s=cfg.timeout_s,
                )
            )
    return runs


def table2_runtimes(
    runs: dict[str, list[TimedRun]], cfg: SuiteConfig | None = None
) -> ExperimentReport:
    """Reproduce Table 2: measured runtimes in seconds (T/O = timeout)."""
    cfg = cfg or SuiteConfig()
    by_input: dict[str, dict[str, object]] = {}
    for code_name, code_runs in runs.items():
        for r in code_runs:
            row = by_input.setdefault(r.graph_name, {"Graphs": r.graph_name})
            row[code_name] = float("inf") if r.timed_out else r.median_seconds
    text = render_table(
        f"Table 2: Measured runtimes in seconds (T/O = timeout at {cfg.timeout_s:g}s)",
        ["Graphs", *CODES.keys()],
        by_input.values(),
    )
    return ExperimentReport("table2", text, by_input)


def fig6_throughput(runs: dict[str, list[TimedRun]]) -> ExperimentReport:
    """Reproduce Figure 6: throughput of the five codes per input,
    plus the paper's geometric-mean speedup summary."""
    series: dict[str, dict[str, float]] = {}
    for code_name, code_runs in runs.items():
        for r in code_runs:
            series.setdefault(r.graph_name, {})[code_name] = r.throughput
    chart = log_bar_chart(
        "Figure 6: Throughput of various diameter codes "
        "(missing bars denote timeouts)",
        series,
    )
    summary_lines = ["", "Geometric-mean speedups (common non-timeout inputs):"]
    speedups: dict[str, float] = {}
    for fast in ("F-Diam (ser)", "F-Diam (par)"):
        for slow in ("iFUB (ser)", "iFUB (par)", "Graph-Diam."):
            s = pairwise_speedup(runs[fast], runs[slow])
            speedups[f"{fast} vs {slow}"] = s
            summary_lines.append(f"  {fast} vs {slow}: {s:,.1f}x")
    geo = {name: geomean_throughput(rs) for name, rs in runs.items()}
    return ExperimentReport(
        "fig6",
        chart + "\n" + "\n".join(summary_lines),
        {"series": series, "speedups": speedups, "geomean_throughput": geo},
    )


def table3_bfs_counts(runs: dict[str, list[TimedRun]]) -> ExperimentReport:
    """Reproduce Table 3: number of BFS traversals per code and input.

    Counting convention per the paper: eccentricity BFS + Winnow calls
    for F-Diam; all full BFS calls for the baselines; Eliminate is not
    counted.
    """
    tracked = ("F-Diam (par)", "iFUB (par)", "Graph-Diam.")
    by_input: dict[str, dict[str, object]] = {}
    for code_name in tracked:
        for r in runs[code_name]:
            row = by_input.setdefault(r.graph_name, {"Graphs": r.graph_name})
            if r.timed_out or r.result is None:
                row[code_name] = "timeout"
            else:
                res = r.result
                count = (
                    res.stats.bfs_traversals
                    if hasattr(res, "stats")
                    else res.bfs_traversals
                )
                row[code_name] = count
    text = render_table(
        "Table 3: Number of BFS traversals",
        ["Graphs", *tracked],
        by_input.values(),
    )
    return ExperimentReport("table3", text, by_input)


# ----------------------------------------------------------------------
# Table 4 / Figure 8 — stage effectiveness and runtime split
# ----------------------------------------------------------------------
def table4_stage_effectiveness(cfg: SuiteConfig | None = None) -> ExperimentReport:
    """Reproduce Table 4: % of vertices removed per F-Diam stage."""
    cfg = cfg or SuiteConfig()
    rows = []
    fractions_by_input: dict[str, dict[str, float]] = {}
    for wl in iter_workloads(cfg.inputs):
        result = fdiam(wl.graph)
        frac = result.stats.removal_fractions()
        fractions_by_input[wl.name] = frac
        rows.append(
            {
                "Graphs": wl.name,
                "Winnow": f"{100 * frac['winnow']:.2f}%",
                "Eliminate": f"{100 * frac['eliminate']:.2f}%",
                "Chain": f"{100 * frac['chain']:.2f}%",
                "Degree-0 Vertices": f"{100 * frac['degree0']:.2f}%",
                "Computed": f"{100 * frac['computed']:.2f}%",
            }
        )
    text = render_table(
        "Table 4: Percentage of vertices removed from consideration",
        ["Graphs", "Winnow", "Eliminate", "Chain", "Degree-0 Vertices", "Computed"],
        rows,
    )
    return ExperimentReport("table4", text, fractions_by_input)


def fig8_runtime_breakdown(cfg: SuiteConfig | None = None) -> ExperimentReport:
    """Reproduce Figure 8: share of runtime per F-Diam stage."""
    cfg = cfg or SuiteConfig()
    shares: dict[str, dict[str, float]] = {}
    for wl in iter_workloads(cfg.inputs):
        result = fdiam(wl.graph)
        shares[wl.name] = result.stats.times.fractions()
    text = stacked_percent_bars(
        "Figure 8: Percentage of runtime of each function in F-Diam", shares
    )
    return ExperimentReport("fig8", text, shares)


# ----------------------------------------------------------------------
# Table 5 / Figure 9 — ablations
# ----------------------------------------------------------------------
def _run_ablations(cfg: SuiteConfig) -> dict[str, list[TimedRun]]:
    runs: dict[str, list[TimedRun]] = {name: [] for name in ABLATIONS}
    for wl in iter_workloads(cfg.inputs):
        for variant, config in ABLATIONS.items():
            runs[variant].append(
                run_timed(
                    variant,
                    _fdiam_runner(config),
                    wl.graph,
                    repeats=max(1, cfg.repeats - 1),
                    timeout_s=cfg.timeout_s,
                )
            )
    return runs


def table5_ablation_bfs(
    cfg: SuiteConfig | None = None,
    runs: dict[str, list[TimedRun]] | None = None,
) -> ExperimentReport:
    """Reproduce Table 5: BFS calls of the ablated F-Diam versions."""
    cfg = cfg or SuiteConfig()
    runs = runs or _run_ablations(cfg)
    by_input: dict[str, dict[str, object]] = {}
    for variant, variant_runs in runs.items():
        for r in variant_runs:
            row = by_input.setdefault(r.graph_name, {"Graphs": r.graph_name})
            if r.timed_out or r.result is None:
                row[variant] = "timeout"
            else:
                row[variant] = r.result.stats.bfs_traversals
    text = render_table(
        "Table 5: Number of BFS calls in different versions of F-Diam",
        ["Graphs", *ABLATIONS.keys()],
        by_input.values(),
    )
    return ExperimentReport("table5", text, by_input)


def fig9_ablation_throughput(
    cfg: SuiteConfig | None = None,
    runs: dict[str, list[TimedRun]] | None = None,
) -> ExperimentReport:
    """Reproduce Figure 9: throughput of the ablated F-Diam versions."""
    cfg = cfg or SuiteConfig()
    runs = runs or _run_ablations(cfg)
    series: dict[str, dict[str, float]] = {}
    for variant, variant_runs in runs.items():
        for r in variant_runs:
            series.setdefault(r.graph_name, {})[variant] = r.throughput
    chart = log_bar_chart(
        "Figure 9: Throughput of various F-Diam versions "
        "(missing bars denote timeouts)",
        series,
    )
    baseline = geomean_throughput(runs["F-Diam"])
    rel = {}
    lines = ["", "Geomean throughput relative to full F-Diam:"]
    for variant, variant_runs in runs.items():
        g = geomean_throughput(variant_runs)
        rel[variant] = g / baseline if baseline > 0 else 0.0
        lines.append(f"  {variant}: {100 * rel[variant]:.0f}%")
    return ExperimentReport(
        "fig9", chart + "\n" + "\n".join(lines), {"series": series, "relative": rel}
    )


# ----------------------------------------------------------------------
# Figure 7 — thread scaling (modeled; see DESIGN.md §2)
# ----------------------------------------------------------------------
def fig7_scaling(cfg: SuiteConfig | None = None) -> ExperimentReport:
    """Reproduce Figure 7: geometric-mean F-Diam throughput by thread
    count, from the level-synchronous cost model driven by measured
    traces."""
    cfg = cfg or SuiteConfig()
    study = ScalingStudy()
    for wl in iter_workloads(cfg.inputs):
        study.run_input(wl.graph)
    geo = study.geomean_throughput()
    speedups = study.geomean_speedup()
    points = [(float(t), geo[t]) for t in PAPER_THREAD_COUNTS if t in geo]
    text = line_series(
        "Figure 7: F-Diam modeled throughput for different thread counts",
        points,
        x_label="threads",
        y_label="geomean modeled throughput (vertices/s)",
    )
    text += "\n\nGeomean modeled speedup over 1 thread:\n" + "\n".join(
        f"  {t:>3} threads: {speedups[t]:.2f}x" for t in speedups
    )
    return ExperimentReport(
        "fig7", text, {"throughput": geo, "speedup": speedups, "points": study.points}
    )


# ----------------------------------------------------------------------
# Prep pipeline — reduction effectiveness across the input catalog
# ----------------------------------------------------------------------
def table_prep_reduction(cfg: SuiteConfig | None = None) -> ExperimentReport:
    """Traversal work saved by the ``--prep=auto`` reduction pipeline.

    Runs every catalog input through plain F-Diam and through the
    structure-aware pipeline (peel, mirror collapse, per-component
    reorder + planning) and reports the deterministic work counters
    side by side. The diameters are asserted equal — the pipeline is
    exactness-preserving by construction, and this table doubles as a
    catalog-wide equivalence check.

    ``auto`` consults the cost-model payoff gate first, so on inputs
    whose structure offers a reduction stage nothing to bite on (no
    pendant trees, no mirror classes, cache-resident CSR) the stage is
    vetoed and its counters are legitimately zero — the run then never
    does *more* traversal work than plain, and the ``gated`` column
    records which stages were withheld.
    """
    cfg = cfg or SuiteConfig()
    rows = []
    data: dict[str, dict[str, object]] = {}
    for wl in iter_workloads(cfg.inputs):
        plain = fdiam(wl.graph)
        prepped = fdiam(wl.graph, FDiamConfig(prep="auto"))
        if prepped.diameter != plain.diameter:
            raise AssertionError(
                f"prep changed the diameter on {wl.name}: "
                f"{plain.diameter} -> {prepped.diameter}"
            )
        prep = prepped.stats.prep
        entry = {
            "bfs_plain": plain.stats.bfs_traversals,
            "bfs_prep": prepped.stats.bfs_traversals,
            "edges_plain": plain.stats.edges_examined,
            "edges_prep": prepped.stats.edges_examined,
            "vertices_removed": prep.vertices_removed if prep else 0,
            "tip_batched": prep.tip_batch_components if prep else 0,
            "stages_gated": prep.stages_gated if prep else (),
            "diameter": plain.diameter,
        }
        data[wl.name] = entry
        rows.append(
            {
                "Graphs": wl.name,
                "BFS (plain)": entry["bfs_plain"],
                "BFS (prep)": entry["bfs_prep"],
                "edges (plain)": entry["edges_plain"],
                "edges (prep)": entry["edges_prep"],
                "removed": entry["vertices_removed"],
                "gated": ",".join(entry["stages_gated"]) or "-",
                "diameter": entry["diameter"],
            }
        )
    text = render_table(
        "Prep pipeline: traversal work, plain vs --prep=auto",
        [
            "Graphs",
            "BFS (plain)",
            "BFS (prep)",
            "edges (plain)",
            "edges (prep)",
            "removed",
            "gated",
            "diameter",
        ],
        rows,
    )
    return ExperimentReport("table_prep", text, data)
