"""Plain-text table rendering for the experiment reports.

Every reproduced table (paper Tables 1–5) is emitted through this one
renderer so the benchmark output reads uniformly. Values are formatted
by type: floats get three significant decimals, percentages two, the
``inf`` sentinel becomes ``T/O`` (the paper's timeout marker).
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_cell", "render_table"]


def format_cell(value: object) -> str:
    """Human formatting of one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "T/O"
        if 0 < abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:,.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    title: str,
    columns: list[str],
    rows: Iterable[Mapping[str, object]],
    *,
    min_width: int = 4,
) -> str:
    """Render rows of dicts as an aligned monospace table.

    Missing keys render as ``-``. The first column is left-aligned
    (input names), the rest right-aligned (numbers).
    """
    body = [[format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(min_width, len(col), *(len(r[i]) for r in body)) if body else max(min_width, len(col))
        for i, col in enumerate(columns)
    ]

    def fmt_line(cells: list[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = [title, "=" * len(title), fmt_line(columns), sep]
    lines.extend(fmt_line(r) for r in body)
    return "\n".join(lines)
