"""Throughput aggregation with the paper's comparison rules.

The paper's speedup statements (§6.1, footnote 2) follow one rule:
"All speedups are computed based on the geometric-mean throughput over
only the inputs on which neither code being compared times out."
This module implements exactly that, plus the worst/best per-input
ratios quoted in the same section.
"""

from __future__ import annotations

import numpy as np

from repro.harness.runner import TimedRun

__all__ = [
    "geomean_throughput",
    "penalized_geomean_throughput",
    "pairwise_speedup",
    "speedup_range",
]


def _common_inputs(a: list[TimedRun], b: list[TimedRun]) -> list[tuple[TimedRun, TimedRun]]:
    """Pairs of runs on inputs where neither code timed out."""
    b_by_name = {r.graph_name: r for r in b}
    pairs = []
    for ra in a:
        rb = b_by_name.get(ra.graph_name)
        if rb is not None and not ra.timed_out and not rb.timed_out:
            pairs.append((ra, rb))
    return pairs


def geomean_throughput(runs: list[TimedRun]) -> float:
    """Geometric-mean throughput over non-timed-out runs (0 if none)."""
    vals = [r.throughput for r in runs if not r.timed_out and r.throughput > 0]
    if not vals:
        return 0.0
    return float(np.exp(np.mean(np.log(vals))))


def penalized_geomean_throughput(runs: list[TimedRun], timeout_s: float) -> float:
    """Geomean throughput with timeouts clamped at the budget.

    The footnote-2 rule (exclude inputs where a code timed out) is the
    right basis for *pairwise speedups* but flatters codes with many
    timeouts in a standalone ranking. For overall rankings, a timed-out
    run is charged its full budget — an optimistic lower bound on its
    true runtime, hence an upper bound on its throughput — so "fast but
    fragile" and "always finishes" codes become comparable.
    """
    vals = []
    for r in runs:
        if r.timed_out:
            vals.append(r.num_vertices / timeout_s)
        elif r.throughput > 0:
            vals.append(r.throughput)
    if not vals:
        return 0.0
    return float(np.exp(np.mean(np.log(vals))))


def pairwise_speedup(fast: list[TimedRun], slow: list[TimedRun]) -> float:
    """Geomean-throughput ratio of ``fast`` over ``slow``, restricted to
    inputs where neither timed out (paper footnote 2). 0 when no
    common inputs exist."""
    pairs = _common_inputs(fast, slow)
    if not pairs:
        return 0.0
    ratios = [a.throughput / b.throughput for a, b in pairs if b.throughput > 0]
    if not ratios:
        return 0.0
    return float(np.exp(np.mean(np.log(ratios))))


def speedup_range(fast: list[TimedRun], slow: list[TimedRun]) -> tuple[float, float]:
    """(worst, best) per-input speedup of ``fast`` over ``slow`` on
    commonly-finished inputs; (0, 0) when there are none."""
    pairs = _common_inputs(fast, slow)
    ratios = [a.throughput / b.throughput for a, b in pairs if b.throughput > 0]
    if not ratios:
        return (0.0, 0.0)
    return (min(ratios), max(ratios))
