"""Plain-text figure rendering.

The paper's figures are log-scale bar charts (Figures 6, 9), a scaling
line (Figure 7), and a stacked runtime-share bar (Figure 8). Since this
environment has no plotting stack, each is rendered as aligned ASCII:
log-scale bars become proportional bar rows with the numeric value
printed, the scaling line a two-column series, and the stacked bar a
percentage breakdown per input. The *data* behind each figure is also
returned in structured form so tests can assert on it.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["log_bar_chart", "line_series", "stacked_percent_bars"]

_BAR_WIDTH = 40


def _log_bar(value: float, lo: float, hi: float, width: int = _BAR_WIDTH) -> str:
    """A bar whose length is proportional to log10(value) in [lo, hi]."""
    if value <= 0:
        return ""
    span = math.log10(hi) - math.log10(lo) if hi > lo else 1.0
    frac = (math.log10(value) - math.log10(lo)) / span
    return "#" * max(1, round(frac * width))


def log_bar_chart(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    *,
    value_label: str = "throughput (vertices/s)",
) -> str:
    """Grouped log-scale bar chart.

    ``series[group][bar_name] = value``; zero/absent values render as
    ``T/O`` rows with no bar (the paper's "missing bars denote
    timeouts").
    """
    positives = [
        v for bars in series.values() for v in bars.values() if v and v > 0
    ]
    lo = min(positives) if positives else 1.0
    hi = max(positives) if positives else 10.0
    name_w = max(
        (len(b) for bars in series.values() for b in bars), default=4
    )
    lines = [title, "=" * len(title), f"(log scale, {value_label})"]
    for group, bars in series.items():
        lines.append("")
        lines.append(f"{group}:")
        for bar_name, value in bars.items():
            if value and value > 0:
                bar = _log_bar(value, lo, hi)
                lines.append(f"  {bar_name.ljust(name_w)} |{bar} {value:,.0f}")
            else:
                lines.append(f"  {bar_name.ljust(name_w)} |T/O")
    return "\n".join(lines)


def line_series(
    title: str,
    points: Sequence[tuple[float, float]],
    *,
    x_label: str = "threads",
    y_label: str = "throughput",
) -> str:
    """Two-column series with proportional log-scale bars (Figure 7)."""
    positives = [y for _, y in points if y > 0]
    lo, hi = (min(positives), max(positives)) if positives else (1.0, 10.0)
    lines = [title, "=" * len(title), f"{x_label:>8}  {y_label}"]
    for x, y in points:
        bar = _log_bar(y, lo, hi) if y > 0 else ""
        lines.append(f"{x:>8g}  |{bar} {y:,.0f}")
    return "\n".join(lines)


def stacked_percent_bars(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    *,
    width: int = 50,
) -> str:
    """Stacked percentage bars (Figure 8's per-stage runtime shares).

    ``rows[input][stage] = fraction``; each row renders one character
    block per 2 % with a legend of single-letter stage codes.
    """
    stages = []
    for parts in rows.values():
        for s in parts:
            if s not in stages:
                stages.append(s)
    codes = {}
    used = set()
    for s in stages:
        c = next((ch for ch in s if ch.upper() not in used), "?")
        codes[s] = c.upper()
        used.add(c.upper())
    name_w = max((len(n) for n in rows), default=4)
    lines = [title, "=" * len(title)]
    lines.append(
        "legend: " + ", ".join(f"{codes[s]}={s}" for s in stages)
    )
    for name, parts in rows.items():
        total = sum(parts.values())
        bar = ""
        shares: list[str] = []
        for s in stages:
            frac = parts.get(s, 0.0) / total if total > 0 else 0.0
            bar += codes[s] * round(frac * width)
            if frac > 0.005:
                shares.append(f"{codes[s]}:{100 * frac:.0f}%")
        lines.append(
            f"{name.ljust(name_w)} |{bar[:width].ljust(width)}| {'  '.join(shares)}"
        )
    return "\n".join(lines)
