"""One-shot evaluation report generator.

Runs the complete reproduced evaluation — every table and figure of the
paper plus the design-choice summaries — and writes a single markdown
report. This is how ``EXPERIMENTS.md``'s measured numbers are produced:

    python -m repro.harness.report [output.md]

Environment knobs are shared with the pytest benchmarks
(``REPRO_BENCH_INPUTS``, ``REPRO_BENCH_TIMEOUT``, ``REPRO_BENCH_REPEATS``).
"""

from __future__ import annotations

import os
import sys
import time

from repro._version import PAPER, __version__
from repro.harness.experiments import (
    SuiteConfig,
    fig6_throughput,
    fig7_scaling,
    fig8_runtime_breakdown,
    fig9_ablation_throughput,
    run_all_codes,
    table1_inputs,
    table2_runtimes,
    table3_bfs_counts,
    table4_stage_effectiveness,
    table5_ablation_bfs,
)
from repro.harness.throughput import penalized_geomean_throughput
from repro.harness.workloads import ALL_INPUTS, FAST_INPUTS

__all__ = ["generate_report", "main"]


def generate_report(config: SuiteConfig | None = None, *, echo: bool = True) -> str:
    """Run every experiment and return the full markdown report."""
    config = config or SuiteConfig()
    sections: list[str] = [
        "# F-Diam reproduction — full evaluation report",
        "",
        f"Reproduces: {PAPER}",
        f"Package version: {__version__}",
        f"Inputs: {len(config.inputs)} analogs; timeout {config.timeout_s:g}s; "
        f"{config.repeats} repetitions (median).",
        "",
    ]

    def add(title: str, text: str) -> None:
        sections.append(f"## {title}\n\n```\n{text}\n```\n")
        if echo:
            print(f"[report] finished: {title}", file=sys.stderr)

    t_start = time.perf_counter()
    add("Table 1 — input graphs", table1_inputs(config).text)

    runs = run_all_codes(config)
    add("Table 2 — runtimes", table2_runtimes(runs, config).text)
    add("Figure 6 — throughput", fig6_throughput(runs).text)

    penalized = {
        name: penalized_geomean_throughput(r, config.timeout_s)
        for name, r in runs.items()
    }
    ranking = "\n".join(
        f"  {name:14s} {value:>12,.0f} vertices/s"
        for name, value in sorted(penalized.items(), key=lambda kv: -kv[1])
    )
    add(
        "Overall ranking — timeout-penalized geomean throughput",
        f"(timeouts charged their full {config.timeout_s:g}s budget)\n" + ranking,
    )

    add("Table 3 — BFS traversals", table3_bfs_counts(runs).text)
    add("Table 4 — stage effectiveness", table4_stage_effectiveness(config).text)
    add("Figure 8 — runtime breakdown", fig8_runtime_breakdown(config).text)
    add("Figure 7 — modeled thread scaling", fig7_scaling(config).text)
    add("Table 5 — ablation BFS counts", table5_ablation_bfs(config).text)
    add("Figure 9 — ablation throughput", fig9_ablation_throughput(config).text)

    sections.append(
        f"_Total report generation time: "
        f"{time.perf_counter() - t_start:,.0f}s._\n"
    )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: write the report to the given path (or stdout)."""
    argv = sys.argv[1:] if argv is None else argv
    inputs = (
        FAST_INPUTS
        if os.environ.get("REPRO_BENCH_INPUTS", "all") == "fast"
        else ALL_INPUTS
    )
    config = SuiteConfig(
        inputs=inputs,
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "3")),
        timeout_s=float(os.environ.get("REPRO_BENCH_TIMEOUT", "90")),
    )
    report = generate_report(config)
    if argv:
        with open(argv[0], "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"report written to {argv[0]}", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
