"""Benchmark workloads — the 17 paper-input analogs plus subsets.

Thin layer over :mod:`repro.generators.registry` that the experiment
drivers and the pytest benchmarks consume. Besides the full suite it
defines two curated subsets:

* ``FAST_INPUTS`` — analogs that every algorithm (including the slow
  baselines) finishes quickly; used by default in CI-style runs.
* ``SMALL_WORLD_INPUTS`` / ``HIGH_DIAMETER_INPUTS`` — the two topology
  regimes the paper's analysis contrasts throughout §6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.generators.registry import (
    PAPER_ANALOGS,
    SCALE_ANALOGS,
    AnalogSpec,
    build_analog,
    build_scale_analog,
)
from repro.graph.csr import CSRGraph

__all__ = [
    "Workload",
    "ALL_INPUTS",
    "FAST_INPUTS",
    "SMALL_WORLD_INPUTS",
    "HIGH_DIAMETER_INPUTS",
    "SCALE_INPUTS",
    "get_workload",
    "iter_workloads",
]

#: All 17 inputs in the paper's Table 1 order.
ALL_INPUTS: tuple[str, ...] = tuple(PAPER_ANALOGS)

#: The paper's small-diameter, hub-heavy inputs (Winnow's best cases).
SMALL_WORLD_INPUTS: tuple[str, ...] = (
    "amazon0601",
    "as-skitter",
    "citationCiteSeer",
    "cit-Patents",
    "coPapersDBLP",
    "in-2004",
    "internet",
    "kron_g500-logn21",
    "rmat16.sym",
    "rmat22.sym",
    "soc-LiveJournal1",
    "uk-2002",
)

#: The paper's high-diameter, hub-free inputs (grids, triangulations,
#: road maps) — where Eliminate and Chain Processing matter.
HIGH_DIAMETER_INPUTS: tuple[str, ...] = (
    "2d-2e20.sym",
    "delaunay_n24",
    "europe_osm",
    "USA-road-d.NY",
    "USA-road-d.USA",
)

#: Inputs small/benign enough that even the naive-ish baselines finish
#: in seconds; the default for quick benchmark passes.
FAST_INPUTS: tuple[str, ...] = (
    "internet",
    "rmat16.sym",
    "USA-road-d.NY",
    "citationCiteSeer",
    "amazon0601",
)

#: The scale tier (compressed-store and out-of-core stress workloads):
#: the ``*-1M`` analogs at ~10^6 edges and the ``*-10M`` analogs at
#: ~10^7 edges, the latter generated through the chunked builders so
#: their COO never materializes. Not part of :data:`ALL_INPUTS` — they
#: have no paper Table 1 row and only the store/bench stages that opt
#: in should pay their build cost.
SCALE_INPUTS: tuple[str, ...] = tuple(SCALE_ANALOGS)


@dataclass(frozen=True)
class Workload:
    """One benchmark input: the built analog plus its paper metadata."""

    name: str
    graph: CSRGraph
    spec: AnalogSpec


def get_workload(name: str) -> Workload:
    """Build (cached) and wrap one analog (paper or scale tier)."""
    if name in SCALE_ANALOGS:
        return Workload(
            name=name, graph=build_scale_analog(name), spec=SCALE_ANALOGS[name]
        )
    return Workload(name=name, graph=build_analog(name), spec=PAPER_ANALOGS[name])


def iter_workloads(names: tuple[str, ...] | list[str] | None = None):
    """Yield workloads for the given input names (default: all 17)."""
    for name in names or ALL_INPUTS:
        yield get_workload(name)
