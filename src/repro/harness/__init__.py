"""Benchmark harness: workloads, timed runners, throughput rules, and
the experiment drivers reproducing every table and figure of the
paper's evaluation section (see DESIGN.md §4 for the index)."""

from repro.harness.experiments import (
    CODES,
    ExperimentReport,
    SuiteConfig,
    fig6_throughput,
    fig7_scaling,
    fig8_runtime_breakdown,
    fig9_ablation_throughput,
    run_all_codes,
    table1_inputs,
    table2_runtimes,
    table3_bfs_counts,
    table4_stage_effectiveness,
    table5_ablation_bfs,
    table_prep_reduction,
)
from repro.harness.figures import line_series, log_bar_chart, stacked_percent_bars
from repro.harness.runner import (
    DEFAULT_REPEATS,
    DEFAULT_TIMEOUT_S,
    TimedRun,
    run_timed,
)
from repro.harness.tables import format_cell, render_table
from repro.harness.throughput import (
    geomean_throughput,
    pairwise_speedup,
    penalized_geomean_throughput,
    speedup_range,
)
from repro.harness.workloads import (
    ALL_INPUTS,
    FAST_INPUTS,
    HIGH_DIAMETER_INPUTS,
    SMALL_WORLD_INPUTS,
    Workload,
    get_workload,
    iter_workloads,
)

__all__ = [
    "ALL_INPUTS",
    "CODES",
    "DEFAULT_REPEATS",
    "DEFAULT_TIMEOUT_S",
    "ExperimentReport",
    "FAST_INPUTS",
    "HIGH_DIAMETER_INPUTS",
    "SMALL_WORLD_INPUTS",
    "SuiteConfig",
    "TimedRun",
    "Workload",
    "fig6_throughput",
    "fig7_scaling",
    "fig8_runtime_breakdown",
    "fig9_ablation_throughput",
    "format_cell",
    "geomean_throughput",
    "get_workload",
    "iter_workloads",
    "line_series",
    "log_bar_chart",
    "pairwise_speedup",
    "penalized_geomean_throughput",
    "render_table",
    "run_all_codes",
    "run_timed",
    "speedup_range",
    "stacked_percent_bars",
    "table1_inputs",
    "table2_runtimes",
    "table3_bfs_counts",
    "table4_stage_effectiveness",
    "table5_ablation_bfs",
    "table_prep_reduction",
]
