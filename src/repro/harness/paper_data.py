"""The paper's published evaluation numbers, as data.

Transcribed verbatim from the paper (Bradley et al., ICPP 2025) so the
harness can print paper-vs-measured comparisons programmatically and
EXPERIMENTS.md's claims stay checkable:

* :data:`PAPER_TABLE1` — input sizes and CC diameters.
* :data:`PAPER_TABLE2` — runtimes in seconds (``None`` = timeout at the
  paper's 2.5 h cap).
* :data:`PAPER_TABLE3` — BFS-traversal counts.
* :data:`PAPER_TABLE4` — removal percentages per stage.
* :data:`PAPER_TABLE5` — BFS counts of the ablated versions.
* :data:`PAPER_HEADLINES` — the §6.1/§6.2 aggregate claims.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_HEADLINES",
    "compare_direction",
]

#: name -> (vertices, edges-with-back-edges, avg degree, max degree, CC diameter)
PAPER_TABLE1: dict[str, tuple[int, int, float, int, int]] = {
    "2d-2e20.sym": (1_048_576, 4_190_208, 4.0, 4, 2_046),
    "amazon0601": (403_394, 4_886_816, 12.1, 2_752, 25),
    "as-skitter": (1_696_415, 22_190_596, 13.1, 35_455, 31),
    "citationCiteSeer": (268_495, 2_313_294, 8.6, 1_318, 36),
    "cit-Patents": (3_774_768, 33_037_894, 8.8, 793, 26),
    "coPapersDBLP": (540_486, 30_491_458, 56.4, 3_299, 23),
    "delaunay_n24": (16_777_216, 100_663_202, 6.0, 26, 1_722),
    "europe_osm": (50_912_018, 108_109_320, 2.1, 13, 30_102),
    "in-2004": (1_382_908, 27_182_946, 19.7, 21_869, 43),
    "internet": (124_651, 387_240, 3.1, 151, 30),
    "kron_g500-logn21": (2_097_152, 182_081_864, 86.8, 213_904, 7),
    "rmat16.sym": (65_536, 967_866, 14.8, 569, 14),
    "rmat22.sym": (4_194_304, 65_660_814, 15.7, 3_687, 18),
    "soc-LiveJournal1": (4_847_571, 85_702_474, 17.7, 20_333, 20),
    "uk-2002": (18_520_486, 523_574_516, 28.3, 194_955, 45),
    "USA-road-d.NY": (264_346, 730_100, 2.8, 8, 720),
    "USA-road-d.USA": (23_947_347, 57_708_624, 2.4, 9, 8_440),
}

#: name -> {code: seconds | None (timeout)}
PAPER_TABLE2: dict[str, dict[str, float | None]] = {
    "2d-2e20.sym": {"F-Diam (ser)": 0.885, "F-Diam (par)": 0.138, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 3.285},
    "amazon0601": {"F-Diam (ser)": 0.169, "F-Diam (par)": 0.019, "iFUB (ser)": 259.004, "iFUB (par)": 94.916, "Graph-Diam.": 3.983},
    "as-skitter": {"F-Diam (ser)": 0.296, "F-Diam (par)": 0.051, "iFUB (ser)": 451.391, "iFUB (par)": 402.688, "Graph-Diam.": 5.959},
    "citationCiteSeer": {"F-Diam (ser)": 0.192, "F-Diam (par)": 0.026, "iFUB (ser)": 187.226, "iFUB (par)": 71.575, "Graph-Diam.": 2.098},
    "cit-Patents": {"F-Diam (ser)": 3.520, "F-Diam (par)": 0.209, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 705.259},
    "coPapersDBLP": {"F-Diam (ser)": 0.417, "F-Diam (par)": 0.028, "iFUB (ser)": 761.575, "iFUB (par)": 203.028, "Graph-Diam.": 3.426},
    "delaunay_n24": {"F-Diam (ser)": 2017.863, "F-Diam (par)": 116.999, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": None},
    "europe_osm": {"F-Diam (ser)": 52.169, "F-Diam (par)": 5.095, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 219.913},
    "in-2004": {"F-Diam (ser)": 1.018, "F-Diam (par)": 0.204, "iFUB (ser)": 728.197, "iFUB (par)": 336.903, "Graph-Diam.": 5.098},
    "internet": {"F-Diam (ser)": 0.011, "F-Diam (par)": 0.003, "iFUB (ser)": 46.813, "iFUB (par)": 26.922, "Graph-Diam.": 0.192},
    "kron_g500-logn21": {"F-Diam (ser)": 8.394, "F-Diam (par)": 1.175, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 210.495},
    "rmat16.sym": {"F-Diam (ser)": 0.009, "F-Diam (par)": 0.003, "iFUB (ser)": 14.985, "iFUB (par)": 12.893, "Graph-Diam.": 0.176},
    "rmat22.sym": {"F-Diam (ser)": 2.740, "F-Diam (par)": 0.132, "iFUB (ser)": 1772.274, "iFUB (par)": 1226.946, "Graph-Diam.": 58.329},
    "soc-LiveJournal1": {"F-Diam (ser)": 3.610, "F-Diam (par)": 0.262, "iFUB (ser)": 2024.930, "iFUB (par)": 1541.236, "Graph-Diam.": 448.948},
    "uk-2002": {"F-Diam (ser)": 19.369, "F-Diam (par)": 1.690, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 123.839},
    "USA-road-d.NY": {"F-Diam (ser)": 0.077, "F-Diam (par)": 0.053, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 0.650},
    "USA-road-d.USA": {"F-Diam (ser)": 18.548, "F-Diam (par)": 2.914, "iFUB (ser)": None, "iFUB (par)": None, "Graph-Diam.": 90.976},
}

#: name -> {code: BFS traversals | None (timeout)}
PAPER_TABLE3: dict[str, dict[str, int | None]] = {
    "2d-2e20.sym": {"F-Diam": 10, "iFUB": None, "Graph-Diameter": 6},
    "amazon0601": {"F-Diam": 15, "iFUB": 19, "Graph-Diameter": 35},
    "as-skitter": {"F-Diam": 44, "iFUB": 7, "Graph-Diameter": 767},
    "citationCiteSeer": {"F-Diam": 12, "iFUB": 22, "Graph-Diameter": 27},
    "cit-Patents": {"F-Diam": 788, "iFUB": None, "Graph-Diameter": 4154},
    "coPapersDBLP": {"F-Diam": 11, "iFUB": 38, "Graph-Diameter": 10},
    "delaunay_n24": {"F-Diam": 3151, "iFUB": None, "Graph-Diameter": None},
    "europe_osm": {"F-Diam": 22, "iFUB": None, "Graph-Diameter": 29},
    "in-2004": {"F-Diam": 102, "iFUB": 15, "Graph-Diameter": 122},
    "internet": {"F-Diam": 3, "iFUB": 14, "Graph-Diameter": 14},
    "kron_g500-logn21": {"F-Diam": 37, "iFUB": None, "Graph-Diameter": 264},
    "rmat16.sym": {"F-Diam": 3, "iFUB": 7, "Graph-Diameter": 158},
    "rmat22.sym": {"F-Diam": 67, "iFUB": 11, "Graph-Diameter": 19285},
    "soc-LiveJournal1": {"F-Diam": 198, "iFUB": 10, "Graph-Diameter": 1172},
    "uk-2002": {"F-Diam": 481, "iFUB": None, "Graph-Diameter": 1090},
    "USA-road-d.NY": {"F-Diam": 17, "iFUB": None, "Graph-Diameter": 26},
    "USA-road-d.USA": {"F-Diam": 26, "iFUB": None, "Graph-Diameter": 31},
}

#: name -> {stage: percentage of vertices removed}
PAPER_TABLE4: dict[str, dict[str, float]] = {
    "2d-2e20.sym": {"winnow": 75.74, "eliminate": 24.25, "chain": 0.00, "degree0": 0.00},
    "amazon0601": {"winnow": 99.98, "eliminate": 0.01, "chain": 0.00, "degree0": 0.00},
    "as-skitter": {"winnow": 99.89, "eliminate": 0.00, "chain": 0.04, "degree0": 0.00},
    "citationCiteSeer": {"winnow": 99.99, "eliminate": 0.00, "chain": 0.00, "degree0": 0.00},
    "cit-Patents": {"winnow": 99.72, "eliminate": 0.00, "chain": 0.15, "degree0": 0.00},
    "coPapersDBLP": {"winnow": 99.99, "eliminate": 0.00, "chain": 0.00, "degree0": 0.00},
    "delaunay_n24": {"winnow": 82.46, "eliminate": 17.53, "chain": 0.00, "degree0": 0.00},
    "europe_osm": {"winnow": 97.23, "eliminate": 0.85, "chain": 1.50, "degree0": 0.00},
    "in-2004": {"winnow": 97.89, "eliminate": 1.27, "chain": 0.83, "degree0": 0.00},
    "internet": {"winnow": 99.99, "eliminate": 0.00, "chain": 0.00, "degree0": 0.00},
    "kron_g500-logn21": {"winnow": 73.62, "eliminate": 0.00, "chain": 0.00, "degree0": 26.37},
    "rmat16.sym": {"winnow": 93.81, "eliminate": 0.00, "chain": 0.22, "degree0": 5.72},
    "rmat22.sym": {"winnow": 89.27, "eliminate": 0.00, "chain": 0.46, "degree0": 9.76},
    "soc-LiveJournal1": {"winnow": 99.92, "eliminate": 0.00, "chain": 0.02, "degree0": 0.01},
    "uk-2002": {"winnow": 99.67, "eliminate": 0.06, "chain": 0.05, "degree0": 0.20},
    "USA-road-d.NY": {"winnow": 98.79, "eliminate": 0.52, "chain": 0.67, "degree0": 0.00},
    "USA-road-d.USA": {"winnow": 71.11, "eliminate": 14.03, "chain": 14.23, "degree0": 0.00},
}

#: name -> {variant: BFS calls | None (timeout)}
PAPER_TABLE5: dict[str, dict[str, int | None]] = {
    "2d-2e20.sym": {"F-Diam": 10, "no Winnow": 12, "no Elim.": None, "no 'u'": 10},
    "amazon0601": {"F-Diam": 15, "no Winnow": 605, "no Elim.": 71, "no 'u'": 30},
    "as-skitter": {"F-Diam": 44, "no Winnow": 1382, "no Elim.": 92, "no 'u'": 44},
    "citationCiteSeer": {"F-Diam": 12, "no Winnow": 432, "no Elim.": 12, "no 'u'": 24},
    "cit-Patents": {"F-Diam": 788, "no Winnow": 11234, "no Elim.": 984, "no 'u'": 2597},
    "coPapersDBLP": {"F-Diam": 11, "no Winnow": 491, "no Elim.": 13, "no 'u'": 44},
    "delaunay_n24": {"F-Diam": 3151, "no Winnow": 6351, "no Elim.": None, "no 'u'": 4700},
    "europe_osm": {"F-Diam": 22, "no Winnow": 37, "no Elim.": None, "no 'u'": 17},
    "in-2004": {"F-Diam": 102, "no Winnow": 161, "no Elim.": 17722, "no 'u'": 105},
    "internet": {"F-Diam": 3, "no Winnow": 3021, "no Elim.": 3, "no 'u'": 1088},
    "kron_g500-logn21": {"F-Diam": 37, "no Winnow": 28372, "no Elim.": 37, "no 'u'": 25348},
    "rmat16.sym": {"F-Diam": 3, "no Winnow": 2095, "no Elim.": 3, "no 'u'": 151},
    "rmat22.sym": {"F-Diam": 67, "no Winnow": 57374, "no Elim.": 68, "no 'u'": 277},
    "soc-LiveJournal1": {"F-Diam": 198, "no Winnow": 12465, "no Elim.": 633, "no 'u'": 203},
    "uk-2002": {"F-Diam": 481, "no Winnow": 962, "no Elim.": 12914, "no 'u'": 764},
    "USA-road-d.NY": {"F-Diam": 17, "no Winnow": 26, "no Elim.": 1407, "no 'u'": 91},
    "USA-road-d.USA": {"F-Diam": 26, "no Winnow": 47, "no Elim.": None, "no 'u'": 105},
}

#: The paper's aggregate claims (§6.1, §6.2, §6.5).
PAPER_HEADLINES: dict[str, float] = {
    "fdiam_ser_vs_ifub_ser_geomean": 1267.0,
    "fdiam_ser_vs_ifub_par_geomean": 686.4,
    "fdiam_ser_vs_graphdiam_geomean": 14.6,
    "fdiam_par_vs_ifub_ser_geomean": 9518.8,
    "fdiam_par_vs_ifub_par_geomean": 5158.7,
    "fdiam_par_vs_graphdiam_geomean": 106.7,
    "par_over_ser_geomean": 7.67,
    "par_over_ser_min": 1.45,
    "par_over_ser_max": 20.74,
    "no_winnow_relative_speed": 0.02,
    "no_u_relative_speed": 0.17,
    "no_eliminate_relative_speed": 0.22,
}


def compare_direction(paper_value: float | None, measured: float | None) -> str:
    """Classify a paper-vs-measured pair: both timeout, both finite, or
    a divergence. Used by the comparison tables in the benchmarks."""
    if paper_value is None and measured is None:
        return "both T/O"
    if paper_value is None:
        return "paper T/O, we finish"
    if measured is None:
        return "we T/O, paper finishes"
    return "both finish"
