"""Shared scaffolding for the baseline diameter algorithms.

All baselines (paper §2, §5) are implemented against the same CSR
substrate and BFS engines as F-Diam so runtime comparisons measure
algorithmic differences, exactly as in the paper's evaluation where all
codes run on the same machine and graph representation.

Common behaviours provided here:

* a :class:`BaselineResult` mirroring F-Diam's result shape,
* per-connected-component driving (the paper: "F-Diam and all other
  tested codes support disconnected graphs and report the largest
  eccentricity among all connected components"),
* deadline handling — baselines can run for hours on inputs where
  F-Diam takes milliseconds (paper Table 2's ``T/O`` entries), so every
  BFS loop checks an optional deadline and raises
  :class:`~repro.errors.BenchmarkTimeout`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bfs.eccentricity import Engine
from repro.bfs.kernel import TraversalKernel
from repro.errors import AlgorithmError, BenchmarkTimeout
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph

__all__ = ["BaselineResult", "BaselineContext", "component_representatives"]


@dataclass(frozen=True)
class BaselineResult:
    """Result of a baseline diameter computation.

    Field meanings match :class:`repro.core.fdiam.DiameterResult`:
    ``diameter`` is the largest eccentricity over all connected
    components, and ``infinite`` flags disconnected inputs.
    """

    algorithm: str
    diameter: int
    connected: bool
    infinite: bool
    bfs_traversals: int


class BaselineContext:
    """Per-run helper bundling a traversal kernel, BFS counter, and deadline.

    All baselines share one :class:`~repro.bfs.kernel.TraversalKernel`
    per run, so they benefit from the same pooled workspace (epoch
    marks, recycled distance buffers) as the F-Diam driver, and the
    kernel's per-level deadline checks bound even a single huge BFS.
    """

    def __init__(
        self,
        graph: CSRGraph,
        engine: Engine = "parallel",
        deadline: float | None = None,
        batch_lanes: int = 0,
        workers: int = 1,
    ):
        if graph.num_vertices == 0:
            raise AlgorithmError("diameter of an empty graph is undefined")
        if workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {workers}")
        self.graph = graph
        self.engine_name = engine
        self.deadline = deadline
        self.batch_lanes = batch_lanes
        self.workers = workers
        self.bfs_count = 0
        self.kernel = TraversalKernel(
            graph, engine=engine, deadline=deadline, batch_lanes=batch_lanes
        )
        self.marks = self.kernel.workspace.marks
        self._executor = None
        self._executor_vetoed = False

    def check_deadline(self) -> None:
        """Raise :class:`BenchmarkTimeout` once the deadline has passed."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BenchmarkTimeout(
                f"baseline exceeded its time budget after {self.bfs_count} BFS calls"
            )

    def run_bfs(self, source: int, *, record_dist: bool = False):
        """One counted BFS through the configured engine."""
        self.check_deadline()
        self.bfs_count += 1
        return self.kernel.bfs(source, record_dist=record_dist)

    def executor(self):
        """The context's lazily built sweep executor, or ``None``.

        A single-worker lane request pins the ``bitparallel`` backend
        (exactly the pre-executor behaviour); a worker team goes
        through ``"auto"``. When auto resolves to the ``serial``
        backend the batched rounds would degrade the drivers' careful
        alternating selection to rounds of one, so the executor is
        vetoed and the callers fall back to their scalar loops.
        """
        if self._executor is None and not self._executor_vetoed:
            ex = self.kernel.sweep_executor(
                workers=self.workers,
                batch_lanes=self.batch_lanes if self.batch_lanes > 0 else 64,
                backend="bitparallel" if self.workers <= 1 else "auto",
            )
            if ex.backend == "serial":
                ex.close()
                self._executor_vetoed = True
            else:
                self._executor = ex
        return self._executor

    @property
    def sweep_batch(self) -> int:
        """Sources per batched bounding round; 0 keeps the scalar loop."""
        if self.batch_lanes <= 0 and self.workers <= 1:
            return 0
        ex = self.executor()
        return ex.round_size if ex is not None else 0

    def run_batch(self, sources):
        """One counted sweep round: exact distances from every source.

        Counts one BFS per source (the lanes are full logical
        traversals; only the edge gathers — and, with a worker team,
        the processes — are shared). Returns the ``(k, n)`` distance
        matrix and the round's
        :class:`~repro.parallel.sweep.SweepInfo`.
        """
        self.check_deadline()
        self.bfs_count += len(sources)
        return self.executor().distance_rows(sources)

    def release_dist(self, dist) -> None:
        """Recycle a finished distance buffer into the workspace pool."""
        self.kernel.workspace.release_dist(dist)

    def close(self) -> None:
        """Shut down the sweep executor (worker pool, shm segments)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def result(self, algorithm: str, diameter: int, connected: bool) -> BaselineResult:
        """Package a finished run."""
        return BaselineResult(
            algorithm=algorithm,
            diameter=diameter,
            connected=connected,
            infinite=not connected,
            bfs_traversals=self.bfs_count,
        )


def component_representatives(graph: CSRGraph) -> tuple[list[np.ndarray], bool]:
    """Vertex sets of all non-trivial components, plus connectivity.

    Components of size 1 have eccentricity 0 and never contribute to the
    reported CC diameter (unless the graph has no edges at all, in which
    case the diameter is 0 anyway), so baselines skip them.
    """
    cc = connected_components(graph)
    connected = cc.num_components <= 1
    groups = [
        cc.vertices_of(comp)
        for comp in range(cc.num_components)
        if cc.sizes[comp] >= 2
    ]
    return groups, connected
