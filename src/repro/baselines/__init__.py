"""Baseline exact-diameter algorithms (paper §2 and §5).

All baselines share the CSR substrate and BFS engines with F-Diam so
benchmark comparisons isolate the algorithmic differences:

* :func:`naive_diameter` — one BFS per vertex (the O(nm) strawman).
* :func:`ifub_diameter` — iFUB with 4-SWEEP start and fringe descent.
* :func:`graph_diameter` — Akiba-style triangle-inequality pruning
  (the paper's "Graph-Diameter" comparison code).
* :func:`korf_diameter` — Korf's early-terminating partial BFS.
* :func:`bounding_diameters` — Takes–Kosters two-sided bounds
  (extra reference point beyond the paper's set).
* :func:`sumsweep_diameter` — ExactSumSweep, simplified undirected
  variant (extra reference point beyond the paper's set).
"""

from repro.baselines.base import BaselineContext, BaselineResult
from repro.baselines.graph_diameter import graph_diameter
from repro.baselines.ifub import four_sweep, ifub_diameter
from repro.baselines.korf import korf_diameter
from repro.baselines.naive import naive_diameter
from repro.baselines.sumsweep import sumsweep_diameter
from repro.baselines.takes_kosters import bounding_diameters

__all__ = [
    "BaselineContext",
    "BaselineResult",
    "bounding_diameters",
    "four_sweep",
    "graph_diameter",
    "ifub_diameter",
    "korf_diameter",
    "naive_diameter",
    "sumsweep_diameter",
]
