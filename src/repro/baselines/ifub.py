"""iFUB — iterative Fringe Upper Bound (Crescenzi et al. 2013).

The first strong public baseline the paper compares against (§2, §5).
The algorithm:

1. **4-SWEEP** — from a starting vertex (the highest-degree one, as in
   the paper's description), two double sweeps locate a "central"
   vertex ``u`` whose eccentricity approximates the radius, and yield
   an initial lower bound ``lb`` from the sweep endpoints' true
   eccentricities.
2. **Fringe descent** — a BFS from ``u`` partitions vertices into
   fringe sets ``F_i`` (distance ``i`` from ``u``). Descending from
   ``i = ecc(u)``: compute the eccentricity of every vertex in ``F_i``
   and fold it into ``lb``. Any vertex pair spanning distance
   ``> 2(i-1)`` must have an endpoint in some ``F_j, j >= i``, so once
   ``lb >= 2(i-1)`` the remaining (inner) fringes cannot beat ``lb``
   and the algorithm stops with the exact diameter.

The per-fringe eccentricity BFS calls are what the paper's Table 3
counts, and what makes iFUB slow despite sometimes needing *fewer*
traversals than F-Diam ("fringe sets ... can result in fewer BFS calls
but are expensive to maintain").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineContext,
    BaselineResult,
    component_representatives,
)
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["ifub_diameter", "four_sweep"]


def _midpoint(ctx: BaselineContext, a: int, dist_a: np.ndarray, b: int) -> int:
    """A vertex halfway along some shortest ``a``–``b`` path.

    Uses the two distance arrays: ``v`` lies on a shortest path iff
    ``d(a,v) + d(v,b) = d(a,b)``; among those, pick one with
    ``d(a,v) = ⌊d(a,b)/2⌋``.
    """
    dist_b = ctx.run_bfs(b, record_dist=True).dist
    d_ab = int(dist_a[b])
    on_path = (dist_a >= 0) & (dist_b >= 0) & (dist_a + dist_b == d_ab)
    half = np.flatnonzero(on_path & (dist_a == d_ab // 2))
    ctx.release_dist(dist_b)
    return int(half[0]) if len(half) else a


def four_sweep(ctx: BaselineContext, start: int) -> tuple[int, int]:
    """Run the 4-SWEEP heuristic from ``start``.

    Returns ``(u, lb)``: a near-central vertex and a diameter lower
    bound. Performs 4 eccentricity BFS calls plus the midpoint-locating
    distance BFS calls.
    """
    r1 = ctx.run_bfs(start)
    a1 = int(r1.last_frontier[0])
    r2 = ctx.run_bfs(a1, record_dist=True)
    b1 = int(r2.last_frontier[0])
    lb = r2.eccentricity
    m1 = _midpoint(ctx, a1, r2.dist, b1)
    ctx.release_dist(r2.dist)

    r3 = ctx.run_bfs(m1)
    a2 = int(r3.last_frontier[0])
    r4 = ctx.run_bfs(a2, record_dist=True)
    b2 = int(r4.last_frontier[0])
    lb = max(lb, r4.eccentricity)
    m2 = _midpoint(ctx, a2, r4.dist, b2)
    ctx.release_dist(r4.dist)
    return m2, lb


def _ifub_component(ctx: BaselineContext, vertices: np.ndarray) -> int:
    """Exact diameter of one connected component via iFUB."""
    degrees = ctx.graph.degrees[vertices]
    start = int(vertices[int(np.argmax(degrees))])
    u, lb = four_sweep(ctx, start)

    root = ctx.run_bfs(u, record_dist=True)
    dist_u = root.dist
    ecc_u = root.eccentricity
    lb = max(lb, ecc_u)
    # Fringe sets F_i, processed from the outermost inward. Invariant at
    # the top of iteration i: every vertex at distance > i from u has
    # had its exact eccentricity folded into lb, so any still-uncovered
    # pair lies within B(u, i) and spans at most 2i. Once lb >= 2i the
    # remaining fringes cannot contain a better pair.
    for i in range(ecc_u, 0, -1):
        if lb >= 2 * i:
            break
        fringe = np.flatnonzero(dist_u == i)
        for v in fringe:
            ecc_v = ctx.run_bfs(int(v)).eccentricity
            if ecc_v > lb:
                lb = ecc_v
    ctx.release_dist(dist_u)
    return lb


def ifub_diameter(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    deadline: float | None = None,
) -> BaselineResult:
    """Exact diameter via iFUB (largest eccentricity over all components)."""
    ctx = BaselineContext(graph, engine, deadline)
    groups, connected = component_representatives(graph)
    best = 0
    for vertices in groups:
        best = max(best, _ifub_component(ctx, vertices))
    return ctx.result("iFUB", best, connected)
