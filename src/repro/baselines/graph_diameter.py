"""Graph-Diameter — triangle-inequality upper-bound pruning
(Akiba, Iwata, Kawata 2015).

The strongest baseline in the paper's evaluation (§2: "The algorithm
... maintains an upper bound on the eccentricity for each vertex and
updates it with further BFS traversals of the graph, skipping vertices
whose upper bounds are less than the lower bound of the diameter").

Procedure:

1. Double sweep from the highest-degree vertex for an initial diameter
   lower bound ``lb``.
2. Maintain ``ub[v]`` (eccentricity upper bound, initially ∞). Repeat:
   pick the unresolved vertex with the largest ``ub`` (ties: highest
   degree); compute its exact eccentricity with a distance-recording
   BFS; fold it into ``lb``; then update **every** vertex's bound via
   the triangle inequality ``ecc(x) <= d(x, v) + ecc(v)`` — this whole-
   graph bound refresh is the costly step the paper contrasts with its
   partial-BFS Eliminate.
3. Stop when every vertex has ``ub <= lb``; then ``lb`` is exact.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineContext,
    BaselineResult,
    component_representatives,
)
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["graph_diameter"]


def _component_diameter(ctx: BaselineContext, vertices: np.ndarray) -> int:
    """Exact diameter of one component via bound pruning."""
    graph = ctx.graph
    degrees = graph.degrees[vertices]
    start = int(vertices[int(np.argmax(degrees))])

    # Double sweep: far vertex from start, then its eccentricity.
    sweep1 = ctx.run_bfs(start)
    far = int(sweep1.last_frontier[0])
    sweep2 = ctx.run_bfs(far, record_dist=True)
    lb = sweep2.eccentricity

    ub = np.full(graph.num_vertices, np.iinfo(np.int64).max, dtype=np.int64)
    in_comp = np.zeros(graph.num_vertices, dtype=bool)
    in_comp[vertices] = True
    # The double sweep already yields bounds from `far`.
    reached = sweep2.dist >= 0
    ub[reached] = sweep2.dist[reached] + lb
    ub[far] = lb
    ub[start] = sweep1.eccentricity

    while True:
        unresolved = in_comp & (ub > lb)
        if not unresolved.any():
            return lb
        ctx.check_deadline()
        cand = np.flatnonzero(unresolved)
        v = int(cand[int(np.argmax(ub[cand]))])
        res = ctx.run_bfs(v, record_dist=True)
        ecc_v = res.eccentricity
        lb = max(lb, ecc_v)
        reached = res.dist >= 0
        np.minimum(ub, np.where(reached, res.dist + ecc_v, ub), out=ub)
        ub[v] = ecc_v


def graph_diameter(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    deadline: float | None = None,
) -> BaselineResult:
    """Exact diameter via Akiba-style upper-bound pruning."""
    ctx = BaselineContext(graph, engine, deadline)
    groups, connected = component_representatives(graph)
    best = 0
    for vertices in groups:
        best = max(best, _component_diameter(ctx, vertices))
    return ctx.result("Graph-Diameter", best, connected)
