"""SumSweep — exact diameter via sum-sweep seeding + two-sided bounds.

The SumSweep family (Borassi, Crescenzi, Habib, Kosters, Marino, Takes,
2015) is the other well-known BFS-bounding diameter tool besides iFUB
and BoundingDiameters; the F-Diam paper's lineage discussion groups all
of them under "update lower and upper bounds of eccentricities across
the graph as the computation progresses". It is included here as a
sixth baseline for completeness of the comparison field.

This is the undirected *ExactSumSweep* scheme, simplified:

1. **SumSweep phase** — ``k`` initial BFS sweeps. The first source is
   the max-degree vertex; each later source is the not-yet-swept vertex
   maximizing the accumulated distance sum ``S(v) = Σ_s d(s, v)`` (a
   cheap closeness-centrality proxy: large sum ⇒ peripheral ⇒ likely
   large eccentricity). Every sweep tightens both per-vertex bounds:
   ``l(v) ≥ d(s, v)`` and ``u(v) ≤ d(s, v) + ecc(s)``.
2. **Bounding phase** — while any vertex's upper bound exceeds the
   diameter lower bound, evaluate the unresolved vertex with the
   largest upper bound (ties: larger distance sum) and refine.

Exactness follows from the bound invariants alone; the SumSweep seeding
only determines how quickly the candidate set collapses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineContext,
    BaselineResult,
    component_representatives,
)
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["sumsweep_diameter"]

#: Number of seeding sweeps (the original paper uses a handful; 6 keeps
#: the heuristic meaningful on the smallest analog components too).
DEFAULT_SWEEPS = 6


def _component_diameter(
    ctx: BaselineContext, vertices: np.ndarray, num_sweeps: int
) -> int:
    graph = ctx.graph
    n = graph.num_vertices
    in_comp = np.zeros(n, dtype=bool)
    in_comp[vertices] = True

    ecc_lb = np.zeros(n, dtype=np.int64)
    ecc_ub = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    dist_sum = np.zeros(n, dtype=np.int64)
    swept = np.zeros(n, dtype=bool)
    diam_lb = 0

    def refine(source: int) -> None:
        nonlocal diam_lb
        res = ctx.run_bfs(source, record_dist=True)
        ecc_s = res.eccentricity
        diam_lb = max(diam_lb, ecc_s)
        dist = res.dist
        reached = dist >= 0
        np.maximum(ecc_lb, np.where(reached, dist, ecc_lb), out=ecc_lb)
        np.minimum(ecc_ub, np.where(reached, dist + ecc_s, ecc_ub), out=ecc_ub)
        dist_sum[reached] += dist[reached]
        ecc_lb[source] = ecc_ub[source] = ecc_s
        swept[source] = True
        ctx.release_dist(dist)

    # --- SumSweep seeding phase ---------------------------------------
    degrees = graph.degrees[vertices]
    refine(int(vertices[int(np.argmax(degrees))]))
    for _ in range(num_sweeps - 1):
        cand = in_comp & ~swept
        if not cand.any():
            break
        ids = np.flatnonzero(cand)
        refine(int(ids[int(np.argmax(dist_sum[ids]))]))

    # --- Bounding phase ------------------------------------------------
    batch = ctx.sweep_batch
    while True:
        unresolved = in_comp & (ecc_ub > diam_lb) & (ecc_lb != ecc_ub)
        settled = in_comp & (ecc_lb == ecc_ub)
        if settled.any():
            diam_lb = max(diam_lb, int(ecc_lb[settled].max()))
            unresolved = in_comp & (ecc_ub > diam_lb) & (ecc_lb != ecc_ub)
        if not unresolved.any():
            return diam_lb
        ctx.check_deadline()
        ids = np.flatnonzero(unresolved)
        if batch > 0:
            # Batched round: the top candidates in the scalar loop's own
            # order (upper bound descending, distance sum descending),
            # all evaluated in one executor round.
            order = np.lexsort((-dist_sum[ids], -ecc_ub[ids]))
            picks = ids[order][:batch]
            dist, sweep = ctx.run_batch(picks)
            for j, v in enumerate(picks):
                ecc_v = int(sweep.eccentricities[j])
                diam_lb = max(diam_lb, ecc_v)
                d = dist[j]
                reached = d >= 0
                np.maximum(ecc_lb, np.where(reached, d, ecc_lb), out=ecc_lb)
                np.minimum(ecc_ub, np.where(reached, d + ecc_v, ecc_ub), out=ecc_ub)
                dist_sum[reached] += d[reached]
                ecc_lb[v] = ecc_ub[v] = ecc_v
                swept[v] = True
            continue
        # Largest upper bound first; break ties toward peripheral
        # vertices (largest distance sum).
        best_ub = ecc_ub[ids].max()
        ties = ids[ecc_ub[ids] == best_ub]
        refine(int(ties[int(np.argmax(dist_sum[ties]))]))


def sumsweep_diameter(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    num_sweeps: int = DEFAULT_SWEEPS,
    deadline: float | None = None,
    batch_lanes: int = 0,
    workers: int = 1,
) -> BaselineResult:
    """Exact diameter via the (undirected, simplified) ExactSumSweep.

    ``batch_lanes > 0`` keeps the seeding sweeps sequential (each seed
    choice depends on the previous sweeps' distance sums) but runs the
    bounding phase in bit-parallel rounds of up to that many vertices —
    exact distances for all of them from one shared-gather sweep.
    ``workers > 1`` additionally spreads each bounding round over a
    shared-memory worker pool (see :mod:`repro.parallel.sweep`); every
    update is the same sound bound refinement, so the diameter is exact
    on any backend.
    """
    ctx = BaselineContext(graph, engine, deadline, batch_lanes=batch_lanes, workers=workers)
    try:
        groups, connected = component_representatives(graph)
        best = 0
        for vertices in groups:
            best = max(best, _component_diameter(ctx, vertices, num_sweeps))
        return ctx.result("SumSweep", best, connected)
    finally:
        ctx.close()
