"""Naive all-eccentricity diameter computation.

The textbook APSP-style approach the paper's introduction argues
against: one BFS per vertex, diameter = maximum level count. ``O(nm)``
always — no pruning, no bounds. Serves as (a) the correctness oracle
for every other algorithm on small graphs and (b) the reference point
demonstrating why traversal-minimizing algorithms matter.
"""

from __future__ import annotations

from repro.baselines.base import BaselineContext, BaselineResult
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["naive_diameter"]


def naive_diameter(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    deadline: float | None = None,
) -> BaselineResult:
    """Compute the diameter with one BFS per vertex.

    Respects the shared conventions: reports the largest eccentricity
    over all connected components and flags disconnected inputs.
    """
    ctx = BaselineContext(graph, engine, deadline)
    n = graph.num_vertices
    best = 0
    max_visited = 0
    for v in range(n):
        res = ctx.run_bfs(v)
        best = max(best, res.eccentricity)
        max_visited = max(max_visited, res.visited_count)
    connected = max_visited == n if n else True
    return ctx.result("naive", best, connected)
