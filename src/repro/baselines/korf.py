"""Korf's partial-BFS diameter algorithm (SoCS 2021).

The paper's related work (§2) describes it: "larger eccentricities can
only be found between two vertices that have not been starting vertices
of earlier BFS calls. This involves maintaining a set S of active
vertices. Each BFS traversal terminates as soon as all vertices in S
have been visited. Upon termination, the starting vertex is removed
from S."

Rationale: the diameter is ``max d(x, y)`` over all pairs; processing
sources in some order, pair ``(x, y)`` is accounted for when the first
of the two runs as a source. A BFS from source ``v`` therefore only
needs to reach the vertices still in ``S`` — it can stop early once all
of them are visited, and the largest level at which a member of ``S``
was discovered is ``max_{y in S} d(v, y)``.

F-Diam deliberately does *not* adopt this early termination ("we found
early termination to hurt performance as it conflicts with our new
techniques"), which is exactly why it belongs in the baseline suite.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineContext,
    BaselineResult,
    component_representatives,
)
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["korf_diameter"]


def _component_diameter(ctx: BaselineContext, vertices: np.ndarray) -> int:
    n = ctx.graph.num_vertices
    in_s = np.zeros(n, dtype=bool)
    in_s[vertices] = True
    remaining = len(vertices)
    best = 0

    for v in vertices:
        v = int(v)
        if remaining <= 1:
            break
        ctx.check_deadline()
        # Partial BFS from v that stops once every member of S is seen —
        # the kernel's level callback implements the early termination.
        ctx.bfs_count += 1
        to_find = remaining - (1 if in_s[v] else 0)
        state = {"best": best, "to_find": to_find}

        def on_level(level: int, frontier: np.ndarray) -> object:
            hits = int(np.count_nonzero(in_s[frontier]))
            if hits:
                state["best"] = max(state["best"], level)
                state["to_find"] -= hits
            return False if state["to_find"] <= 0 else None

        if to_find > 0:
            ctx.kernel.levels([v], None, on_level=on_level)
        best = state["best"]
        in_s[v] = False
        remaining -= 1
    return best


def korf_diameter(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    deadline: float | None = None,
) -> BaselineResult:
    """Exact diameter via Korf's early-terminating partial BFS.

    The ``engine`` parameter is accepted for interface uniformity; the
    early-termination logic requires per-level set inspection, which is
    implemented on the vectorized step for both settings.
    """
    ctx = BaselineContext(graph, engine, deadline)
    groups, connected = component_representatives(graph)
    best = 0
    for vertices in groups:
        best = max(best, _component_diameter(ctx, vertices))
    return ctx.result("Korf", best, connected)
