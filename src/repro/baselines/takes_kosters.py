"""BoundingDiameters (Takes & Kosters 2011).

An additional reference baseline beyond the paper's comparison set —
the classic two-sided-bounds algorithm that teexGraph popularized.
Included because the paper's related-work family ("update lower and
upper bounds of eccentricities across the graph as the computation
progresses") is best represented by it, and it gives the benchmarks a
second bound-propagation point of comparison.

Per vertex it maintains ``[ecc_lb, ecc_ub]``; each exact eccentricity
computation of a chosen vertex ``v`` refines every other vertex ``w``
through both triangle inequalities::

    ecc(w) >= max(ecc(v) - d(v, w), d(v, w))
    ecc(w) <= ecc(v) + d(v, w)

A vertex is *resolved* when its bounds meet, or when it provably cannot
affect the diameter (``ecc_ub <= diameter_lb``). Selection alternates
between the unresolved vertex with the largest upper bound (diameter
hunter) and the one with the smallest lower bound (center-like vertex
that tightens many upper bounds) — the "interchanging" strategy of the
original paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineContext,
    BaselineResult,
    component_representatives,
)
from repro.bfs.eccentricity import Engine
from repro.graph.csr import CSRGraph

__all__ = ["bounding_diameters"]


def _interleave_extremes(
    cand: np.ndarray, ecc_lb: np.ndarray, ecc_ub: np.ndarray, lanes: int
) -> np.ndarray:
    """Up to ``lanes`` candidates, alternating largest-ub / smallest-lb.

    The batched analog of the scalar loop's "interchanging" selection:
    the vertices one round picks are the ones the scalar loop would
    have picked next, before any of this round's refinements.
    """
    high = cand[np.argsort(-ecc_ub[cand], kind="stable")]
    low = cand[np.argsort(ecc_lb[cand], kind="stable")]
    interleaved = np.empty(2 * len(cand), dtype=cand.dtype)
    interleaved[0::2] = high
    interleaved[1::2] = low
    _, first = np.unique(interleaved, return_index=True)
    return interleaved[np.sort(first)][:lanes]


def _refine(
    ecc_lb: np.ndarray, ecc_ub: np.ndarray, v: int, ecc_v: int, dist: np.ndarray
) -> None:
    reached = dist >= 0
    np.maximum(
        ecc_lb,
        np.where(reached, np.maximum(ecc_v - dist, dist), ecc_lb),
        out=ecc_lb,
    )
    np.minimum(ecc_ub, np.where(reached, ecc_v + dist, ecc_ub), out=ecc_ub)
    ecc_lb[v] = ecc_ub[v] = ecc_v


def _component_diameter(ctx: BaselineContext, vertices: np.ndarray) -> int:
    graph = ctx.graph
    n = graph.num_vertices
    ecc_lb = np.zeros(n, dtype=np.int64)
    ecc_ub = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    in_comp = np.zeros(n, dtype=bool)
    in_comp[vertices] = True

    diam_lb = 0
    pick_high = True  # alternate: largest ub / smallest lb
    batch = ctx.sweep_batch
    while True:
        unresolved = in_comp & (ecc_ub > diam_lb) & (ecc_lb != ecc_ub)
        # A vertex with matched bounds still contributes its exact value.
        settled = in_comp & (ecc_lb == ecc_ub)
        if settled.any():
            diam_lb = max(diam_lb, int(ecc_lb[settled].max()))
            unresolved = in_comp & (ecc_ub > diam_lb) & (ecc_lb != ecc_ub)
        if not unresolved.any():
            return diam_lb
        ctx.check_deadline()
        cand = np.flatnonzero(unresolved)
        if batch > 0:
            picks = _interleave_extremes(cand, ecc_lb, ecc_ub, batch)
            dist, sweep = ctx.run_batch(picks)
            for j, v in enumerate(picks):
                ecc_v = int(sweep.eccentricities[j])
                diam_lb = max(diam_lb, ecc_v)
                _refine(ecc_lb, ecc_ub, int(v), ecc_v, dist[j])
            continue
        if pick_high:
            v = int(cand[int(np.argmax(ecc_ub[cand]))])
        else:
            v = int(cand[int(np.argmin(ecc_lb[cand]))])
        pick_high = not pick_high

        res = ctx.run_bfs(v, record_dist=True)
        ecc_v = res.eccentricity
        diam_lb = max(diam_lb, ecc_v)
        dist = res.dist
        _refine(ecc_lb, ecc_ub, v, ecc_v, dist)
        ctx.release_dist(dist)


def bounding_diameters(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    deadline: float | None = None,
    batch_lanes: int = 0,
    workers: int = 1,
) -> BaselineResult:
    """Exact diameter via Takes–Kosters BoundingDiameters.

    ``batch_lanes > 0`` evaluates up to that many selected vertices per
    bit-parallel sweep (shared edge gathers, see
    :mod:`repro.bfs.bitparallel`) and refines the bounds from all of
    their exact distance rows; ``workers > 1`` spreads each round over
    a shared-memory worker pool (:mod:`repro.parallel.sweep`). Every
    update is the same sound triangle inequality, so the diameter is
    exact on any backend.
    """
    ctx = BaselineContext(graph, engine, deadline, batch_lanes=batch_lanes, workers=workers)
    try:
        groups, connected = component_representatives(graph)
        best = 0
        for vertices in groups:
            best = max(best, _component_diameter(ctx, vertices))
        return ctx.result("BoundingDiameters", best, connected)
    finally:
        ctx.close()
