"""Load → warm run → save orchestration around the core entry points.

:func:`fdiam_cached` and :func:`spectrum_cached` are what the CLI's
``--cache DIR`` flag routes through: they key the store by the graph's
content digest, hand any artifacts to the warm seams of
:func:`repro.core.fdiam.fdiam_with_state` /
:func:`repro.core.extremes.eccentricity_spectrum`, and write a fresh
sidecar after a cold (or distrusted-warm) run.

The cold ``fdiam`` path here runs the planner-tweaked *plain* driver
rather than the component-splitting prep pipeline: artifact collection
needs the final :class:`~repro.core.state.FDiamState` of a whole-graph
run (per-component status arrays would not line up with the original
vertex ids), and on the pinned graphs the payoff gate reduces the prep
pipeline to exactly this shape anyway.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bfs.bitparallel import lane_distances
from repro.cache.store import WarmArtifacts, WarmStartStore
from repro.core.config import FDiamConfig
from repro.core.extremes import EccentricitySpectrum, eccentricity_spectrum
from repro.core.fdiam import DiameterResult, fdiam_with_state
from repro.core.state import FDiamState
from repro.core.stats import Reason
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest
from repro.prep.pipeline import gate_spec
from repro.prep.plan import PrepSpec, plan_component

__all__ = ["CacheInfo", "fdiam_cached", "spectrum_cached"]

#: Landmark rows a cold run persists: enough to seed spectrum bounds
#: and the query memo meaningfully, cheap enough (one 64-lane sweep)
#: to never dominate the run being cached.
_LANDMARKS = 4


@dataclass(frozen=True)
class CacheInfo:
    """What the cache layer did around one run."""

    digest: str
    hit: bool  # a usable sidecar existed for this digest
    verified: bool  # the warm run's witness reproduced the cached diameter
    saved: bool  # a (new or refreshed) sidecar was written
    path: Path | None  # sidecar location, when one was read or written


def _plan_base_config(
    graph: CSRGraph, config: FDiamConfig
) -> tuple[FDiamConfig, str]:
    """Resolve ``config.prep`` into plain-driver tweaks + a plan record.

    Mirrors the prep pipeline's gated short-circuit: the planner's
    engine verdict (lanes, chain-tip batching) survives, the structural
    stages do not run here (see module docstring). The returned JSON
    string is persisted in the sidecar so a later inspection can see
    which verdict the cached run was produced under.
    """
    base = config.ablate(prep="off")
    spec = PrepSpec.parse(config.prep)
    record: dict = {"spec": list(spec.tokens)}
    if spec.enabled and spec.plan:
        gated_spec, stages_gated = gate_spec(graph, spec)
        record["stages_gated"] = list(stages_gated)
        plan = plan_component(
            graph, spec=gated_spec, requested_lanes=base.bfs_batch_lanes
        )
        base = base.ablate(
            bfs_batch_lanes=plan.batch_lanes,
            chain_tip_batch=plan.chain_tip_batch,
        )
        record["plan"] = {
            "batch_lanes": plan.batch_lanes,
            "reorder": plan.reorder,
            "estimated_diameter": plan.estimated_diameter,
            "chain_tip_batch": plan.chain_tip_batch,
        }
    return base, json.dumps(record, sort_keys=True)


def _pick_witness(state: FDiamState, diameter: int) -> int:
    """A vertex whose eccentricity provably equals ``diameter``.

    Preferably one whose eccentricity was explicitly evaluated
    (COMPUTED); the bound-realizing vertex of a completed run always is,
    but fall back through any exact-status vertex to the max-degree
    start so a sidecar can be written for degenerate runs too.
    """
    status = state.status
    exact = status == diameter
    computed = exact & (state.reason == Reason.COMPUTED)
    if computed.any():
        return int(np.flatnonzero(computed)[0])
    if exact.any():
        return int(np.flatnonzero(exact)[0])
    return state.graph.max_degree_vertex()


def _collect_landmarks(
    graph: CSRGraph,
    status: np.ndarray,
    reason: np.ndarray,
    witness: int,
    *,
    pool=None,
    check=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A handful of full distance rows from structurally distinct spots.

    One 64-lane sweep over the deduplicated picks — the max-degree hub,
    the diameter witness (peripheral), and the most central explicitly
    evaluated vertices — so persisting them costs a single extra
    gather pass on the run being cached.
    """
    n = graph.num_vertices
    picks: list[int] = [graph.max_degree_vertex(), witness]
    computed = np.flatnonzero((reason == Reason.COMPUTED) & (status >= 0))
    if len(computed):
        central = computed[np.argsort(status[computed], kind="stable")]
        picks.extend(int(v) for v in central[: 2 * _LANDMARKS])
    seen: set[int] = set()
    sources = [
        v for v in picks if 0 <= v < n and not (v in seen or seen.add(v))
    ][:_LANDMARKS]
    dist, sweep = lane_distances(
        graph,
        np.asarray(sources, dtype=np.int64),
        pool=pool,
        check=check,
    )
    return (
        np.asarray(sources, dtype=np.int64),
        dist,
        np.asarray(sweep.eccentricities, dtype=np.int64),
    )


def _artifacts_from_run(
    digest: str,
    graph: CSRGraph,
    result: DiameterResult,
    state: FDiamState,
    prep_plan: str,
) -> WarmArtifacts:
    """Snapshot a completed plain run into the sidecar schema."""
    witness = _pick_witness(state, result.diameter)
    sources, dists, eccs = _collect_landmarks(
        graph,
        state.status,
        state.reason,
        witness,
        pool=state.kernel.workspace,
        check=state.kernel.check_deadline,
    )
    return WarmArtifacts(
        digest=digest,
        num_vertices=graph.num_vertices,
        diameter=result.diameter,
        connected=result.connected,
        witness=witness,
        status=state.status.copy(),
        reason=state.reason.copy(),
        winnow_center=(
            state.winnow_center if state.winnow_center is not None else -1
        ),
        winnow_radius=state.winnow_radius,
        winnow_visited=state.winnow_visited.copy(),
        winnow_frontier=np.asarray(state.winnow_frontier, dtype=np.int64),
        landmark_sources=sources,
        landmark_dists=dists,
        landmark_eccs=eccs,
        prep_plan=prep_plan,
    )


def fdiam_cached(
    graph: CSRGraph,
    config: FDiamConfig | None = None,
    *,
    store: WarmStartStore,
    deadline: float | None = None,
    save: bool = True,
) -> tuple[DiameterResult, CacheInfo]:
    """Exact diameter through the warm-start store.

    A usable sidecar seeds :func:`fdiam_with_state`'s warm path (one
    verifying witness BFS instead of the whole pipeline); a miss — or a
    distrusted sidecar — runs cold and, with ``save``, (re)writes the
    sidecar from the finished state. The diameter is exact in every
    branch; only the traversal count varies.
    """
    config = config or FDiamConfig()
    digest = graph_digest(graph)
    art = store.load(graph, digest=digest)
    if art is not None:
        result, state = fdiam_with_state(
            graph, config.ablate(prep="off"), deadline=deadline, warm=art
        )
        path = store.path_for(digest)
        saved = False
        if not result.stats.warm_verified and save:
            # The fallback ran the full cold pipeline, so its state is
            # sidecar-grade: replace the inconsistent artifacts.
            path = store.save(
                _artifacts_from_run(digest, graph, result, state, art.prep_plan)
            )
            saved = True
        return result, CacheInfo(
            digest=digest,
            hit=True,
            verified=result.stats.warm_verified,
            saved=saved,
            path=path,
        )
    base, prep_plan = _plan_base_config(graph, config)
    result, state = fdiam_with_state(graph, base, deadline=deadline)
    path = None
    saved = False
    if save:
        path = store.save(
            _artifacts_from_run(digest, graph, result, state, prep_plan)
        )
        saved = True
    return result, CacheInfo(
        digest=digest, hit=False, verified=False, saved=saved, path=path
    )


def spectrum_cached(
    graph: CSRGraph,
    *,
    store: WarmStartStore,
    engine: str = "parallel",
    batch_lanes: int = 0,
    auto_fallback: bool = True,
    save: bool = True,
    workers: int = 1,
) -> tuple[EccentricitySpectrum, CacheInfo]:
    """Exact eccentricity spectrum through the warm-start store.

    Warm artifacts seed the two-sided bounds (closing every vertex when
    a previous spectrum wrote the sidecar); afterwards the *exact*
    spectrum upgrades the sidecar — ``ecc_lower == ecc_upper`` per
    vertex — so the next ``fdiam`` or spectrum run on this graph starts
    from a complete certificate. A sidecar written by a spectrum run
    alone is also a full ``fdiam`` warm start (status = exact
    eccentricities, witness = a diameter-realizing vertex).
    """
    digest = graph_digest(graph)
    art = store.load(graph, digest=digest)
    hit = art is not None
    spectrum = eccentricity_spectrum(
        graph,
        engine=engine,
        batch_lanes=batch_lanes,
        auto_fallback=auto_fallback,
        warm=art,
        workers=workers,
    )
    path = store.path_for(digest) if hit else None
    saved = False
    if save:
        ecc = np.asarray(spectrum.eccentricities, dtype=np.int64)
        if art is None:
            witness = (
                int(spectrum.periphery[0])
                if len(spectrum.periphery)
                else graph.max_degree_vertex()
            )
            reason = np.full(graph.num_vertices, Reason.COMPUTED, dtype=np.uint8)
            sources, dists, eccs = _collect_landmarks(
                graph, ecc, reason, witness
            )
            art = WarmArtifacts(
                digest=digest,
                num_vertices=graph.num_vertices,
                diameter=spectrum.diameter,
                connected=spectrum.connected,
                witness=witness,
                status=ecc.copy(),
                reason=reason,
                landmark_sources=sources,
                landmark_dists=dists,
                landmark_eccs=eccs,
            )
        art.ecc_lower = ecc.copy()
        art.ecc_upper = ecc.copy()
        path = store.save(art)
        saved = True
    return spectrum, CacheInfo(
        digest=digest, hit=hit, verified=False, saved=saved, path=path
    )
