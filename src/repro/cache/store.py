"""Content-addressed sidecar store for warm-start artifacts.

One ``.npz`` sidecar per graph digest, holding everything a later run
can reuse (DESIGN.md §10 documents the schema and the correctness
argument):

* the headline result: diameter, connectivity, and the witness vertex
  that realized the diameter in the cold run;
* the final per-vertex status/reason arrays — each numeric status is a
  proven eccentricity upper bound for the byte-identical graph;
* the winnow ball (centre, radius, visited mask, saved frontier) so a
  warm run can resume incremental extension without re-growing it;
* landmark distance vectors (a handful of full BFS rows from central
  and peripheral vertices) for spectrum seeding and query memoization;
* optional exact eccentricity bounds from a spectrum run;
* the serialized planner verdict of the prep pipeline.

Load is defensive: a truncated, corrupted, or digest-mismatched file
degrades to ``None`` (cold run) with a warning — never an exception.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest

__all__ = ["SCHEMA_VERSION", "WarmArtifacts", "WarmStartStore"]

#: Bumped whenever the sidecar layout changes; loaders reject other
#: versions (cold run) instead of guessing at field meanings.
SCHEMA_VERSION = 1

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_DIST = np.empty((0, 0), dtype=np.int32)


@dataclass
class WarmArtifacts:
    """Everything one run persists for the next run on the same graph.

    ``status``/``reason`` follow the :mod:`repro.core.state` encoding.
    ``winnow_center == -1`` means no ball was recorded. The landmark
    block holds ``k`` full distance rows (``int32``, shape ``(k, n)``)
    with their sources and eccentricities; ``ecc_lower``/``ecc_upper``
    are empty unless a spectrum run filled them (in which case they are
    exact and equal).
    """

    digest: str
    num_vertices: int
    diameter: int
    connected: bool
    witness: int
    status: np.ndarray
    reason: np.ndarray
    winnow_center: int = -1
    winnow_radius: int = 0
    winnow_visited: np.ndarray | None = None
    winnow_frontier: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    landmark_sources: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    landmark_dists: np.ndarray = field(default_factory=lambda: _EMPTY_DIST)
    landmark_eccs: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    ecc_lower: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    ecc_upper: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    prep_plan: str = ""

    @property
    def infinite(self) -> bool:
        """Convention mirror of :class:`DiameterResult`."""
        return not self.connected

    @property
    def plan(self) -> dict:
        """The serialized planner verdict as a dict (empty if none)."""
        if not self.prep_plan:
            return {}
        try:
            return json.loads(self.prep_plan)
        except json.JSONDecodeError:
            return {}

    def to_npz_dict(self) -> dict[str, np.ndarray]:
        """Flatten into the ``np.savez`` payload."""
        visited = (
            self.winnow_visited
            if self.winnow_visited is not None
            else np.zeros(0, dtype=bool)
        )
        return {
            "schema": np.int64(SCHEMA_VERSION),
            "digest": np.array(self.digest),
            "num_vertices": np.int64(self.num_vertices),
            "diameter": np.int64(self.diameter),
            "connected": np.bool_(self.connected),
            "witness": np.int64(self.witness),
            "status": np.asarray(self.status, dtype=np.int64),
            "reason": np.asarray(self.reason, dtype=np.uint8),
            "winnow_center": np.int64(self.winnow_center),
            "winnow_radius": np.int64(self.winnow_radius),
            "winnow_visited": np.asarray(visited, dtype=bool),
            "winnow_frontier": np.asarray(self.winnow_frontier, dtype=np.int64),
            "landmark_sources": np.asarray(
                self.landmark_sources, dtype=np.int64
            ),
            "landmark_dists": np.asarray(self.landmark_dists, dtype=np.int32),
            "landmark_eccs": np.asarray(self.landmark_eccs, dtype=np.int64),
            "ecc_lower": np.asarray(self.ecc_lower, dtype=np.int64),
            "ecc_upper": np.asarray(self.ecc_upper, dtype=np.int64),
            "prep_plan": np.array(self.prep_plan),
        }

    @classmethod
    def from_npz(cls, data) -> WarmArtifacts:
        """Rehydrate from an ``np.load`` mapping; raises on bad layout."""
        schema = int(np.asarray(data["schema"])[()])
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"sidecar schema {schema} != supported {SCHEMA_VERSION}"
            )
        n = int(np.asarray(data["num_vertices"])[()])
        status = np.asarray(data["status"], dtype=np.int64)
        reason = np.asarray(data["reason"], dtype=np.uint8)
        if status.shape != (n,) or reason.shape != (n,):
            raise ValueError("sidecar status/reason shape mismatch")
        visited = np.asarray(data["winnow_visited"], dtype=bool)
        return cls(
            digest=str(np.asarray(data["digest"])[()]),
            num_vertices=n,
            diameter=int(np.asarray(data["diameter"])[()]),
            connected=bool(np.asarray(data["connected"])[()]),
            witness=int(np.asarray(data["witness"])[()]),
            status=status,
            reason=reason,
            winnow_center=int(np.asarray(data["winnow_center"])[()]),
            winnow_radius=int(np.asarray(data["winnow_radius"])[()]),
            winnow_visited=visited if len(visited) == n else None,
            winnow_frontier=np.asarray(
                data["winnow_frontier"], dtype=np.int64
            ),
            landmark_sources=np.asarray(
                data["landmark_sources"], dtype=np.int64
            ),
            landmark_dists=np.asarray(data["landmark_dists"], dtype=np.int32),
            landmark_eccs=np.asarray(data["landmark_eccs"], dtype=np.int64),
            ecc_lower=np.asarray(data["ecc_lower"], dtype=np.int64),
            ecc_upper=np.asarray(data["ecc_upper"], dtype=np.int64),
            prep_plan=str(np.asarray(data["prep_plan"])[()]),
        )


class WarmStartStore:
    """Directory of digest-keyed warm-start sidecars.

    The filename embeds a digest prefix, so a store directory can hold
    sidecars for any number of graphs; the full digest is re-checked on
    load so a prefix collision (or a renamed file) degrades to a cold
    run rather than cross-graph contamination.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        #: Lifetime counters (surfaced by the serving layer's /stats):
        #: ``loads`` attempts, ``hits`` usable artifacts, ``saves``,
        #: and ``stale_rejects`` — artifacts a consumer loaded but then
        #: refused to reuse because they no longer match the graph
        #: (e.g. landmark rows whose shape or sources went stale after
        #: a mutation). Incremented by the rejecting consumer (the
        #: query engine), not by :meth:`load`, which cannot see what a
        #: caller will accept.
        self.loads = 0
        self.hits = 0
        self.saves = 0
        self.stale_rejects = 0

    def counters(self) -> dict:
        """JSON-friendly load/hit/save/stale-reject totals."""
        return {
            "loads": self.loads,
            "hits": self.hits,
            "saves": self.saves,
            "stale_rejects": self.stale_rejects,
        }

    def path_for(self, digest: str) -> Path:
        """Sidecar path for a graph digest."""
        return self.root / f"fdiam-{digest[:40]}.npz"

    def load(
        self, graph: CSRGraph, *, digest: str | None = None
    ) -> WarmArtifacts | None:
        """Artifacts for ``graph``, or ``None`` (cold) if unusable.

        Every failure mode — missing file, truncated/corrupted zip,
        wrong schema, digest mismatch — returns ``None``; all but the
        missing-file case also warn, so a damaged cache is visible
        without ever being fatal.
        """
        digest = digest or graph_digest(graph)
        self.loads += 1
        path = self.path_for(digest)
        if not path.exists():
            return None
        try:
            # The file handle is opened here (not by np.load) so a
            # truncated zip that fails mid-parse is still closed.
            with open(path, "rb") as fh, np.load(
                fh, allow_pickle=False
            ) as data:
                art = WarmArtifacts.from_npz(data)
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            zipfile.BadZipFile,
        ) as exc:
            warnings.warn(
                f"warm-start sidecar {path} is unreadable ({exc}); "
                "running cold",
                stacklevel=2,
            )
            return None
        if art.digest != digest or art.num_vertices != graph.num_vertices:
            warnings.warn(
                f"warm-start sidecar {path} does not match the graph "
                "digest; running cold",
                stacklevel=2,
            )
            return None
        self.hits += 1
        return art

    def save(self, artifacts: WarmArtifacts) -> Path:
        """Write (atomically: tmp + rename) and return the sidecar path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(artifacts.digest)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **artifacts.to_npz_dict())
        os.replace(tmp, path)
        self.saves += 1
        return path
