"""Cross-run warm-start cache (content-addressed traversal artifacts).

Every F-Diam or spectrum run derives facts about one specific graph —
the diameter and its witness, per-vertex eccentricity bounds, the
winnow ball, landmark distance vectors. All of them remain true for as
long as the graph's bytes do, yet the cold pipeline rederives them on
every invocation. This package persists them in an ``.npz`` sidecar
keyed by the graph's content digest (:func:`repro.graph.graph_digest`)
and replays them on the next run:

* :class:`WarmStartStore` — the on-disk store: one sidecar per digest,
  corrupted or truncated files degrade to a cold run with a warning.
* :class:`WarmArtifacts` — the artifact schema (DESIGN.md §10).
* :func:`fdiam_cached` / :func:`spectrum_cached` — load → warm run →
  save orchestration around the core entry points.

The trust model is deliberately asymmetric: cached *upper* bounds are
certificates for the byte-identical graph, but the headline result is
never taken on faith — a warm ``fdiam`` run re-establishes the lower
bound with one fresh BFS from the cached witness and only then lets
the certificates discharge the remaining vertices.
"""

from repro.cache.store import SCHEMA_VERSION, WarmArtifacts, WarmStartStore
from repro.cache.runner import CacheInfo, fdiam_cached, spectrum_cached

__all__ = [
    "SCHEMA_VERSION",
    "WarmArtifacts",
    "WarmStartStore",
    "CacheInfo",
    "fdiam_cached",
    "spectrum_cached",
]
