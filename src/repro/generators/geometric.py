"""Random geometric (unit-disk) graphs.

A standard high-diameter, spatially-embedded graph class (sensor
networks, wireless meshes): ``n`` points uniform in the unit square,
edges between pairs within distance ``radius``. Complements the suite's
grid/road/delaunay inputs with tunable local density: small radii give
near-threshold connectivity with long thin paths, large radii approach
a dense proximity mesh.

Implemented with a spatial hash (cell size = ``radius``) so edge
discovery is ``O(n · expected_neighbourhood)`` instead of ``O(n²)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["random_geometric"]


def random_geometric(
    n: int,
    radius: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Unit-square random geometric graph with connection ``radius``."""
    if n < 1:
        raise AlgorithmError("random_geometric requires n >= 1")
    if not 0.0 < radius <= np.sqrt(2.0):
        raise AlgorithmError("radius must be in (0, sqrt(2)]")
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))

    # Spatial hash: bucket points into radius-sized cells; only pairs in
    # the same or neighbouring cells can be within `radius`.
    grid_dim = max(1, int(np.floor(1.0 / radius)))
    cell = np.minimum((points * grid_dim).astype(np.int64), grid_dim - 1)
    cell_id = cell[:, 0] * grid_dim + cell[:, 1]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    # Start offsets of each occupied cell within `order`.
    unique_cells, cell_starts = np.unique(sorted_ids, return_index=True)
    cell_starts = np.append(cell_starts, n)
    cell_index = {int(c): k for k, c in enumerate(unique_cells)}

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    r2 = radius * radius
    def emit_pairs(a: np.ndarray, b: np.ndarray) -> None:
        if len(a) == 0:
            return
        diff = points[a] - points[b]
        close = (diff * diff).sum(axis=1) <= r2
        if close.any():
            srcs.append(a[close])
            dsts.append(b[close])

    for k, c in enumerate(unique_cells):
        cx, cy = divmod(int(c), grid_dim)
        members = order[cell_starts[k] : cell_starts[k + 1]]
        if len(members) == 0:
            continue
        # Intra-cell pairs, each once (vertex-id ordering).
        if len(members) > 1:
            a = np.repeat(members, len(members))
            b = np.tile(members, len(members))
            keep = a < b
            emit_pairs(a[keep], b[keep])
        # Cross-cell pairs: deduplicate by cell ordering (only pair with
        # neighbour cells of larger id), keeping every vertex combination.
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                nx_, ny_ = cx + dx, cy + dy
                if not (0 <= nx_ < grid_dim and 0 <= ny_ < grid_dim):
                    continue
                nc = nx_ * grid_dim + ny_
                if nc <= int(c) or nc not in cell_index:
                    continue
                j = cell_index[nc]
                others = order[cell_starts[j] : cell_starts[j + 1]]
                if len(others) == 0:
                    continue
                emit_pairs(
                    np.repeat(members, len(others)),
                    np.tile(others, len(members)),
                )

    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    return from_edge_arrays(src, dst, n, name or f"geometric-{n}-r{radius:g}")
