"""Citation-network generator.

Analog of the paper's *citationCiteSeer*, *cit-Patents*, and
*coPapersDBLP* inputs. Citation graphs differ from plain preferential
attachment in two ways that matter for diameter algorithms: (1) papers
cite *recent* papers far more often than old ones (recency bias), which
stretches the diameter along the time axis, and (2) the citation count
per paper is itself skewed.

The generator grows vertices in publication order; each new vertex
draws its reference count from a clipped lognormal and attaches each
reference either to a recent vertex (within a sliding window, recency
bias) or preferentially to a popular one (via the endpoint-pool trick).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["citation_graph"]


def citation_graph(
    n: int,
    mean_refs: float = 5.0,
    *,
    recency_prob: float = 0.5,
    window: int = 200,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Grow a citation-style graph of ``n`` papers.

    Parameters
    ----------
    n:
        Number of papers (vertices).
    mean_refs:
        Mean number of references per paper.
    recency_prob:
        Probability that a reference targets the recent ``window``
        rather than a degree-proportional older paper.
    window:
        Size of the recency window.
    seed:
        RNG seed.
    """
    if n < 2:
        raise AlgorithmError("citation_graph requires n >= 2")
    rng = np.random.default_rng(seed)
    # Reference counts: clipped lognormal with the requested mean.
    sigma = 0.8
    mu = np.log(max(mean_refs, 1e-9)) - sigma**2 / 2
    refs = np.clip(
        rng.lognormal(mu, sigma, size=n).astype(np.int64), 1, 50
    )
    refs[0] = 0
    total = int(refs.sum())

    src = np.empty(total, dtype=np.int64)
    dst = np.empty(total, dtype=np.int64)
    pool = np.empty(2 * total + 1, dtype=np.int64)
    pool[0] = 0
    pool_len = 1
    pos = 0
    for v in range(1, n):
        r = int(refs[v])
        if r == 0:
            continue
        recent = rng.random(r) < recency_prob
        lo = max(0, v - window)
        recent_targets = rng.integers(lo, v, size=r)
        popular_targets = pool[rng.integers(0, pool_len, size=r)]
        targets = np.where(recent, recent_targets, popular_targets)
        src[pos : pos + r] = v
        dst[pos : pos + r] = targets
        pos += r
        take = min(r, len(pool) - pool_len)
        pool[pool_len : pool_len + take] = targets[:take]
        pool_len += take
        if pool_len < len(pool):
            pool[pool_len] = v
            pool_len += 1
    return from_edge_arrays(src[:pos], dst[:pos], n, name or f"citation-{n}")
