"""Regular grid generators.

Analog of the paper's *2d-2e20.sym* input (a Lonestar 2-D grid with
average degree 4 and diameter 2,046 ≈ rows + cols - 2). Grids are the
high-diameter, hub-free extreme of the evaluation suite: Winnow removes
"only" ~76 % here and Eliminate carries the rest (paper Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["grid_2d", "grid_3d"]


def grid_2d(rows: int, cols: int, *, periodic: bool = False, name: str | None = None) -> CSRGraph:
    """4-neighbour ``rows × cols`` grid.

    Diameter ``rows + cols - 2`` (Manhattan span) when not periodic.
    ``periodic`` wraps both dimensions into a torus
    (diameter ``⌊rows/2⌋ + ⌊cols/2⌋``).
    """
    if rows < 1 or cols < 1:
        raise AlgorithmError("grid_2d requires rows, cols >= 1")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)

    horiz_src = idx[:, :-1].ravel()
    horiz_dst = idx[:, 1:].ravel()
    vert_src = idx[:-1, :].ravel()
    vert_dst = idx[1:, :].ravel()
    srcs = [horiz_src, vert_src]
    dsts = [horiz_dst, vert_dst]
    if periodic:
        if cols > 2:
            srcs.append(idx[:, -1].ravel())
            dsts.append(idx[:, 0].ravel())
        if rows > 2:
            srcs.append(idx[-1, :].ravel())
            dsts.append(idx[0, :].ravel())
    return from_edge_arrays(
        np.concatenate(srcs),
        np.concatenate(dsts),
        rows * cols,
        name or f"grid-{rows}x{cols}{'-torus' if periodic else ''}",
    )


def grid_3d(nx: int, ny: int, nz: int, name: str | None = None) -> CSRGraph:
    """6-neighbour ``nx × ny × nz`` grid. Diameter ``nx + ny + nz - 3``."""
    if min(nx, ny, nz) < 1:
        raise AlgorithmError("grid_3d requires all dimensions >= 1")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    srcs = [idx[:-1, :, :].ravel(), idx[:, :-1, :].ravel(), idx[:, :, :-1].ravel()]
    dsts = [idx[1:, :, :].ravel(), idx[:, 1:, :].ravel(), idx[:, :, 1:].ravel()]
    return from_edge_arrays(
        np.concatenate(srcs),
        np.concatenate(dsts),
        nx * ny * nz,
        name or f"grid-{nx}x{ny}x{nz}",
    )
