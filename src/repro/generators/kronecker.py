"""Graph500-style stochastic Kronecker generator.

Analog of the paper's *kron_g500-logn21* input. A stochastic Kronecker
graph is the R-MAT process with the Graph500 initiator
``[[0.57, 0.19], [0.19, 0.05]]`` plus a random vertex permutation that
destroys the correlation between vertex id and degree. The hallmark of
these graphs — and the reason the paper's Table 4 shows 26 % degree-0
vertices on kron_g500 — is that the skewed process leaves a large
fraction of vertex ids untouched by any edge.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.generators.rmat import rmat

__all__ = ["kronecker"]


def kronecker(
    scale: int,
    edge_factor: int = 16,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a Graph500 Kronecker graph with ``2**scale`` vertices.

    Identical to :func:`~repro.generators.rmat.rmat` with the Graph500
    initiator, followed by a uniform vertex relabelling (the Graph500
    specification's permutation step).
    """
    base = rmat(scale, edge_factor, a=0.57, b=0.19, c=0.19, seed=seed)
    rng = np.random.default_rng(seed + 0x5EED)
    perm = rng.permutation(base.num_vertices).astype(np.int64)

    n = base.num_vertices
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    return from_edge_arrays(
        perm[row_of],
        perm[base.indices.astype(np.int64)],
        n,
        name or f"kron-{scale}-{edge_factor}",
    )
