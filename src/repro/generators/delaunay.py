"""Delaunay-triangulation graphs.

Analog of the paper's *delaunay_n24* input (SuiteSparse's Delaunay
triangulations of random points in the unit square). These are planar,
near-regular (average degree ~6, max degree ~26), and have large
diameters (~1,700 at n=16.7M) — the input where F-Diam needs the most
BFS calls (3,151) and every baseline times out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["delaunay_graph"]


def delaunay_graph(
    num_points: int, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Delaunay triangulation of ``num_points`` uniform random 2-D points.

    The triangulation's simplices are converted to edges (each triangle
    contributes its three sides; duplicates are merged by the builder).
    """
    if num_points < 3:
        raise AlgorithmError("delaunay_graph requires at least 3 points")
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((num_points, 2))
    tri = Delaunay(points)
    simplices = tri.simplices.astype(np.int64)
    src = np.concatenate([simplices[:, 0], simplices[:, 1], simplices[:, 2]])
    dst = np.concatenate([simplices[:, 1], simplices[:, 2], simplices[:, 0]])
    return from_edge_arrays(src, dst, num_points, name or f"delaunay-{num_points}")
