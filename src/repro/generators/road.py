"""Road-network-like generators.

Analogs of the paper's *USA-road-d.NY*, *USA-road-d.USA* (DIMACS
challenge road maps) and *europe_osm* inputs. Road networks are the
other high-diameter extreme: average degree 2–3, maximum degree < 15,
enormous diameters (up to 30,102 for europe_osm), long degree-2 chains
(which is where the paper's Chain Processing earns its keep — 14 % of
USA-road-d.USA), and no hubs.

The generator starts from a sparse 2-D grid skeleton, deletes a random
fraction of edges (dead ends, rivers), contracts nothing, and then
splices degree-2 chain segments into a fraction of the remaining edges
to mimic the long sampled-polyline roads of OSM/DIMACS data. Deleting
edges may disconnect small pockets, which matches the DIMACS inputs'
"largest eccentricity in any connected component" reporting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays, from_edge_chunks
from repro.graph.csr import CSRGraph

__all__ = ["road_network", "road_network_chunked"]


def road_network(
    rows: int,
    cols: int,
    *,
    edge_keep: float = 0.8,
    chain_fraction: float = 0.15,
    chain_length: int = 4,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """A road-map-like graph grown from a ``rows × cols`` grid skeleton.

    Parameters
    ----------
    rows, cols:
        Grid skeleton dimensions; the output has roughly
        ``rows * cols * (1 + edge_keep * chain_fraction * chain_length)``
        vertices.
    edge_keep:
        Fraction of grid edges that survive the deletion pass.
    chain_fraction:
        Fraction of surviving edges that are subdivided into degree-2
        chains (roads sampled at multiple points).
    chain_length:
        Number of interior vertices spliced into each subdivided edge.
    seed:
        RNG seed.
    """
    if rows < 2 or cols < 2:
        raise AlgorithmError("road_network requires rows, cols >= 2")
    if not 0.0 < edge_keep <= 1.0:
        raise AlgorithmError("edge_keep must be in (0, 1]")
    rng = np.random.default_rng(seed)
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    src = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    dst = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])

    keep = rng.random(len(src)) < edge_keep
    src, dst = src[keep], dst[keep]

    subdivide = rng.random(len(src)) < chain_fraction
    plain_src, plain_dst = src[~subdivide], dst[~subdivide]
    sub_src, sub_dst = src[subdivide], dst[subdivide]

    n = rows * cols
    if len(sub_src) and chain_length > 0:
        k = chain_length
        num_new = len(sub_src) * k
        new_ids = n + np.arange(num_new, dtype=np.int64).reshape(len(sub_src), k)
        n += num_new
        # Edge (u, v) becomes u - c1 - c2 - ... - ck - v.
        chain_cols = np.concatenate(
            [sub_src[:, None], new_ids, sub_dst[:, None]], axis=1
        )
        chain_src = chain_cols[:, :-1].ravel()
        chain_dst = chain_cols[:, 1:].ravel()
        all_src = np.concatenate([plain_src, chain_src])
        all_dst = np.concatenate([plain_dst, chain_dst])
    else:
        all_src, all_dst = plain_src, plain_dst
    return from_edge_arrays(
        all_src, all_dst, n, name or f"road-{rows}x{cols}-s{seed}"
    )


def _row_edges(r: int, rows: int, cols: int) -> tuple[np.ndarray, np.ndarray]:
    """The grid edges *owned* by row ``r`` (its horizontals, then the
    verticals dropping to row ``r + 1``), in a fixed deterministic order."""
    base = r * cols
    h_src = base + np.arange(cols - 1, dtype=np.int64)
    h_dst = h_src + 1
    if r + 1 < rows:
        v_src = base + np.arange(cols, dtype=np.int64)
        v_dst = v_src + cols
        return np.concatenate([h_src, v_src]), np.concatenate([h_dst, v_dst])
    return h_src, h_dst


def road_network_chunked(
    rows: int,
    cols: int,
    *,
    edge_keep: float = 0.8,
    chain_fraction: float = 0.15,
    chain_length: int = 4,
    seed: int = 0,
    band_rows: int = 64,
    name: str | None = None,
) -> CSRGraph:
    """A road-map-like graph emitted in grid-row bands (10^7-edge tier).

    The streaming twin of :func:`road_network` for analogs whose full
    COO edge list would dwarf the final CSR: edges are generated one
    band of ``band_rows`` grid rows at a time and fed through
    :func:`repro.graph.build.from_edge_chunks`, so no more than
    ``O(band)`` COO edges exist at once.

    The graph is a *deterministic function of the parameters only* —
    not of ``band_rows``: every grid row owns its horizontal edges and
    the verticals to the next row, and draws its keep/subdivide masks
    from a private ``default_rng([seed, row])`` stream. Chain interior
    vertex ids are assigned by a prescan that counts subdivided edges
    per row (the cumulative sum gives each row's chain-id base), so
    banding only groups rows, never renumbers anything. The
    band-invariance is regression-tested.

    The randomness keying differs from :func:`road_network` (one
    stream per row instead of one global stream), so the two
    generators realize *different* graphs for identical parameters;
    the topology class and knob semantics are the same.
    """
    if rows < 2 or cols < 2:
        raise AlgorithmError("road_network_chunked requires rows, cols >= 2")
    if not 0.0 < edge_keep <= 1.0:
        raise AlgorithmError("edge_keep must be in (0, 1]")
    if band_rows < 1:
        raise AlgorithmError("band_rows must be >= 1")
    if chain_length < 0:
        raise AlgorithmError("chain_length must be >= 0")

    def row_draws(r: int):
        rng = np.random.default_rng([seed, r])
        src, dst = _row_edges(r, rows, cols)
        keep = rng.random(len(src)) < edge_keep
        src, dst = src[keep], dst[keep]
        subdivide = rng.random(len(src)) < chain_fraction
        return src, dst, subdivide

    # Prescan: subdivided-edge count per row -> chain-id base per row.
    sub_counts = np.zeros(rows, dtype=np.int64)
    for r in range(rows):
        _, _, subdivide = row_draws(r)
        sub_counts[r] = np.count_nonzero(subdivide)
    chain_base = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(sub_counts, out=chain_base[1:])
    grid_n = rows * cols
    n = grid_n + int(chain_base[-1]) * chain_length

    def bands():
        for r0 in range(0, rows, band_rows):
            parts_src, parts_dst = [], []
            for r in range(r0, min(r0 + band_rows, rows)):
                src, dst, subdivide = row_draws(r)
                parts_src.append(src[~subdivide])
                parts_dst.append(dst[~subdivide])
                sub_src, sub_dst = src[subdivide], dst[subdivide]
                if len(sub_src) and chain_length > 0:
                    k = chain_length
                    first_id = grid_n + chain_base[r] * k
                    new_ids = first_id + np.arange(
                        len(sub_src) * k, dtype=np.int64
                    ).reshape(len(sub_src), k)
                    chain_cols = np.concatenate(
                        [sub_src[:, None], new_ids, sub_dst[:, None]], axis=1
                    )
                    parts_src.append(chain_cols[:, :-1].ravel())
                    parts_dst.append(chain_cols[:, 1:].ravel())
                elif len(sub_src):
                    parts_src.append(sub_src)
                    parts_dst.append(sub_dst)
            yield np.concatenate(parts_src), np.concatenate(parts_dst)

    return from_edge_chunks(
        bands, n, name or f"road-chunked-{rows}x{cols}-s{seed}"
    )
