"""Road-network-like generators.

Analogs of the paper's *USA-road-d.NY*, *USA-road-d.USA* (DIMACS
challenge road maps) and *europe_osm* inputs. Road networks are the
other high-diameter extreme: average degree 2–3, maximum degree < 15,
enormous diameters (up to 30,102 for europe_osm), long degree-2 chains
(which is where the paper's Chain Processing earns its keep — 14 % of
USA-road-d.USA), and no hubs.

The generator starts from a sparse 2-D grid skeleton, deletes a random
fraction of edges (dead ends, rivers), contracts nothing, and then
splices degree-2 chain segments into a fraction of the remaining edges
to mimic the long sampled-polyline roads of OSM/DIMACS data. Deleting
edges may disconnect small pockets, which matches the DIMACS inputs'
"largest eccentricity in any connected component" reporting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["road_network"]


def road_network(
    rows: int,
    cols: int,
    *,
    edge_keep: float = 0.8,
    chain_fraction: float = 0.15,
    chain_length: int = 4,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """A road-map-like graph grown from a ``rows × cols`` grid skeleton.

    Parameters
    ----------
    rows, cols:
        Grid skeleton dimensions; the output has roughly
        ``rows * cols * (1 + edge_keep * chain_fraction * chain_length)``
        vertices.
    edge_keep:
        Fraction of grid edges that survive the deletion pass.
    chain_fraction:
        Fraction of surviving edges that are subdivided into degree-2
        chains (roads sampled at multiple points).
    chain_length:
        Number of interior vertices spliced into each subdivided edge.
    seed:
        RNG seed.
    """
    if rows < 2 or cols < 2:
        raise AlgorithmError("road_network requires rows, cols >= 2")
    if not 0.0 < edge_keep <= 1.0:
        raise AlgorithmError("edge_keep must be in (0, 1]")
    rng = np.random.default_rng(seed)
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    src = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    dst = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])

    keep = rng.random(len(src)) < edge_keep
    src, dst = src[keep], dst[keep]

    subdivide = rng.random(len(src)) < chain_fraction
    plain_src, plain_dst = src[~subdivide], dst[~subdivide]
    sub_src, sub_dst = src[subdivide], dst[subdivide]

    n = rows * cols
    if len(sub_src) and chain_length > 0:
        k = chain_length
        num_new = len(sub_src) * k
        new_ids = n + np.arange(num_new, dtype=np.int64).reshape(len(sub_src), k)
        n += num_new
        # Edge (u, v) becomes u - c1 - c2 - ... - ck - v.
        chain_cols = np.concatenate(
            [sub_src[:, None], new_ids, sub_dst[:, None]], axis=1
        )
        chain_src = chain_cols[:, :-1].ravel()
        chain_dst = chain_cols[:, 1:].ravel()
        all_src = np.concatenate([plain_src, chain_src])
        all_dst = np.concatenate([plain_dst, chain_dst])
    else:
        all_src, all_dst = plain_src, plain_dst
    return from_edge_arrays(
        all_src, all_dst, n, name or f"road-{rows}x{cols}-s{seed}"
    )
