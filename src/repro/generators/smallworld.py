"""Watts–Strogatz small-world generator.

Not a direct analog of any single paper input, but the canonical way to
interpolate between the suite's two extremes — ring-lattice order (huge
diameter, like roads/grids) and random rewiring (small diameter, like
social graphs). The ablation studies and property tests use it to probe
F-Diam across that spectrum with one knob.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["watts_strogatz"]


def watts_strogatz(
    n: int,
    k: int,
    rewire_prob: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Ring lattice of ``n`` vertices, each joined to its ``k`` nearest
    neighbours, with every edge rewired to a random endpoint with
    probability ``rewire_prob``.

    ``k`` must be even and ``< n``. ``rewire_prob = 0`` leaves the exact
    lattice (diameter ``⌈(n/2) / (k/2)⌉`` for even ``n``); small values
    collapse the diameter logarithmically.
    """
    if k % 2 or not 0 < k < n:
        raise AlgorithmError("watts_strogatz requires even k with 0 < k < n")
    if not 0.0 <= rewire_prob <= 1.0:
        raise AlgorithmError("rewire_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    srcs = np.repeat(base, k // 2)
    offsets = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    dsts = (srcs + offsets) % n

    rewire = rng.random(len(srcs)) < rewire_prob
    dsts = dsts.copy()
    dsts[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    return from_edge_arrays(srcs, dsts, n, name or f"ws-{n}-{k}-{rewire_prob}")
