"""Registry of the 17 paper-input analogs (paper Table 1).

The paper evaluates on 17 real-world and synthetic graphs up to 50 M
vertices. Those exact files are not available offline, so each input is
replaced by a *synthetic analog of the same topology class* at a size
feasible on this machine (see DESIGN.md §2 for the substitution
rationale). What each analog preserves — diameter regime, degree skew,
hub structure, chain content, isolated-vertex fraction — is what drives
the paper's results.

All analogs are deterministic (fixed seeds) so benchmark runs are
reproducible, and built lazily with a module-level cache so repeated
benchmark phases share one instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.generators.chains import add_tendrils
from repro.generators.perturb import permute_vertices
from repro.generators.citation import citation_graph
from repro.generators.delaunay import delaunay_graph
from repro.generators.grid import grid_2d
from repro.generators.kronecker import kronecker
from repro.generators.powerlaw import barabasi_albert, copying_model
from repro.generators.rmat import rmat
from repro.generators.road import road_network
from repro.graph.csr import CSRGraph

__all__ = ["AnalogSpec", "PAPER_ANALOGS", "build_analog", "clear_cache"]


@dataclass(frozen=True)
class AnalogSpec:
    """One paper input and the synthetic analog standing in for it.

    Attributes
    ----------
    paper_name:
        The input's name in the paper's Table 1.
    topology:
        The paper's "type" column (topology class being preserved).
    paper_vertices, paper_diameter:
        The original's size and CC diameter, for the EXPERIMENTS.md
        comparison tables.
    factory:
        Zero-argument callable building the analog.
    """

    paper_name: str
    topology: str
    paper_vertices: int
    paper_diameter: int
    factory: Callable[[], CSRGraph]


def _spec(paper_name, topology, paper_vertices, paper_diameter, factory):
    return AnalogSpec(paper_name, topology, paper_vertices, paper_diameter, factory)


# Small-world analogs are built as <dense core> + <thin tendrils>: at
# laptop scale a bare preferential-attachment/copying core has diameter
# ~5, whereas the paper's SNAP/web inputs owe their diameters of 20-45
# to sparse peripheral chains. A few dozen tendrils (< 2 % of the
# vertices) restore the real degree/diameter regime — and with it the
# paper's Winnow/Eliminate behaviour. See add_tendrils() for details.


#: The 17 inputs of the paper's Table 1, in the paper's order.
PAPER_ANALOGS: dict[str, AnalogSpec] = {
    "2d-2e20.sym": _spec(
        "2d-2e20.sym", "grid", 1_048_576, 2_046,
        lambda: grid_2d(181, 181, name="2d-2e20.sym"),
    ),
    "amazon0601": _spec(
        "amazon0601", "product co-purchases", 403_394, 25,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(20_000, 6, seed=601), 40, 4, 10, seed=601),
            seed=601, name="amazon0601",
        ),
    ),
    "as-skitter": _spec(
        "as-skitter", "Internet topology", 1_696_415, 31,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(30_000, 7, seed=31), 50, 5, 13, seed=31),
            seed=31, name="as-skitter",
        ),
    ),
    "citationCiteSeer": _spec(
        "citationCiteSeer", "publication citations", 268_495, 36,
        lambda: permute_vertices(
            add_tendrils(citation_graph(15_000, 4.3, seed=36), 30, 6, 14, seed=36),
            seed=36, name="citationCiteSeer",
        ),
    ),
    "cit-Patents": _spec(
        "cit-Patents", "patent citations", 3_774_768, 26,
        lambda: permute_vertices(
            add_tendrils(
                citation_graph(
                    40_000, 4.4, recency_prob=0.65, window=400, seed=26
                ),
                60, 3, 8, seed=26,
            ),
            seed=26, name="cit-Patents",
        ),
    ),
    "coPapersDBLP": _spec(
        "coPapersDBLP", "publication citations", 540_486, 23,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(12_000, 28, copy_prob=0.75, seed=23), 30, 4, 9, seed=23
            ),
            seed=23, name="coPapersDBLP",
        ),
    ),
    "delaunay_n24": _spec(
        "delaunay_n24", "triangulation", 16_777_216, 1_722,
        lambda: delaunay_graph(30_000, seed=24, name="delaunay_n24"),
    ),
    "europe_osm": _spec(
        "europe_osm", "road map", 50_912_018, 30_102,
        lambda: road_network(
            120, 120, edge_keep=0.75, chain_fraction=0.25, chain_length=5,
            seed=302, name="europe_osm",
        ),
    ),
    "in-2004": _spec(
        "in-2004", "web links", 1_382_908, 43,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(20_000, 10, copy_prob=0.7, seed=2004), 25, 6, 20, seed=2004
            ),
            seed=2004, name="in-2004",
        ),
    ),
    "internet": _spec(
        "internet", "Internet topology", 124_651, 30,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(8_000, 2, seed=124), 30, 4, 11, seed=124),
            seed=124, name="internet",
        ),
    ),
    "kron_g500-logn21": _spec(
        "kron_g500-logn21", "Kronecker", 2_097_152, 7,
        lambda: kronecker(14, 20, seed=21, name="kron_g500-logn21"),
    ),
    "rmat16.sym": _spec(
        "rmat16.sym", "RMAT", 65_536, 14,
        lambda: add_tendrils(
            rmat(13, 8, seed=16), 25, 2, 5, seed=16, name="rmat16.sym"
        ),
    ),
    "rmat22.sym": _spec(
        "rmat22.sym", "RMAT", 4_194_304, 18,
        lambda: add_tendrils(
            rmat(15, 8, seed=22), 40, 2, 7, seed=22, name="rmat22.sym"
        ),
    ),
    "soc-LiveJournal1": _spec(
        "soc-LiveJournal1", "journal community", 4_847_571, 20,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(40_000, 9, seed=1), 50, 3, 8, seed=1),
            seed=1, name="soc-LiveJournal1",
        ),
    ),
    "uk-2002": _spec(
        "uk-2002", "web links", 18_520_486, 45,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(40_000, 14, copy_prob=0.72, seed=2002), 25, 8, 21, seed=2002
            ),
            seed=2002, name="uk-2002",
        ),
    ),
    "USA-road-d.NY": _spec(
        "USA-road-d.NY", "road map", 264_346, 720,
        lambda: road_network(
            60, 60, edge_keep=0.85, chain_fraction=0.2, chain_length=3,
            seed=720, name="USA-road-d.NY",
        ),
    ),
    "USA-road-d.USA": _spec(
        "USA-road-d.USA", "road map", 23_947_347, 8_440,
        lambda: road_network(
            150, 150, edge_keep=0.8, chain_fraction=0.25, chain_length=4,
            seed=8440, name="USA-road-d.USA",
        ),
    ),
}

_CACHE: dict[str, CSRGraph] = {}


def build_analog(name: str) -> CSRGraph:
    """Build (or fetch the cached) analog for a paper input name."""
    if name not in PAPER_ANALOGS:
        raise KeyError(
            f"unknown paper input {name!r}; known: {sorted(PAPER_ANALOGS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = PAPER_ANALOGS[name].factory()
    return _CACHE[name]


def clear_cache() -> None:
    """Drop all cached analogs (tests use this to bound memory)."""
    _CACHE.clear()
