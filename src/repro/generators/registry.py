"""Registry of the 17 paper-input analogs (paper Table 1).

The paper evaluates on 17 real-world and synthetic graphs up to 50 M
vertices. Those exact files are not available offline, so each input is
replaced by a *synthetic analog of the same topology class* at a size
feasible on this machine (see DESIGN.md §2 for the substitution
rationale). What each analog preserves — diameter regime, degree skew,
hub structure, chain content, isolated-vertex fraction — is what drives
the paper's results.

All analogs are deterministic (fixed seeds) so benchmark runs are
reproducible, and built lazily with a module-level cache so repeated
benchmark phases share one instance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.generators.chains import add_tendrils
from repro.generators.perturb import (
    add_isolated_vertices,
    disjoint_union,
    permute_vertices,
)
from repro.generators.citation import citation_graph
from repro.generators.delaunay import delaunay_graph
from repro.generators.grid import grid_2d
from repro.generators.kronecker import kronecker
from repro.generators.powerlaw import (
    barabasi_albert,
    copying_model,
    scale_free,
    scale_free_chunked,
)
from repro.generators.primitives import (
    balanced_tree,
    barbell,
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.generators.rmat import rmat
from repro.generators.road import road_network, road_network_chunked
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.io import load_npz, save_npz
from repro.graph.subgraph import induced_subgraph

__all__ = [
    "AnalogSpec",
    "PAPER_ANALOGS",
    "SCALE_ANALOGS",
    "FUZZ_FAMILIES",
    "build_analog",
    "build_scale_analog",
    "build_fuzz_graph",
    "clear_cache",
]


@dataclass(frozen=True)
class AnalogSpec:
    """One paper input and the synthetic analog standing in for it.

    Attributes
    ----------
    paper_name:
        The input's name in the paper's Table 1.
    topology:
        The paper's "type" column (topology class being preserved).
    paper_vertices, paper_diameter:
        The original's size and CC diameter, for the EXPERIMENTS.md
        comparison tables.
    factory:
        Zero-argument callable building the analog.
    """

    paper_name: str
    topology: str
    paper_vertices: int
    paper_diameter: int
    factory: Callable[[], CSRGraph]


def _spec(paper_name, topology, paper_vertices, paper_diameter, factory):
    return AnalogSpec(paper_name, topology, paper_vertices, paper_diameter, factory)


# Small-world analogs are built as <dense core> + <thin tendrils>: at
# laptop scale a bare preferential-attachment/copying core has diameter
# ~5, whereas the paper's SNAP/web inputs owe their diameters of 20-45
# to sparse peripheral chains. A few dozen tendrils (< 2 % of the
# vertices) restore the real degree/diameter regime — and with it the
# paper's Winnow/Eliminate behaviour. See add_tendrils() for details.


#: The 17 inputs of the paper's Table 1, in the paper's order.
PAPER_ANALOGS: dict[str, AnalogSpec] = {
    "2d-2e20.sym": _spec(
        "2d-2e20.sym", "grid", 1_048_576, 2_046,
        lambda: grid_2d(181, 181, name="2d-2e20.sym"),
    ),
    "amazon0601": _spec(
        "amazon0601", "product co-purchases", 403_394, 25,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(20_000, 6, seed=601), 40, 4, 10, seed=601),
            seed=601, name="amazon0601",
        ),
    ),
    "as-skitter": _spec(
        "as-skitter", "Internet topology", 1_696_415, 31,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(30_000, 7, seed=31), 50, 5, 13, seed=31),
            seed=31, name="as-skitter",
        ),
    ),
    "citationCiteSeer": _spec(
        "citationCiteSeer", "publication citations", 268_495, 36,
        lambda: permute_vertices(
            add_tendrils(citation_graph(15_000, 4.3, seed=36), 30, 6, 14, seed=36),
            seed=36, name="citationCiteSeer",
        ),
    ),
    "cit-Patents": _spec(
        "cit-Patents", "patent citations", 3_774_768, 26,
        lambda: permute_vertices(
            add_tendrils(
                citation_graph(
                    40_000, 4.4, recency_prob=0.65, window=400, seed=26
                ),
                60, 3, 8, seed=26,
            ),
            seed=26, name="cit-Patents",
        ),
    ),
    "coPapersDBLP": _spec(
        "coPapersDBLP", "publication citations", 540_486, 23,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(12_000, 28, copy_prob=0.75, seed=23), 30, 4, 9, seed=23
            ),
            seed=23, name="coPapersDBLP",
        ),
    ),
    "delaunay_n24": _spec(
        "delaunay_n24", "triangulation", 16_777_216, 1_722,
        lambda: delaunay_graph(30_000, seed=24, name="delaunay_n24"),
    ),
    "europe_osm": _spec(
        "europe_osm", "road map", 50_912_018, 30_102,
        lambda: road_network(
            120, 120, edge_keep=0.75, chain_fraction=0.25, chain_length=5,
            seed=302, name="europe_osm",
        ),
    ),
    "in-2004": _spec(
        "in-2004", "web links", 1_382_908, 43,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(20_000, 10, copy_prob=0.7, seed=2004), 25, 6, 20, seed=2004
            ),
            seed=2004, name="in-2004",
        ),
    ),
    "internet": _spec(
        "internet", "Internet topology", 124_651, 30,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(8_000, 2, seed=124), 30, 4, 11, seed=124),
            seed=124, name="internet",
        ),
    ),
    "kron_g500-logn21": _spec(
        "kron_g500-logn21", "Kronecker", 2_097_152, 7,
        lambda: kronecker(14, 20, seed=21, name="kron_g500-logn21"),
    ),
    "rmat16.sym": _spec(
        "rmat16.sym", "RMAT", 65_536, 14,
        lambda: add_tendrils(
            rmat(13, 8, seed=16), 25, 2, 5, seed=16, name="rmat16.sym"
        ),
    ),
    "rmat22.sym": _spec(
        "rmat22.sym", "RMAT", 4_194_304, 18,
        lambda: add_tendrils(
            rmat(15, 8, seed=22), 40, 2, 7, seed=22, name="rmat22.sym"
        ),
    ),
    "soc-LiveJournal1": _spec(
        "soc-LiveJournal1", "journal community", 4_847_571, 20,
        lambda: permute_vertices(
            add_tendrils(barabasi_albert(40_000, 9, seed=1), 50, 3, 8, seed=1),
            seed=1, name="soc-LiveJournal1",
        ),
    ),
    "uk-2002": _spec(
        "uk-2002", "web links", 18_520_486, 45,
        lambda: permute_vertices(
            add_tendrils(
                copying_model(40_000, 14, copy_prob=0.72, seed=2002), 25, 8, 21, seed=2002
            ),
            seed=2002, name="uk-2002",
        ),
    ),
    "USA-road-d.NY": _spec(
        "USA-road-d.NY", "road map", 264_346, 720,
        lambda: road_network(
            60, 60, edge_keep=0.85, chain_fraction=0.2, chain_length=3,
            seed=720, name="USA-road-d.NY",
        ),
    ),
    "USA-road-d.USA": _spec(
        "USA-road-d.USA", "road map", 23_947_347, 8_440,
        lambda: road_network(
            150, 150, edge_keep=0.8, chain_fraction=0.25, chain_length=4,
            seed=8440, name="USA-road-d.USA",
        ),
    ),
}

#: The million-vertex benchmark tier. These are NOT paper Table 1
#: inputs — they are the compressed-store stress workloads (ISSUE 7):
#: one road/mesh analog and one power-law analog at ~10^6 vertices /
#: >10^6 edges each, the scale where bytes-per-edge and
#: store-vs-in-memory wall time stop being noise. Every generator used
#: here is fully vectorized (``road_network``, :func:`scale_free`);
#: the sequential-attachment processes would take minutes at this
#: size. ``paper_vertices`` records the analog's own nominal scale and
#: ``paper_diameter`` is 0 (there is no paper row to compare against).
SCALE_ANALOGS: dict[str, AnalogSpec] = {
    "road-1M": _spec(
        "road-1M (scale tier)", "road map", 1_000_000, 0,
        lambda: road_network(
            576, 576, edge_keep=0.8, chain_fraction=0.3, chain_length=4,
            seed=1_000_001, name="road-1M",
        ),
    ),
    "powerlaw-1M": _spec(
        "powerlaw-1M (scale tier)", "power law", 1_000_000, 0,
        lambda: scale_free(
            1_000_000, avg_degree=3.2, exponent=2.3,
            seed=1_000_002, name="powerlaw-1M",
        ),
    ),
    # The 10^7-edge out-of-core tier (ISSUE 8): both analogs are grown
    # through the chunked generators + from_edge_chunks, so generation
    # never materializes more than O(chunk) COO edges — the whole point
    # of the tier is exercising the streaming encoder and the
    # memory-budgeted traversal at a scale where the decoded CSR is
    # hundreds of megabytes. ``chunk_edges``/``band_rows`` are part of
    # each graph's definition and must stay pinned with the seed.
    "road-10M": _spec(
        "road-10M (scale tier)", "road map", 8_400_000, 0,
        lambda: road_network_chunked(
            1_700, 1_700, edge_keep=0.8, chain_fraction=0.3, chain_length=4,
            seed=10_000_001, band_rows=128, name="road-10M",
        ),
    ),
    "powerlaw-10M": _spec(
        "powerlaw-10M (scale tier)", "power law", 3_000_000, 0,
        lambda: scale_free_chunked(
            3_000_000, avg_degree=6.6, exponent=2.3,
            seed=10_000_002, chunk_edges=1 << 20, name="powerlaw-10M",
        ),
    ),
}

_CACHE: dict[str, CSRGraph] = {}
_SCALE_CACHE: dict[str, CSRGraph] = {}


def build_analog(name: str) -> CSRGraph:
    """Build (or fetch the cached) analog for a paper input name."""
    if name not in PAPER_ANALOGS:
        raise KeyError(
            f"unknown paper input {name!r}; known: {sorted(PAPER_ANALOGS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = PAPER_ANALOGS[name].factory()
    return _CACHE[name]


def build_scale_analog(name: str) -> CSRGraph:
    """Build (or fetch the cached) million-vertex tier workload.

    Cached separately from the paper analogs: a scale-tier graph is
    tens of megabytes, and :func:`clear_cache` drops both caches so
    tests and bench stages can bound memory the same way either way.

    When the ``REPRO_ANALOG_CACHE`` environment variable names a
    directory, built analogs are additionally persisted there as
    ``<name>.npz`` and reloaded on later calls — the CI jobs share one
    directory (keyed on the generator-source hash, so a generator edit
    invalidates it) to pay each analog's generation cost once per
    cache key instead of once per job. All analogs are deterministic,
    so a reload is bit-identical to a rebuild.
    """
    if name not in SCALE_ANALOGS:
        raise KeyError(
            f"unknown scale-tier input {name!r}; known: {sorted(SCALE_ANALOGS)}"
        )
    if name not in _SCALE_CACHE:
        cache_dir = os.environ.get("REPRO_ANALOG_CACHE")
        cache_path = None
        if cache_dir:
            cache_path = os.path.join(cache_dir, f"{name}.npz")
            if os.path.exists(cache_path):
                _SCALE_CACHE[name] = load_npz(cache_path).with_name(name)
                return _SCALE_CACHE[name]
        graph = SCALE_ANALOGS[name].factory()
        if cache_path is not None:
            os.makedirs(cache_dir, exist_ok=True)
            save_npz(graph, cache_path)
        _SCALE_CACHE[name] = graph
    return _SCALE_CACHE[name]


def clear_cache() -> None:
    """Drop all cached analogs (tests use this to bound memory)."""
    _CACHE.clear()
    _SCALE_CACHE.clear()


# ----------------------------------------------------------------------
# Seeded fuzz families (repro.verify)
# ----------------------------------------------------------------------
# Every family is a pure function of the ``numpy`` Generator it is
# handed, so a fuzz trial is replayed *exactly* by its integer seed —
# the fuzzer records nothing but the seed and the family name. The mix
# deliberately spans the regimes the solver branches on: high-diameter
# paths/grids, hub-and-spoke stars, dense cliques, pendant chains for
# Chain Processing, disconnected unions, and isolated vertices.


def _fuzz_gnp(rng: np.random.Generator, max_n: int) -> CSRGraph:
    """G(n, p) built from numpy alone (no networkx dependency)."""
    n = int(rng.integers(2, max_n + 1))
    # Expected degree between ~1 (shattered) and ~4 (mostly connected).
    p = float(rng.uniform(0.5, 4.0)) / max(n - 1, 1)
    src, dst = np.triu_indices(n, k=1)
    keep = rng.random(len(src)) < p
    return from_edge_arrays(
        src[keep].astype(np.int64), dst[keep].astype(np.int64), n, "fuzz-gnp"
    )


def _fuzz_path(rng, max_n):
    return path_graph(int(rng.integers(1, max_n + 1)), name="fuzz-path")


def _fuzz_cycle(rng, max_n):
    return cycle_graph(int(rng.integers(3, max(4, max_n + 1))), name="fuzz-cycle")


def _fuzz_star(rng, max_n):
    return star_graph(int(rng.integers(2, max_n + 1)), name="fuzz-star")


def _fuzz_complete(rng, max_n):
    return complete_graph(int(rng.integers(1, min(12, max_n) + 1)), name="fuzz-complete")


def _fuzz_tree(rng, max_n):
    branching = int(rng.integers(1, 4))
    height = int(rng.integers(1, 5 if branching > 1 else max(2, max_n // 2)))
    return balanced_tree(branching, height, name="fuzz-tree")


def _fuzz_caterpillar(rng, max_n):
    spine = int(rng.integers(2, max(3, max_n // 3)))
    return caterpillar(spine, int(rng.integers(1, 4)), name="fuzz-caterpillar")


def _fuzz_barbell(rng, max_n):
    clique = int(rng.integers(2, 7))
    return barbell(clique, int(rng.integers(1, max(2, max_n // 3))), name="fuzz-barbell")


def _fuzz_grid(rng, max_n):
    rows = int(rng.integers(1, 9))
    cols = int(rng.integers(1, max(2, max_n // max(rows, 1)) + 1))
    return grid_2d(rows, cols, name="fuzz-grid")


def _fuzz_tendril_ba(rng, max_n):
    """A small hub core with pendant tendrils (chain + winnow exercise)."""
    core = int(rng.integers(4, max(5, max_n // 2)))
    g = barabasi_albert(core, int(rng.integers(1, 3)), seed=int(rng.integers(2**31)))
    return add_tendrils(
        g,
        count=int(rng.integers(1, 6)),
        min_len=1,
        max_len=int(rng.integers(2, 6)),
        seed=int(rng.integers(2**31)),
        name="fuzz-tendril-ba",
    )


def _fuzz_union(rng, max_n):
    """Disjoint union of two smaller family members (disconnected path)."""
    half = max(2, max_n // 2)
    parts = [
        _SMALL_FAMILIES[rng.integers(len(_SMALL_FAMILIES))](rng, half)
        for _ in range(int(rng.integers(2, 4)))
    ]
    return disjoint_union(parts, name="fuzz-union")


def _fuzz_edgeless(rng, max_n):
    """Isolated vertices only — diameter 0, fully disconnected."""
    n = int(rng.integers(1, max_n + 1))
    empty = np.empty(0, dtype=np.int64)
    return from_edge_arrays(empty, empty, n, "fuzz-edgeless")


_SMALL_FAMILIES = [
    _fuzz_gnp,
    _fuzz_path,
    _fuzz_cycle,
    _fuzz_star,
    _fuzz_complete,
    _fuzz_tree,
    _fuzz_caterpillar,
    _fuzz_barbell,
    _fuzz_grid,
    _fuzz_tendril_ba,
]

#: Name → seeded factory ``(rng, max_vertices) -> CSRGraph``.
FUZZ_FAMILIES: dict[str, Callable[[np.random.Generator, int], CSRGraph]] = {
    "gnp": _fuzz_gnp,
    "path": _fuzz_path,
    "cycle": _fuzz_cycle,
    "star": _fuzz_star,
    "complete": _fuzz_complete,
    "tree": _fuzz_tree,
    "caterpillar": _fuzz_caterpillar,
    "barbell": _fuzz_barbell,
    "grid": _fuzz_grid,
    "tendril-ba": _fuzz_tendril_ba,
    "union": _fuzz_union,
    "edgeless": _fuzz_edgeless,
}


def build_fuzz_graph(
    seed: int, *, max_vertices: int = 64
) -> tuple[CSRGraph, str]:
    """Sample one fuzz graph, fully determined by ``seed``.

    Picks a family, builds it from a ``default_rng(seed)`` stream, and
    applies seeded mutations (extra isolated vertices, a random vertex
    relabeling) with small probability. Returns ``(graph, family)``;
    re-calling with the same seed and cap reproduces the graph
    byte-for-byte, which is what makes every fuzz failure replayable
    from its seed alone.
    """
    rng = np.random.default_rng(seed)
    names = list(FUZZ_FAMILIES)
    family = names[int(rng.integers(len(names)))]
    cap = max(2, max_vertices)
    graph = FUZZ_FAMILIES[family](rng, cap)
    if graph.num_vertices > cap:
        # Families treat the cap as a sizing hint; enforce it exactly so
        # callers (and the shrinker's budget) can rely on it.
        graph = induced_subgraph(
            graph, np.arange(cap, dtype=np.int64)
        ).graph.with_name(graph.name)
    if rng.random() < 0.25:
        graph = add_isolated_vertices(graph, int(rng.integers(1, 4)))
    if rng.random() < 0.5 and graph.num_vertices > 1:
        graph = permute_vertices(graph, seed=int(rng.integers(2**31)))
    return graph.with_name(f"fuzz-{family}-{seed}"), family
