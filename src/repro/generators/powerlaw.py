"""Power-law / scale-free generators.

Analogs of the paper's small-world inputs: *amazon0601* (co-purchases),
*as-skitter* / *internet* (Internet topology), *in-2004* / *uk-2002*
(web link graphs), and *soc-LiveJournal1* (social network). Their common
traits — extreme hubs, tiny diameters (7–45), dense cores — are exactly
where Winnow removes > 99 % of the vertices and F-Diam beats the
baselines by the largest margins.

Two processes are provided:

* :func:`barabasi_albert` — classic preferential attachment; clean
  power law with a single giant hub region (internet-topology-like).
* :func:`copying_model` — the web-graph copying process of Kleinberg et
  al.: each new page copies a fraction of a random existing page's
  links, producing the locally-dense, hub-heavy structure of web
  crawls.
* :func:`scale_free` — static power-law endpoint sampling. Unlike the
  two sequential processes above (``O(n)`` Python loops, fine at
  10^4–10^5 vertices), this one is a handful of array passes and is
  what the million-vertex benchmark tier uses: degree skew comes from
  sampling both endpoints of every edge from a truncated Pareto
  (Zipf-like) distribution over the vertex ids via the inverse CDF.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays, from_edge_chunks
from repro.graph.csr import CSRGraph

__all__ = [
    "barabasi_albert",
    "copying_model",
    "scale_free",
    "scale_free_chunked",
]


def scale_free(
    n: int,
    *,
    avg_degree: float = 3.0,
    exponent: float = 2.5,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """A power-law graph by vectorized endpoint sampling (million-scale).

    Both endpoints of ``n * avg_degree / 2`` candidate edges are drawn
    i.i.d. from the Chung–Lu rank weights ``w_r ~ r**(-1/(exponent-1))``
    through the inverse CDF of their continuous relaxation, so the
    realized degree distribution follows ``P(deg = d) ~ d**-exponent``
    — the hub-heavy skew of the preferential-attachment graphs without
    their sequential ``O(n)`` Python loop. The whole build is a few
    array passes over ``O(m)`` data, which is what makes the
    10^6-vertex benchmark tier feasible
    (:data:`repro.generators.registry.SCALE_ANALOGS`).

    Self-loops are dropped and parallel edges deduplicated by the CSR
    builder; the realized edge count therefore lands slightly below
    the ``avg_degree`` target (hubs absorb the duplicate draws).
    """
    if n < 2:
        raise AlgorithmError("scale_free requires n >= 2")
    if avg_degree <= 0:
        raise AlgorithmError("scale_free requires avg_degree > 0")
    if exponent <= 2.0:
        raise AlgorithmError("scale_free requires exponent > 2")
    rng = np.random.default_rng(seed)
    num_candidates = max(int(n * avg_degree / 2), 1)
    s = 1.0 / (exponent - 1.0)  # rank-weight exponent, in (0, 1)
    u = rng.random((2, num_candidates))
    # Inverse CDF of density ~ x**-s on [1, n + 1]: rank r is drawn
    # with probability ~ r**-s (up to discretization), i.e. the
    # Chung-Lu weight sequence for a degree exponent of `exponent`.
    top = float(n + 1) ** (1.0 - s)
    ranks = (1.0 + u * (top - 1.0)) ** (1.0 / (1.0 - s))
    ids = np.minimum(ranks.astype(np.int64) - 1, n - 1)
    src, dst = ids[0], ids[1]
    keep = src != dst
    return from_edge_arrays(
        src[keep], dst[keep], n, name or f"scale-free-{n}"
    )


def scale_free_chunked(
    n: int,
    *,
    avg_degree: float = 3.0,
    exponent: float = 2.5,
    seed: int = 0,
    chunk_edges: int = 1 << 20,
    name: str | None = None,
) -> CSRGraph:
    """A power-law graph sampled in fixed-size edge chunks (10^7 tier).

    The streaming twin of :func:`scale_free`: the same truncated-Pareto
    inverse-CDF endpoint sampling, but candidate edges are drawn
    ``chunk_edges`` at a time from a private
    ``default_rng([seed, chunk_index])`` stream per chunk and fed
    through :func:`repro.graph.build.from_edge_chunks`, so no more
    than ``O(chunk_edges)`` COO edges exist at once.

    ``chunk_edges`` is part of the graph definition (each chunk owns
    an independent RNG stream, so a different chunking draws different
    candidates) — pinned analogs must pin it alongside ``seed``. For a
    *fixed* ``chunk_edges`` the result is fully deterministic, and the
    per-chunk keying means generation could be parallelized or resumed
    per chunk without replaying the whole stream.
    """
    if n < 2:
        raise AlgorithmError("scale_free_chunked requires n >= 2")
    if avg_degree <= 0:
        raise AlgorithmError("scale_free_chunked requires avg_degree > 0")
    if exponent <= 2.0:
        raise AlgorithmError("scale_free_chunked requires exponent > 2")
    if chunk_edges < 1:
        raise AlgorithmError("chunk_edges must be >= 1")
    num_candidates = max(int(n * avg_degree / 2), 1)
    s = 1.0 / (exponent - 1.0)
    top = float(n + 1) ** (1.0 - s)

    def chunks():
        done = 0
        chunk_index = 0
        while done < num_candidates:
            size = min(chunk_edges, num_candidates - done)
            rng = np.random.default_rng([seed, chunk_index])
            u = rng.random((2, size))
            ranks = (1.0 + u * (top - 1.0)) ** (1.0 / (1.0 - s))
            ids = np.minimum(ranks.astype(np.int64) - 1, n - 1)
            yield ids[0], ids[1]
            done += size
            chunk_index += 1

    return from_edge_chunks(chunks, n, name or f"scale-free-chunked-{n}")


def barabasi_albert(
    n: int, m: int, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Barabási–Albert preferential attachment with ``m`` edges per vertex.

    The attachment step uses the standard "repeated-endpoints" trick:
    sampling uniformly from the flat array of all prior edge endpoints
    is equivalent to degree-proportional sampling and keeps the process
    ``O(n m)`` with array appends instead of weighted draws.
    """
    if m < 1 or n <= m:
        raise AlgorithmError("barabasi_albert requires 1 <= m < n")
    rng = np.random.default_rng(seed)
    # Seed clique on the first m + 1 vertices.
    seed_src, seed_dst = np.triu_indices(m + 1, k=1)
    num_seed = len(seed_src)
    total = num_seed + m * (n - m - 1)

    src = np.empty(total, dtype=np.int64)
    dst = np.empty(total, dtype=np.int64)
    src[:num_seed] = seed_src
    dst[:num_seed] = seed_dst
    # Flat endpoint pool: sampling it uniformly = degree-proportional
    # sampling. Preallocated so each step is O(m), not O(pool).
    pool = np.empty(2 * total, dtype=np.int64)
    pool[:num_seed] = seed_src
    pool[num_seed : 2 * num_seed] = seed_dst
    pool_len = 2 * num_seed
    edge_pos = num_seed

    for v in range(m + 1, n):
        targets = pool[rng.integers(0, pool_len, size=m)]
        # Duplicates within one step are merged by the builder; that is
        # the standard simple-graph BA variant.
        src[edge_pos : edge_pos + m] = v
        dst[edge_pos : edge_pos + m] = targets
        edge_pos += m
        pool[pool_len : pool_len + m] = v
        pool[pool_len + m : pool_len + 2 * m] = targets
        pool_len += 2 * m
    return from_edge_arrays(src, dst, n, name or f"ba-{n}-{m}")


def copying_model(
    n: int,
    out_degree: int = 7,
    *,
    copy_prob: float = 0.7,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Web-graph copying model.

    Each new vertex picks a random *prototype* among the existing
    vertices; each of its ``out_degree`` links either copies one of the
    prototype's links (probability ``copy_prob``) or goes to a uniform
    random existing vertex. Copying concentrates links on already
    popular pages, yielding web-crawl-like hubs and bow-tie cores.
    """
    if n < 2 or out_degree < 1:
        raise AlgorithmError("copying_model requires n >= 2, out_degree >= 1")
    if not 0.0 <= copy_prob <= 1.0:
        raise AlgorithmError("copy_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # Store per-vertex out-neighbour lists densely in one growing array.
    links = np.zeros((n, out_degree), dtype=np.int64)
    links[0] = 0  # vertex 0's slots self-point until overwritten below
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for v in range(1, n):
        prototype = int(rng.integers(0, v))
        copy_mask = rng.random(out_degree) < copy_prob
        uniform = rng.integers(0, v, size=out_degree)
        chosen = np.where(copy_mask, links[prototype], uniform)
        # Prototype links may point at ids >= v only for vertex 0's
        # placeholder row; clamp those to the prototype itself.
        chosen = np.where(chosen >= v, prototype, chosen)
        links[v] = chosen
        src_parts.append(np.full(out_degree, v, dtype=np.int64))
        dst_parts.append(chosen)
    return from_edge_arrays(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        n,
        name or f"copying-{n}-{out_degree}",
    )
