"""Synthetic graph generators.

Primitives with closed-form diameters (for tests), topology-class
generators matching the paper's evaluation inputs, perturbation
utilities, and the registry of the 17 paper-input analogs.
"""

from repro.generators.chains import add_tendrils, attach_chains, broom, lollipop
from repro.generators.citation import citation_graph
from repro.generators.delaunay import delaunay_graph
from repro.generators.geometric import random_geometric
from repro.generators.grid import grid_2d, grid_3d
from repro.generators.kronecker import kronecker
from repro.generators.perturb import (
    add_isolated_vertices,
    add_random_edges,
    disjoint_union,
    drop_random_edges,
    permute_vertices,
)
from repro.generators.powerlaw import barabasi_albert, copying_model
from repro.generators.primitives import (
    balanced_tree,
    barbell,
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.generators.registry import (
    PAPER_ANALOGS,
    AnalogSpec,
    build_analog,
    clear_cache,
)
from repro.generators.rmat import rmat
from repro.generators.road import road_network
from repro.generators.smallworld import watts_strogatz

__all__ = [
    "AnalogSpec",
    "PAPER_ANALOGS",
    "add_isolated_vertices",
    "add_random_edges",
    "add_tendrils",
    "attach_chains",
    "balanced_tree",
    "barbell",
    "barabasi_albert",
    "broom",
    "build_analog",
    "caterpillar",
    "citation_graph",
    "clear_cache",
    "complete_graph",
    "copying_model",
    "cycle_graph",
    "delaunay_graph",
    "disjoint_union",
    "drop_random_edges",
    "grid_2d",
    "grid_3d",
    "kronecker",
    "lollipop",
    "path_graph",
    "permute_vertices",
    "random_geometric",
    "rmat",
    "road_network",
    "star_graph",
    "watts_strogatz",
]
