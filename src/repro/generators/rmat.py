"""Recursive-MATrix (R-MAT) graph generator.

Analog of the paper's *rmat16.sym* / *rmat22.sym* Lonestar inputs and
the substrate for the Kronecker analog. R-MAT drops each edge into the
adjacency matrix by recursively choosing one of four quadrants with
probabilities ``(a, b, c, d)``; skewed probabilities produce the
power-law degree distributions and tiny diameters typical of social and
web graphs.

The quadrant walk is vectorized across all edges simultaneously: one
``scale``-iteration loop of whole-array Bernoulli draws instead of a
per-edge recursive descent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        Vertex count is ``2**scale``.
    edge_factor:
        Number of edges sampled per vertex (before dedup/self-loop
        removal, so the final count is slightly lower).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c``. Defaults are the
        Graph500 parameters, which also drive the paper's Kronecker
        input. High skew ⇒ heavy hubs plus isolated vertices.
    seed:
        RNG seed (generation is fully deterministic).
    """
    if scale < 0:
        raise AlgorithmError("rmat requires scale >= 0")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise AlgorithmError(f"invalid R-MAT probabilities a={a} b={b} c={c} d={d}")
    n = 1 << scale
    num_edges = n * edge_factor
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Probability of choosing the "lower half" bit for rows / cols:
    #   row bit 1 with prob c + d, col bit 1 with prob (b or d) given row.
    p_row1 = c + d
    p_col1_given_row0 = b / (a + b) if a + b > 0 else 0.0
    p_col1_given_row1 = d / (c + d) if c + d > 0 else 0.0
    for _ in range(scale):
        row_bit = rng.random(num_edges) < p_row1
        p_col = np.where(row_bit, p_col1_given_row1, p_col1_given_row0)
        col_bit = rng.random(num_edges) < p_col
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    return from_edge_arrays(src, dst, n, name or f"rmat-{scale}-{edge_factor}")
