"""Graph perturbation and composition utilities.

Several paper inputs are disconnected or contain isolated vertices
(kron_g500-logn21 has 26 % degree-0 vertices; the road maps have small
disconnected pockets). These wrappers produce such structures from any
base graph, and also provide random-edge noise for robustness tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "add_isolated_vertices",
    "disjoint_union",
    "add_random_edges",
    "drop_random_edges",
    "permute_vertices",
]


def _edge_arrays(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """All directed arcs of ``graph`` as (src, dst) arrays."""
    row_of = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    return row_of, graph.indices.astype(np.int64)


def add_isolated_vertices(
    graph: CSRGraph, count: int, name: str | None = None
) -> CSRGraph:
    """Append ``count`` degree-0 vertices to the id space."""
    if count < 0:
        raise AlgorithmError("add_isolated_vertices requires count >= 0")
    src, dst = _edge_arrays(graph)
    return from_edge_arrays(
        src, dst, graph.num_vertices + count, name or f"{graph.name}+iso{count}"
    )


def disjoint_union(graphs: list[CSRGraph], name: str | None = None) -> CSRGraph:
    """Disjoint union: component ``i``'s ids are offset by the sizes before it."""
    if not graphs:
        raise AlgorithmError("disjoint_union requires at least one graph")
    srcs, dsts = [], []
    offset = 0
    for g in graphs:
        s, d = _edge_arrays(g)
        srcs.append(s + offset)
        dsts.append(d + offset)
        offset += g.num_vertices
    return from_edge_arrays(
        np.concatenate(srcs),
        np.concatenate(dsts),
        offset,
        name or "+".join(g.name for g in graphs),
    )


def permute_vertices(
    graph: CSRGraph, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Relabel all vertices with a uniform random permutation.

    Growth-based generators (preferential attachment, copying,
    citation) produce ids correlated with age and therefore with
    centrality — vertex 0 is typically the best-connected, most central
    vertex. Real SNAP/web datasets have arbitrary ids. The benchmark
    analogs are permuted so that id-order heuristics (Algorithm 1's
    sequential scan, the "no 'u'" ablation's vertex-0 start) behave as
    they do on the paper's inputs rather than accidentally starting at
    the core.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices).astype(np.int64)
    src, dst = _edge_arrays(graph)
    return from_edge_arrays(
        perm[src], perm[dst], graph.num_vertices, name or f"{graph.name}-perm"
    )


def add_random_edges(
    graph: CSRGraph, count: int, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Add ``count`` uniform random edges (shortcuts collapse diameters)."""
    if count < 0:
        raise AlgorithmError("add_random_edges requires count >= 0")
    n = graph.num_vertices
    if n < 2:
        raise AlgorithmError("add_random_edges requires n >= 2")
    rng = np.random.default_rng(seed)
    src, dst = _edge_arrays(graph)
    extra_src = rng.integers(0, n, size=count)
    extra_dst = rng.integers(0, n, size=count)
    return from_edge_arrays(
        np.concatenate([src, extra_src]),
        np.concatenate([dst, extra_dst]),
        n,
        name or f"{graph.name}+rand{count}",
    )


def drop_random_edges(
    graph: CSRGraph, fraction: float, *, seed: int = 0, name: str | None = None
) -> CSRGraph:
    """Delete each undirected edge independently with probability ``fraction``."""
    if not 0.0 <= fraction <= 1.0:
        raise AlgorithmError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    src, dst = _edge_arrays(graph)
    upper = src < dst  # one record per undirected edge
    u_src, u_dst = src[upper], dst[upper]
    keep = rng.random(len(u_src)) >= fraction
    return from_edge_arrays(
        u_src[keep],
        u_dst[keep],
        graph.num_vertices,
        name or f"{graph.name}-drop{fraction}",
    )
