"""Chain-heavy constructions for stressing Chain Processing.

The paper's Chain Processing (§4.3) targets degree-1 tips followed by
degree-2 runs. These generators attach controlled numbers of pendant
chains to arbitrary host graphs so the tests and ablation benchmarks can
dial the chain content precisely — including the tricky cases where two
chains' removal regions overlap and where the chain tip carries the
global maximum eccentricity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = ["attach_chains", "add_tendrils", "lollipop", "broom"]


def attach_chains(
    graph: CSRGraph,
    num_chains: int,
    chain_length: int,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Attach ``num_chains`` pendant paths of ``chain_length`` edges.

    Anchor vertices are sampled uniformly from the host graph; each
    chain contributes ``chain_length`` new vertices ending in a
    degree-1 tip.
    """
    if num_chains < 0 or chain_length < 1:
        raise AlgorithmError("attach_chains requires num_chains >= 0, chain_length >= 1")
    if graph.num_vertices == 0:
        raise AlgorithmError("attach_chains requires a non-empty host graph")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    anchors = rng.integers(0, n, size=num_chains).astype(np.int64)

    new_ids = n + np.arange(num_chains * chain_length, dtype=np.int64).reshape(
        num_chains, chain_length
    )
    seq = np.concatenate([anchors[:, None], new_ids], axis=1)
    chain_src = seq[:, :-1].ravel()
    chain_dst = seq[:, 1:].ravel()

    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    src = np.concatenate([row_of, chain_src])
    dst = np.concatenate([graph.indices.astype(np.int64), chain_dst])
    return from_edge_arrays(
        src,
        dst,
        n + num_chains * chain_length,
        name or f"{graph.name}+chains{num_chains}x{chain_length}",
    )


def add_tendrils(
    graph: CSRGraph,
    count: int,
    min_len: int,
    max_len: int,
    *,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Attach ``count`` pendant chains with lengths in ``[min_len, max_len]``.

    This is how the small-world benchmark analogs acquire realistic
    diameters: a preferential-attachment or copying core alone has a
    diameter of ~5 at laptop scale, whereas the real SNAP/web graphs the
    paper evaluates owe their diameters of 20–45 to *thin peripheral
    tendrils* hanging off the dense core. Attaching a few dozen
    variable-length chains (a fraction of a percent of the vertices)
    restores that structure — the diameter becomes tendril-tip to
    tendril-tip, the hub's half-diameter Winnow ball swallows the core
    plus the tendril interiors, and the eccentricity spread of the
    periphery lets Eliminate work, reproducing the paper's removal
    profile (Table 4) and BFS-count regime (Table 3).
    """
    if count < 0 or min_len < 1 or max_len < min_len:
        raise AlgorithmError("add_tendrils requires count >= 0, 1 <= min_len <= max_len")
    if graph.num_vertices == 0:
        raise AlgorithmError("add_tendrils requires a non-empty host graph")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    anchors = rng.integers(0, n, size=count)
    lengths = rng.integers(min_len, max_len + 1, size=count)

    srcs = [np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))]
    dsts = [graph.indices.astype(np.int64)]
    next_id = n
    for anchor, length in zip(anchors, lengths):
        ids = np.arange(next_id, next_id + length, dtype=np.int64)
        seq = np.concatenate(([anchor], ids))
        srcs.append(seq[:-1])
        dsts.append(seq[1:])
        next_id += int(length)
    return from_edge_arrays(
        np.concatenate(srcs),
        np.concatenate(dsts),
        next_id,
        name or f"{graph.name}+tendrils{count}",
    )


def lollipop(clique: int, stem: int, name: str | None = None) -> CSRGraph:
    """A ``clique``-clique with a pendant path of ``stem`` edges.

    Diameter ``stem + 1`` for ``clique >= 2``. The stem tip is the
    unique maximum-eccentricity vertex paired (Theorem 2) with the
    far side of the clique — a minimal case where Chain Processing's
    "keep only the tip" reasoning must preserve exactness.
    """
    if clique < 2 or stem < 1:
        raise AlgorithmError("lollipop requires clique >= 2, stem >= 1")
    c_src, c_dst = np.triu_indices(clique, k=1)
    p = np.arange(clique - 1, clique - 1 + stem, dtype=np.int64)
    src = np.concatenate([c_src.astype(np.int64), p])
    dst = np.concatenate([c_dst.astype(np.int64), p + 1])
    return from_edge_arrays(src, dst, clique + stem, name or f"lollipop-{clique}-{stem}")


def broom(handle: int, bristles: int, name: str | None = None) -> CSRGraph:
    """A path of ``handle`` edges ending in ``bristles`` pendant leaves.

    The bristles all share the path's far endpoint as their anchor, so
    any two bristles are 2 apart and the diameter is
    ``max(handle + 1, 2)`` for ``bristles >= 1`` (``handle`` with no
    bristles). Exercises multiple chains sharing one anchor.
    """
    if handle < 1 or bristles < 0:
        raise AlgorithmError("broom requires handle >= 1, bristles >= 0")
    p = np.arange(handle, dtype=np.int64)
    leaf_ids = handle + 1 + np.arange(bristles, dtype=np.int64)
    src = np.concatenate([p, np.full(bristles, handle, dtype=np.int64)])
    dst = np.concatenate([p + 1, leaf_ids])
    return from_edge_arrays(
        src, dst, handle + 1 + bristles, name or f"broom-{handle}-{bristles}"
    )
