"""Elementary graph constructions with known diameters.

These are the ground-truth fixtures of the test suite: each generator
documents the exact diameter of its output, so correctness tests can
assert against closed-form values instead of an oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import empty_graph, from_edge_arrays
from repro.graph.csr import CSRGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "balanced_tree",
    "caterpillar",
    "barbell",
]


def path_graph(n: int, name: str | None = None) -> CSRGraph:
    """Path on ``n`` vertices. Diameter ``n - 1``."""
    if n <= 0:
        raise AlgorithmError("path_graph requires n >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    return from_edge_arrays(src, src + 1, n, name or f"path-{n}")


def cycle_graph(n: int, name: str | None = None) -> CSRGraph:
    """Cycle on ``n >= 3`` vertices. Diameter ``⌊n/2⌋``."""
    if n < 3:
        raise AlgorithmError("cycle_graph requires n >= 3")
    src = np.arange(n, dtype=np.int64)
    return from_edge_arrays(src, (src + 1) % n, n, name or f"cycle-{n}")


def star_graph(n: int, name: str | None = None) -> CSRGraph:
    """Star: centre 0 joined to ``n - 1`` leaves. Diameter 2 (1 if n=2)."""
    if n <= 0:
        raise AlgorithmError("star_graph requires n >= 1")
    if n == 1:
        return empty_graph(1, name or "star-1")
    leaves = np.arange(1, n, dtype=np.int64)
    return from_edge_arrays(
        np.zeros(n - 1, dtype=np.int64), leaves, n, name or f"star-{n}"
    )


def complete_graph(n: int, name: str | None = None) -> CSRGraph:
    """Complete graph. Diameter 1 (0 if n=1)."""
    if n <= 0:
        raise AlgorithmError("complete_graph requires n >= 1")
    src, dst = np.triu_indices(n, k=1)
    return from_edge_arrays(
        src.astype(np.int64), dst.astype(np.int64), n, name or f"complete-{n}"
    )


def balanced_tree(branching: int, height: int, name: str | None = None) -> CSRGraph:
    """Complete ``branching``-ary tree of the given height.

    Diameter ``2 * height`` (leaf to leaf through the root).
    """
    if branching < 1 or height < 0:
        raise AlgorithmError("balanced_tree requires branching >= 1, height >= 0")
    # Vertex ids in BFS order; the parent of child c is (c - 1) // branching.
    n = (branching ** (height + 1) - 1) // (branching - 1) if branching > 1 else height + 1
    children = np.arange(1, n, dtype=np.int64)
    parents = (children - 1) // branching
    return from_edge_arrays(parents, children, n, name or f"tree-{branching}-{height}")


def caterpillar(spine: int, legs_per_vertex: int, name: str | None = None) -> CSRGraph:
    """Path of ``spine`` vertices, each with ``legs_per_vertex`` pendant legs.

    Diameter ``spine + 1`` for ``legs_per_vertex >= 1`` and ``spine >= 2``
    (leg–spine–...–spine–leg). A dense source of degree-1 vertices for
    Chain Processing tests.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise AlgorithmError("caterpillar requires spine >= 1, legs >= 0")
    spine_src = np.arange(spine - 1, dtype=np.int64)
    leg_owners = np.repeat(np.arange(spine, dtype=np.int64), legs_per_vertex)
    n_legs = spine * legs_per_vertex
    leg_ids = spine + np.arange(n_legs, dtype=np.int64)
    src = np.concatenate([spine_src, leg_owners])
    dst = np.concatenate([spine_src + 1, leg_ids])
    return from_edge_arrays(
        src, dst, spine + n_legs, name or f"caterpillar-{spine}x{legs_per_vertex}"
    )


def barbell(clique: int, bridge: int, name: str | None = None) -> CSRGraph:
    """Two ``clique``-cliques joined by a ``bridge``-edge path.

    Diameter ``bridge + 2`` for ``clique >= 2`` — a worst case for
    centrally-seeded pruning because the periphery is dense.
    """
    if clique < 1 or bridge < 1:
        raise AlgorithmError("barbell requires clique >= 1, bridge >= 1")
    a_src, a_dst = np.triu_indices(clique, k=1)
    b_src, b_dst = a_src + clique + bridge - 1, a_dst + clique + bridge - 1
    # Path: vertex clique-1 (in clique A) .. clique+bridge-1 (first of B).
    p = np.arange(clique - 1, clique + bridge - 1, dtype=np.int64)
    n = 2 * clique + bridge - 1
    src = np.concatenate([a_src.astype(np.int64), b_src.astype(np.int64), p])
    dst = np.concatenate([a_dst.astype(np.int64), b_dst.astype(np.int64), p + 1])
    return from_edge_arrays(src, dst, n, name or f"barbell-{clique}-{bridge}")
