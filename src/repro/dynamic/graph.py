"""Delta-overlay dynamic graph over an immutable CSR base.

Every structure in the package below this layer —
:class:`~repro.graph.csr.CSRGraph`, the traversal kernel, the stores —
is deliberately immutable; an evolving graph therefore cannot be an
in-place mutation. Instead :class:`DynamicGraph` keeps a frozen CSR
*base* plus a small **delta overlay**: per-vertex sets of edges added
on top of the base and edges removed from it. Batched mutations
(:meth:`apply`) update the overlay in O(batch); reads merge base rows
with the overlay on the fly. When the overlay grows past a configurable
fraction of the base, it is **compacted**: the merged edge set is
rebuilt into a fresh canonical CSR via
:func:`~repro.graph.build.from_edge_arrays` and the overlay empties.
Compaction never changes the observable graph — the rebuilt arrays are
the same canonical (sorted, deduplicated, symmetrized) CSR the overlay
view produces, a property the mutation fuzzer checks after every batch.

Epochs
------
Every batch that changes the edge set bumps ``epoch`` by one. The epoch
is the unit of invalidation for everything stacked on top: the
:class:`~repro.dynamic.diameter.DynamicDiameter` maintainer records the
epoch its bounds are valid for, the query engine drops memoized
distance rows on an epoch change, and :meth:`digest` folds the epoch
into the warm-start cache key (see
:func:`repro.graph.io.graph_digest`) so a sidecar written at epoch
``k`` can never be served at epoch ``k' != k`` — even if an
insert-then-delete sequence restores the exact same byte content.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.build import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.io import graph_digest

__all__ = ["DynamicGraph", "MutationBatch"]


@dataclass(frozen=True)
class MutationBatch:
    """Outcome of one :meth:`DynamicGraph.apply` batch.

    ``inserted``/``deleted`` count edges that actually changed the
    graph; the ``noop_*`` fields count requests that were already
    satisfied (inserting a present edge, deleting an absent one) —
    they are accepted, counted, and change nothing, so replayed or
    overlapping batches stay idempotent. ``epoch`` is the graph epoch
    *after* the batch (unchanged when nothing was applied).
    """

    epoch: int
    inserted: int = 0
    deleted: int = 0
    noop_inserts: int = 0
    noop_deletes: int = 0

    @property
    def mutated(self) -> bool:
        """Whether the batch changed the edge set at all."""
        return (self.inserted + self.deleted) > 0


def _pairs(edges) -> list[tuple[int, int]]:
    """Normalize an iterable of edge pairs into ``(u, v)`` int tuples."""
    out = []
    for pair in edges:
        try:
            u, v = pair
        except (TypeError, ValueError) as exc:
            raise AlgorithmError(
                f"edge {pair!r} is not a (u, v) pair"
            ) from exc
        out.append((int(u), int(v)))
    return out


class DynamicGraph:
    """A mutable edge set presented as epoch-tagged immutable CSR views.

    Parameters
    ----------
    base:
        The starting graph. Never mutated; compaction replaces the
        internal reference with a rebuilt CSR.
    compaction_ratio:
        Compact once the overlay holds more than this fraction of the
        base's undirected edges (and at least ``min_compaction_edges``).
        ``0`` compacts after every mutating batch, which makes every
        :meth:`view` O(1) at the cost of O(m log m) per batch.
    min_compaction_edges:
        Absolute overlay-size floor below which compaction is skipped —
        rebuilding a million-edge CSR to fold in three edges is the
        exact pathology the overlay exists to avoid.
    """

    def __init__(
        self,
        base: CSRGraph,
        *,
        compaction_ratio: float = 0.25,
        min_compaction_edges: int = 4096,
    ):
        if compaction_ratio < 0:
            raise AlgorithmError("compaction_ratio must be >= 0")
        if min_compaction_edges < 0:
            raise AlgorithmError("min_compaction_edges must be >= 0")
        self._base = base
        self.name = base.name
        self.compaction_ratio = float(compaction_ratio)
        self.min_compaction_edges = int(min_compaction_edges)
        self.epoch = 0
        self.compactions = 0
        #: Undirected overlay pairs, stored with u < v.
        self._added: set[tuple[int, int]] = set()
        self._removed: set[tuple[int, int]] = set()
        self._num_edges = base.num_edges
        #: Per-epoch batch records (index k = the batch that produced
        #: epoch k+... — see mutations_since). Epoch 0 has no record.
        self._log: list[MutationBatch] = []
        self._view: CSRGraph | None = None
        self._view_epoch = -1

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        """Current undirected edge count (tracked, not recounted)."""
        return self._num_edges

    @property
    def base(self) -> CSRGraph:
        """The current compacted base (reference only; never mutated)."""
        return self._base

    @property
    def overlay_edges(self) -> int:
        """Undirected edges currently carried by the overlay."""
        return len(self._added) + len(self._removed)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is currently present."""
        key = (u, v) if u < v else (v, u)
        if key in self._added:
            return True
        if key in self._removed:
            return False
        return self._base.has_edge(u, v)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted current neighbours of ``v`` (base merged with overlay)."""
        row = np.asarray(self._base.neighbors(v), dtype=np.int64)
        extra = [b if a == v else a for a, b in self._added if v in (a, b)]
        gone = {b if a == v else a for a, b in self._removed if v in (a, b)}
        if gone:
            row = row[~np.isin(row, np.fromiter(gone, dtype=np.int64))]
        if extra:
            row = np.unique(np.concatenate([row, np.asarray(extra, dtype=np.int64)]))
        return row

    # ------------------------------------------------------------------
    # Mutation surface
    # ------------------------------------------------------------------
    def apply(self, inserts=(), deletes=()) -> MutationBatch:
        """Apply one batched mutation; returns its :class:`MutationBatch`.

        Inserts are applied before deletes, so a batch carrying both
        for the same pair nets out to the delete. Self-loops and
        out-of-range endpoints are rejected with
        :class:`~repro.errors.AlgorithmError` before anything is
        applied — a batch is all-or-nothing with respect to
        validation. The epoch advances only when the edge set actually
        changed.
        """
        n = self._base.num_vertices
        ins = _pairs(inserts)
        dels = _pairs(deletes)
        for u, v in ins + dels:
            if not (0 <= u < n and 0 <= v < n):
                raise AlgorithmError(
                    f"edge ({u}, {v}) out of range for n={n}"
                )
            if u == v:
                raise AlgorithmError(f"self-loop ({u}, {v}) not allowed")

        inserted = deleted = noop_ins = noop_del = 0
        for u, v in ins:
            key = (u, v) if u < v else (v, u)
            if key in self._added or (
                key not in self._removed and self._base.has_edge(u, v)
            ):
                noop_ins += 1
                continue
            if key in self._removed:
                self._removed.discard(key)
            else:
                self._added.add(key)
            self._num_edges += 1
            inserted += 1
        for u, v in dels:
            key = (u, v) if u < v else (v, u)
            if key in self._added:
                self._added.discard(key)
            elif key not in self._removed and self._base.has_edge(u, v):
                self._removed.add(key)
            else:
                noop_del += 1
                continue
            self._num_edges -= 1
            deleted += 1

        if inserted or deleted:
            self.epoch += 1
        batch = MutationBatch(
            epoch=self.epoch,
            inserted=inserted,
            deleted=deleted,
            noop_inserts=noop_ins,
            noop_deletes=noop_del,
        )
        if batch.mutated:
            self._log.append(batch)
            self.compact()
        return batch

    def mutations_since(self, epoch: int) -> tuple[int, int]:
        """Total ``(inserted, deleted)`` across batches after ``epoch``."""
        inserted = deleted = 0
        for batch in self._log:
            if batch.epoch > epoch:
                inserted += batch.inserted
                deleted += batch.deleted
        return inserted, deleted

    # ------------------------------------------------------------------
    # Views, compaction, digest
    # ------------------------------------------------------------------
    def view(self) -> CSRGraph:
        """The current graph as a canonical immutable CSR.

        Cached per epoch; the overlay (if any) is merged into a rebuilt
        CSR, byte-identical to what compaction would install as the new
        base. The view's ``storage`` tag embeds the epoch, so two views
        of different epochs never alias in any digest-keyed cache even
        if their byte content coincides.
        """
        if self._view is not None and self._view_epoch == self.epoch:
            return self._view
        storage = f"dynamic:e{self.epoch}"
        if not self._added and not self._removed:
            merged = self._base
        else:
            src, dst = self._merged_edge_arrays()
            merged = from_edge_arrays(
                src, dst, self._base.num_vertices, name=self.name
            )
        view = CSRGraph(
            merged.indptr, merged.indices, name=self.name, storage=storage
        )
        self._view = view
        self._view_epoch = self.epoch
        return view

    def _merged_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current undirected edge list (u < v) as two int64 arrays."""
        base = self._base
        n = base.num_vertices
        row_of = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(base.indptr)
        )
        cols = base.indices.astype(np.int64)
        keep = row_of < cols
        src, dst = row_of[keep], cols[keep]
        if self._removed:
            gone = np.fromiter(
                (u * n + v for u, v in self._removed),
                dtype=np.int64,
                count=len(self._removed),
            )
            mask = ~np.isin(src * n + dst, gone)
            src, dst = src[mask], dst[mask]
        if self._added:
            add = np.asarray(sorted(self._added), dtype=np.int64)
            src = np.concatenate([src, add[:, 0]])
            dst = np.concatenate([dst, add[:, 1]])
        return src, dst

    def compact(self, *, force: bool = False) -> bool:
        """Fold the overlay into a rebuilt base CSR; True if it ran.

        Triggered automatically by :meth:`apply` once the overlay
        exceeds ``compaction_ratio`` of the base's edges (and the
        ``min_compaction_edges`` floor); ``force=True`` compacts any
        non-empty overlay immediately.
        """
        overlay = self.overlay_edges
        if overlay == 0:
            return False
        if not force:
            threshold = max(
                self.min_compaction_edges,
                int(self.compaction_ratio * max(self._base.num_edges, 1)),
            )
            if overlay < threshold:
                return False
        view = self.view()
        # Re-wrap with the plain storage tag: the base is an ordinary
        # CSR; only views carry the epoch tag.
        self._base = CSRGraph(view.indptr, view.indices, name=self.name)
        self._added.clear()
        self._removed.clear()
        self.compactions += 1
        return True

    def digest(self) -> str:
        """Epoch-aware cache digest of the current graph.

        Folds :attr:`epoch` into :func:`~repro.graph.io.graph_digest`
        so warm-start sidecars and memo keys written against one epoch
        are unreachable from any other — including a later epoch whose
        byte content happens to match (insert-then-delete identity).
        """
        return graph_digest(self.view(), epoch=self.epoch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph({self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, epoch={self.epoch}, "
            f"overlay={self.overlay_edges})"
        )
