"""Dynamic-graph layer: edge churn over the static CSR stack.

``repro.dynamic`` turns the package's frozen-graph machinery into an
evolving-graph service substrate:

* :class:`DynamicGraph` — batched edge insert/delete streams over an
  immutable CSR base via a delta overlay, with periodic compaction
  into a rebuilt canonical CSR and an epoch counter that tags every
  view and digest (see :mod:`repro.dynamic.graph`).
* :class:`DynamicDiameter` — maintains the exact diameter across
  mutations by repairing bounds incrementally (insertions only shrink
  distances, so cached upper bounds survive; one witness BFS plus a
  candidate sweep re-validates exactly what a batch can break) and
  falls back to cold :func:`~repro.core.fdiam.fdiam` when deletions
  invalidate the cached state or the cost model says repair loses
  (see :mod:`repro.dynamic.diameter`).

Correctness of the whole layer is fuzzed differentially against
recompute-from-scratch after every batch: ``repro fuzz --mutate``
(:mod:`repro.verify.mutation`).
"""

from repro.dynamic.diameter import DynamicDiameter, RepairStats
from repro.dynamic.graph import DynamicGraph, MutationBatch

__all__ = [
    "DynamicDiameter",
    "DynamicGraph",
    "MutationBatch",
    "RepairStats",
]
