"""Incremental diameter maintenance over a :class:`DynamicGraph`.

The repair rules (DESIGN.md §16 carries the proofs):

* **Insertion** of an edge can only *shrink* shortest-path distances,
  so after an insert-only batch every per-vertex eccentricity upper
  bound recorded by the last full run — the sidecar/status array of
  PR 4, clipped to the old diameter — is still a valid upper bound,
  and the old diameter is a valid *upper* bound on the new one. What
  insertion invalidates is the *lower* bound: the old witness's
  eccentricity may have dropped. Repair therefore re-validates exactly
  what the mutation class can break: one BFS from the stored witness
  re-establishes an achieved lower bound ``lb``, and only vertices
  whose stale upper bound still exceeds ``lb`` (the *candidates*) can
  possibly realize a larger eccentricity — each is swept once, in
  descending stale-bound order, raising ``lb`` and tightening bounds
  until no candidate remains. The result is exact: every vertex ends
  with ``ub <= lb`` and ``lb`` is an achieved eccentricity.
* **Deletion** can only grow distances (or disconnect), so the cached
  upper bounds are worthless after a delete-containing batch — the
  maintainer falls back to a cold :func:`~repro.core.fdiam.fdiam` run
  and refreshes its repairable state from the final run state.
* **Disconnected** previous state also forces a cold run: the CC
  convention (largest-component eccentricity + infinity flag) is not
  monotone across connect/disconnect events, so no bound survives.

A cost model guards the repair path: when the estimated repair cost
(1 witness BFS + one BFS per candidate) exceeds
``repair_budget_factor ×`` the last cold run's traversal count, repair
would lose to recomputation and the maintainer recomputes instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bfs.kernel import TraversalKernel
from repro.core.config import FDiamConfig
from repro.core.fdiam import fdiam_with_state
from repro.core.state import MAX_BOUND
from repro.core.stats import Reason
from repro.dynamic.graph import DynamicGraph
from repro.errors import AlgorithmError

__all__ = ["DynamicDiameter", "RepairStats"]


@dataclass(frozen=True)
class RepairStats:
    """What one :meth:`DynamicDiameter.refresh` actually did.

    ``strategy`` is ``"noop"`` (bounds already valid), ``"repair"``
    (incremental witness + candidate sweeps), or ``"recompute"``
    (cold fdiam). ``candidates`` is the size of the stale-bound
    candidate set the repair path examined (0 outside repair);
    ``bfs_traversals`` counts the BFS runs this refresh spent.
    """

    epoch: int
    strategy: str
    reason: str
    bfs_traversals: int = 0
    candidates: int = 0
    wall_s: float = 0.0


class DynamicDiameter:
    """Maintains the exact (CC-convention) diameter across mutations.

    Lazily consistent: mutations on the underlying
    :class:`DynamicGraph` cost nothing here until :meth:`refresh` (or
    the :attr:`diameter` property) is called, at which point the
    maintainer repairs or recomputes up to the graph's current epoch.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        config: FDiamConfig | None = None,
        *,
        repair_budget_factor: float = 1.0,
    ):
        if repair_budget_factor < 0:
            raise AlgorithmError("repair_budget_factor must be >= 0")
        self.graph = graph
        # The repairable state needs whole-graph status arrays, so the
        # cold path runs the plain driver (prep's component splitting
        # would misalign the vertex ids — same reason fdiam_cached does).
        self.config = (config or FDiamConfig()).ablate(prep="off")
        self.repair_budget_factor = float(repair_budget_factor)
        self.last_repair: RepairStats | None = None
        self.repairs = 0
        self.recomputes = 0
        self._valid_epoch = -1
        self._diameter: int | None = None
        self._connected = True
        self._witness = -1
        self._ecc_ub: np.ndarray | None = None
        self._last_cold_bfs = 0

    # ------------------------------------------------------------------
    @property
    def diameter(self) -> int:
        """The exact diameter at the graph's current epoch."""
        self.refresh()
        assert self._diameter is not None
        return self._diameter

    @property
    def connected(self) -> bool:
        self.refresh()
        return self._connected

    @property
    def infinite(self) -> bool:
        """CC-convention mirror of :class:`DiameterResult.infinite`."""
        return not self.connected

    @property
    def valid_epoch(self) -> int:
        """Epoch the maintained bounds are currently valid for."""
        return self._valid_epoch

    # ------------------------------------------------------------------
    def seed_from_artifacts(self, art) -> bool:
        """Adopt a warm-start sidecar as the repairable state.

        Only accepted when the sidecar matches the *current* epoch's
        digest (the store layer already keys by it); the artifact's
        status array becomes the stale-but-repairable upper bounds and
        its witness the lower-bound anchor. Returns whether it was
        adopted.
        """
        n = self.graph.num_vertices
        if art is None or int(art.num_vertices) != n:
            return False
        if str(art.digest) != self.graph.digest():
            return False
        witness = int(art.witness)
        if not 0 <= witness < n:
            return False
        diameter = int(art.diameter)
        status = np.asarray(art.status, dtype=np.int64)
        numeric = (status >= 0) & (status < MAX_BOUND)
        self._ecc_ub = np.where(
            numeric, np.minimum(status, diameter), diameter
        ).astype(np.int64)
        self._diameter = diameter
        self._connected = bool(art.connected)
        self._witness = witness
        self._valid_epoch = self.graph.epoch
        return True

    # ------------------------------------------------------------------
    def refresh(self) -> RepairStats:
        """Bring the maintained bounds up to the graph's current epoch."""
        t0 = time.perf_counter()
        epoch = self.graph.epoch
        if self._valid_epoch == epoch and self._diameter is not None:
            stats = RepairStats(
                epoch=epoch,
                strategy="noop",
                reason="bounds already valid for this epoch",
                wall_s=time.perf_counter() - t0,
            )
            self.last_repair = stats
            return stats
        if self._valid_epoch < 0 or self._diameter is None:
            return self._recompute(epoch, "initial computation", t0)
        inserted, deleted = self.graph.mutations_since(self._valid_epoch)
        if self._deletes_invalidate(deleted):
            return self._recompute(
                epoch,
                f"{deleted} deletion(s) since epoch {self._valid_epoch} "
                "invalidate every cached upper bound",
                t0,
            )
        if not self._connected:
            return self._recompute(
                epoch,
                "previous state disconnected; insertions can merge "
                "components (CC convention is not monotone)",
                t0,
            )
        return self._repair(epoch, t0)

    @staticmethod
    def _deletes_invalidate(deleted: int) -> bool:
        """Whether the pending window's deletions forbid bound repair."""
        return deleted > 0

    @staticmethod
    def _candidates(ecc_ub: np.ndarray, lb: int) -> np.ndarray:
        """Vertices whose stale upper bound still exceeds ``lb``."""
        return np.flatnonzero(ecc_ub > lb)

    # ------------------------------------------------------------------
    def _repair(self, epoch: int, t0: float) -> RepairStats:
        """Insert-only incremental repair (see module docstring)."""
        assert self._ecc_ub is not None and self._diameter is not None
        view = self.graph.view()
        kernel = TraversalKernel(view)
        ub = self._ecc_ub
        # 1. Re-validate the lower bound: one BFS from the old witness.
        #    Its eccentricity is exact, so it both anchors lb and
        #    tightens the witness's own upper bound.
        lb = int(kernel.bfs(self._witness).eccentricity)
        ub[self._witness] = lb
        bfs = 1
        witness = self._witness
        # 2. Only vertices whose stale (still-valid) upper bound exceeds
        #    lb can realize a larger eccentricity.
        candidates = self._candidates(ub, lb)
        est_recompute = max(4, self._last_cold_bfs)
        if 1 + len(candidates) > self.repair_budget_factor * est_recompute:
            return self._recompute(
                epoch,
                f"repair estimate {1 + len(candidates)} BFS exceeds "
                f"{self.repair_budget_factor:g}x recompute estimate "
                f"{est_recompute}",
                t0,
                extra_bfs=bfs,
                candidates=len(candidates),
            )
        # 3. Sweep candidates in descending stale-bound order; each BFS
        #    yields an exact eccentricity, tightening ub and possibly
        #    raising lb, until no candidate's bound exceeds lb.
        order = candidates[np.argsort(-ub[candidates], kind="stable")]
        for v in order:
            v = int(v)
            if ub[v] <= lb:
                continue
            ecc = int(kernel.bfs(v).eccentricity)
            bfs += 1
            ub[v] = ecc
            if ecc > lb:
                lb = ecc
                witness = v
        self._diameter = lb
        self._witness = witness
        self._valid_epoch = epoch
        self.repairs += 1
        stats = RepairStats(
            epoch=epoch,
            strategy="repair",
            reason=f"insert-only window; {len(candidates)} candidate(s)",
            bfs_traversals=bfs,
            candidates=len(candidates),
            wall_s=time.perf_counter() - t0,
        )
        self.last_repair = stats
        return stats

    # ------------------------------------------------------------------
    def _recompute(
        self,
        epoch: int,
        reason: str,
        t0: float,
        *,
        extra_bfs: int = 0,
        candidates: int = 0,
    ) -> RepairStats:
        """Cold fdiam run; refreshes the repairable state wholesale."""
        view = self.graph.view()
        if view.num_vertices == 0:
            self._diameter = 0
            self._connected = True
            self._witness = -1
            self._ecc_ub = np.empty(0, dtype=np.int64)
            self._valid_epoch = epoch
            bfs = extra_bfs
        else:
            result, state = fdiam_with_state(view, self.config)
            diameter = result.diameter
            status = state.status
            numeric = (status >= 0) & (status < MAX_BOUND)
            self._ecc_ub = np.where(
                numeric, np.minimum(status, diameter), diameter
            ).astype(np.int64)
            self._diameter = diameter
            self._connected = result.connected
            self._witness = _pick_witness(state, diameter)
            self._last_cold_bfs = result.stats.bfs_traversals
            self._valid_epoch = epoch
            bfs = extra_bfs + result.stats.bfs_traversals
        self.recomputes += 1
        stats = RepairStats(
            epoch=epoch,
            strategy="recompute",
            reason=reason,
            bfs_traversals=bfs,
            candidates=candidates,
            wall_s=time.perf_counter() - t0,
        )
        self.last_repair = stats
        return stats


def _pick_witness(state, diameter: int) -> int:
    """A vertex whose eccentricity provably equals ``diameter``.

    Same selection rule as the cache layer's sidecar writer: prefer an
    explicitly evaluated vertex, fall back through any exact-status
    vertex to the max-degree start.
    """
    status = state.status
    exact = status == diameter
    computed = exact & (state.reason == Reason.COMPUTED)
    if computed.any():
        return int(np.flatnonzero(computed)[0])
    if exact.any():
        return int(np.flatnonzero(exact)[0])
    return state.graph.max_degree_vertex()
