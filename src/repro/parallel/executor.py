"""Deterministic chunked executor.

A single-process stand-in for the paper's OpenMP thread team (this
container has one CPU core, so real threads cannot demonstrate
scaling — see DESIGN.md §2). The executor runs chunk kernels
sequentially but *accounts* work per simulated thread exactly as the
round-robin chunk schedule would distribute it, producing the per-level
imbalance profile that the cost model converts into modeled parallel
runtimes.

It is also a genuinely useful execution abstraction: kernels observe
the same chunk boundaries and ordering a static OpenMP schedule would
produce, so algorithms built on it are "parallel-shaped" and their
results are independent of the simulated thread count (verified by the
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import AlgorithmError
from repro.parallel.chunking import DEFAULT_CHUNK_SIZE, assign_round_robin, thread_work

__all__ = ["StepAccounting", "ChunkedExecutor"]


@dataclass(frozen=True)
class StepAccounting:
    """Work accounting of one executor step (one BFS level, typically).

    Attributes
    ----------
    per_thread_work:
        Weighted work assigned to each simulated thread.
    total_work:
        Sum of the weights.
    critical_path:
        The maximum per-thread work — the level's span under the
        simulated schedule.
    """

    per_thread_work: np.ndarray
    total_work: int
    critical_path: int

    @property
    def imbalance(self) -> float:
        """max/mean work ratio (1.0 = perfectly balanced)."""
        mean = self.total_work / max(len(self.per_thread_work), 1)
        if mean == 0:
            return 1.0
        return self.critical_path / mean


@dataclass
class ChunkedExecutor:
    """Simulated thread team with static round-robin chunk scheduling."""

    num_threads: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    history: list[StepAccounting] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise AlgorithmError("num_threads must be >= 1")

    def map_chunks(
        self,
        kernel: Callable[[np.ndarray], object],
        items: np.ndarray,
        weights: np.ndarray | Sequence[int] | None = None,
    ) -> list[object]:
        """Apply ``kernel`` to each chunk of ``items``; account the work.

        ``weights`` defaults to 1 per item; BFS passes out-degrees. The
        kernel sees chunks in schedule order (thread 0's chunks first
        would reorder work, so chunks run in worklist order — the same
        order a barrier-synchronized level produces observably).

        Returns the kernel results in chunk order.
        """
        items = np.asarray(items)
        assignment = assign_round_robin(len(items), self.num_threads, self.chunk_size)
        w = (
            np.ones(len(items), dtype=np.int64)
            if weights is None
            else np.asarray(weights, dtype=np.int64)
        )
        if len(w) != len(items):
            raise AlgorithmError(
                f"weights length {len(w)} != items length {len(items)}"
            )
        per_thread = thread_work(assignment, w)
        self.history.append(
            StepAccounting(
                per_thread_work=per_thread,
                total_work=int(w.sum()),
                critical_path=int(per_thread.max(initial=0)),
            )
        )
        results = []
        for c in range(assignment.num_chunks):
            lo, hi = assignment.bounds[c], assignment.bounds[c + 1]
            results.append(kernel(items[lo:hi]))
        return results

    def total_critical_path(self) -> int:
        """Sum of per-step critical paths (the modeled parallel work)."""
        return sum(step.critical_path for step in self.history)

    def total_work(self) -> int:
        """Sum of all work over all steps (the modeled serial work)."""
        return sum(step.total_work for step in self.history)

    def reset(self) -> None:
        """Clear accumulated accounting."""
        self.history.clear()
