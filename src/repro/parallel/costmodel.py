"""Level-synchronous parallel cost model.

This machine has a single CPU core, so the paper's thread-scaling study
(Figure 7, 1–64 threads on a 32-core Threadripper) cannot be measured
directly. Instead we *model* it — not from thin air, but from real
measured per-level traces of the vectorized BFS runs (frontier sizes and
edges examined per level, collected by
:class:`repro.bfs.instrumentation.BFSTrace`).

The model captures the three effects the paper identifies as limiting
scalability (§6.2):

1. **Per-level parallelism is bounded by the frontier.** A level with
   ``f`` frontier vertices split into chunks of size ``C`` can occupy at
   most ``ceil(f / C)`` threads — "the BFS traversals start out with
   little parallelism and may end with little as well".
2. **Memory bandwidth saturates.** Irregular neighbour gathers are
   bandwidth-bound; beyond ``bandwidth_threads`` concurrent threads,
   extra threads add no throughput — "the main-memory bandwidth does
   not scale with the core count on this irregular computation".
3. **Barriers cost.** Every level ends in a synchronization whose cost
   grows (logarithmically) with the team size; high-diameter graphs pay
   thousands of barriers per BFS.

Per level: ``t(T) = e / (r * T_eff) + t_barrier(T)`` with
``T_eff = min(T, ceil(f / C), B)``, where ``e`` is edges examined,
``r`` the single-thread edge rate, and ``B`` the bandwidth ceiling.

The model also accounts for the **bit-parallel lane sweeps**
(:mod:`repro.bfs.bitparallel`): a sweep carrying ``k`` sources gathers
each edge once but ORs ``W = ceil(k / 64)`` lane words per gathered
arc, so its per-level cost is the scalar gather cost plus a word-combine
term ``e * W / r_lanes`` — amortizing up to 64 traversals per gather at
the price of the extra word traffic. :meth:`lane_sweep_time` and
:meth:`batch_speedup` expose this trade-off, which is why lane batching
wins big on low-diameter power-law graphs (few levels, huge shared
gathers) and less on long thin road networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log, log2, sqrt

from repro.bfs.instrumentation import BFSTrace
from repro.errors import AlgorithmError
from repro.parallel.chunking import DEFAULT_CHUNK_SIZE

__all__ = [
    "CostModelParams",
    "LevelSynchronousCostModel",
    "ReductionGates",
    "LANE_WIDTH",
]

#: Lanes per machine word (mirrors :data:`repro.bfs.bitparallel.LANE_WIDTH`
#: without importing the BFS layer into the model).
LANE_WIDTH = 64


@dataclass(frozen=True)
class CostModelParams:
    """Calibration constants of the cost model.

    Defaults are calibrated so a 32-thread configuration reproduces the
    paper's qualitative Figure 7: geometric-mean speedup in the single
    digits, saturating at the physical core count, with low-diameter
    power-law graphs near the bandwidth ceiling and high-diameter road
    maps barrier-bound.
    """

    #: Edges processed per second by one thread (normalizes time units).
    edge_rate: float = 25e6
    #: Worklist chunk size (paper's per-thread chunks).
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Effective thread ceiling from memory-bandwidth saturation. The
    #: paper's Threadripper keeps scaling to its 32 physical cores with
    #: diminishing returns; 26 effective threads reproduces that knee.
    bandwidth_threads: float = 26.0
    #: Barrier latency for a 2-thread team, seconds; grows as log2(T).
    #: Chosen relative to the *analog* graph sizes: the benchmark inputs
    #: are ~64x smaller than the paper's, so per-level compute shrinks
    #: by ~64x while a real barrier would not — a paper-scale barrier
    #: constant would overstate synchronization cost by that factor.
    barrier_base: float = 2.0e-7
    #: Fixed per-BFS launch overhead, seconds.
    bfs_overhead: float = 5.0e-6
    #: Lane words OR-combined per second by one thread. Word combines
    #: are sequential streaming loads (cheaper than the irregular edge
    #: gathers), so the default sits above ``edge_rate``.
    lane_word_rate: float = 100e6
    #: Degree skew (max degree over average degree) above which a graph
    #: counts as hub-heavy for :meth:`.estimate_diameter` — small-world
    #: ``~log n`` scaling instead of mesh/road ``~sqrt n`` scaling.
    hub_skew: float = 4.0
    #: Largest estimated diameter at which a *dedicated* lane sweep
    #: (spectrum bounding rounds, 64 sources per word) still beats
    #: scalar BFS. Beyond it the per-level word traffic over hundreds of
    #: near-empty levels eats the shared-gather saving.
    lane_level_cap: int = 64
    #: Same cap for *merged* waves (Winnow resume / Eliminate extension
    #: inside ``fdiam``), which pay the word traffic but cannot amortize
    #: a full eccentricity per lane. Calibrated on the pinned analogs:
    #: the road-map bound (~121) and even the tendril-stretched
    #: power-law bound (~28) fall back, while low-diameter cores keep
    #: their lanes.
    merged_level_cap: int = 16
    #: Minimum fill of the trailing lane word for a sweep to pay off;
    #: 0.125 = at least 8 of 64 lanes in use.
    lane_min_occupancy: float = 0.125
    #: Vertices-plus-arcs a structural reduction stage (peel / collapse)
    #: processes per second. Measured on the pinned analogs: the pure-
    #: numpy peel and mirror passes stream the CSR at 1-2M items/s, an
    #: order of magnitude below the BFS gather rate.
    prep_edge_rate: float = 2e6
    #: Expected traversal count of a full F-Diam run, used to size the
    #: work a reduction could save before any BFS has run (the paper's
    #: Table 3 counts sit around two dozen across both regimes).
    prep_bfs_estimate: float = 24.0
    #: BFS-work saving per unit of degree-1 vertex fraction: peeling a
    #: pendant tree removes more vertices than its leaves (the whole
    #: subtree hangs off them), so the leaf fraction undercounts.
    peel_gain: float = 4.0
    #: BFS-work saving per unit of mirror-candidate fraction. Collapse
    #: only removes a vertex when the candidate signature is confirmed
    #: by a full adjacency comparison, so the proxy overcounts; the
    #: gain stays below 1 to compensate.
    collapse_gain: float = 0.5
    #: Fraction of traversal time a cache-friendly vertex order can
    #: recover once the CSR spills the last-level cache.
    reorder_gain: float = 0.2
    #: Last-level cache size; reordering a graph whose CSR already fits
    #: in cache cannot improve locality, whatever the edge span says.
    llc_bytes: int = 32 * 2**20
    #: Fixed cost of dispatching one round through the multiprocess
    #: sweep backend: queue round-trips, the per-round shared output
    #: segment, and waking the (already warm) workers. The pool and the
    #: shared CSR are paid once per executor, not per round, so this is
    #: deliberately small — but a round whose serial BFS work is below
    #: it should never leave the process.
    process_overhead_s: float = 5e-3
    #: Largest fraction of the graph a level-capped expansion may be
    #: expected to touch for the block-decoding gather path
    #: (:func:`repro.bfs.topdown.topdown_step_blocks`) to win over the
    #: decoded-array gather. Varint-decoding a block costs roughly an
    #: order of magnitude more per arc than slicing the decoded
    #: ``indices``, but it touches only the frontier's blocks — so it
    #: pays exactly when the expansion stays tiny (Eliminate probes,
    #: Winnow balls, ``ball()`` queries) and the full decoded arrays
    #: would be dragged through cache for a handful of rows.
    block_gather_fraction: float = 0.05
    #: Smallest fraction of the decoded image a byte-denominated block
    #: cache must be able to hold for cached block gathers to beat pure
    #: streaming. Measured far lower than intuition suggests: on
    #: powerlaw-10M a 64 KiB cache (1/1480 of the image) still beat
    #: zero retention 1.4x, because the LRU keeps at least the last
    #: block resident and hub blocks are requested by almost every
    #: frontier. Only a budget too small to matter at all (the cache
    #: churns before even a hub block is revisited) should stream.
    cache_min_fraction: float = 1.0 / 16384.0
    #: Multiplier the full decoded image must fit under the memory
    #: budget by for the full ``to_graph()`` decode to be chosen: the
    #: decode transient (varint values + delta scratch) briefly needs
    #: more than the final arrays.
    decode_headroom: float = 1.5

    def __post_init__(self) -> None:
        if self.edge_rate <= 0 or self.chunk_size < 1 or self.bandwidth_threads < 1:
            raise AlgorithmError("invalid cost model parameters")
        if self.lane_word_rate <= 0:
            raise AlgorithmError("invalid cost model parameters")
        if self.hub_skew < 1 or self.lane_level_cap < 1 or self.merged_level_cap < 1:
            raise AlgorithmError("invalid cost model parameters")
        if not 0 < self.lane_min_occupancy <= 1:
            raise AlgorithmError("invalid cost model parameters")
        if self.prep_edge_rate <= 0 or self.prep_bfs_estimate <= 0:
            raise AlgorithmError("invalid cost model parameters")
        if min(self.peel_gain, self.collapse_gain, self.reorder_gain) <= 0:
            raise AlgorithmError("invalid cost model parameters")
        if self.llc_bytes < 1:
            raise AlgorithmError("invalid cost model parameters")
        if self.process_overhead_s <= 0:
            raise AlgorithmError("invalid cost model parameters")
        if not 0 < self.block_gather_fraction <= 1:
            raise AlgorithmError("invalid cost model parameters")
        if not 0 < self.cache_min_fraction <= 1:
            raise AlgorithmError("invalid cost model parameters")
        if self.decode_headroom < 1:
            raise AlgorithmError("invalid cost model parameters")


@dataclass(frozen=True)
class ReductionGates:
    """Payoff verdict for the structural prep stages of one run.

    ``True`` means the stage's modeled saving covers its modeled cost;
    ``gated`` lists the stages that were vetoed (canonical token names),
    in pipeline order, for the run statistics.
    """

    peel: bool
    collapse: bool
    reorder: bool

    @property
    def gated(self) -> tuple[str, ...]:
        out = []
        if not self.peel:
            out.append("peel")
        if not self.collapse:
            out.append("collapse")
        if not self.reorder:
            out.append("reorder")
        return tuple(out)


class LevelSynchronousCostModel:
    """Predict parallel BFS runtimes from measured level traces."""

    def __init__(self, params: CostModelParams | None = None):
        self.params = params or CostModelParams()

    def level_time(self, frontier_size: int, edges: int, num_threads: int) -> float:
        """Modeled wall-clock seconds for one BFS level."""
        if num_threads < 1:
            raise AlgorithmError("num_threads must be >= 1")
        p = self.params
        max_chunk_parallelism = max(1, ceil(frontier_size / p.chunk_size))
        t_eff = min(float(num_threads), float(max_chunk_parallelism), p.bandwidth_threads)
        compute = edges / (p.edge_rate * t_eff)
        barrier = p.barrier_base * log2(num_threads) if num_threads > 1 else 0.0
        return compute + barrier

    def trace_time(self, trace: BFSTrace, num_threads: int) -> float:
        """Modeled seconds for one full BFS traversal."""
        total = self.params.bfs_overhead
        for level in trace.levels:
            total += self.level_time(
                level.frontier_size, level.edges_examined, num_threads
            )
        return total

    def run_time(self, traces: list[BFSTrace], num_threads: int) -> float:
        """Modeled seconds for a whole run (sum of its traversals)."""
        return sum(self.trace_time(t, num_threads) for t in traces)

    def speedup(self, traces: list[BFSTrace], num_threads: int) -> float:
        """Modeled speedup of ``num_threads`` over one thread."""
        t1 = self.run_time(traces, 1)
        tn = self.run_time(traces, num_threads)
        if tn <= 0:
            raise AlgorithmError("degenerate trace set (zero modeled time)")
        return t1 / tn

    # ------------------------------------------------------------------
    # Structural advisability (no trace required)
    # ------------------------------------------------------------------
    def estimate_diameter(
        self, num_vertices: int, num_directed_edges: int, max_degree: int
    ) -> int:
        """Structural diameter estimate — no BFS, just size and skew.

        Hub-heavy graphs (``max_degree >= hub_skew * average_degree``)
        get small-world scaling ``~2 log n / log(avg_degree)``; low-skew
        graphs (grids, triangulations, road maps) get the mesh scaling
        ``~1.5 sqrt(n)``. Deliberately coarse: its one job is to put a
        graph on the right side of the lane-level caps before any
        traversal has run, and the two regimes differ by orders of
        magnitude there.
        """
        if num_vertices <= 1:
            return 0
        average = num_directed_edges / num_vertices
        if average > 1.0 and max_degree >= self.params.hub_skew * average:
            estimate = 2.0 * log(num_vertices) / log(average)
        else:
            estimate = 1.5 * sqrt(num_vertices)
        return max(1, ceil(estimate))

    def reduction_gates(
        self,
        *,
        num_vertices: int,
        num_directed_edges: int,
        deg1_count: int,
        graph_bytes: int,
        mirror_candidates=None,
    ) -> ReductionGates:
        """Decide which structural reductions pay their own wall-clock.

        Every stage is an O(n + m) pass over the CSR whose modeled cost
        is ``(n + m) / prep_edge_rate``; it pays off only when the
        traversal work it can plausibly remove from the expected
        ``prep_bfs_estimate`` BFS calls exceeds that cost:

        * **peel** saves in proportion to the pendant-tree mass, lower-
          bounded by the degree-1 vertex fraction times ``peel_gain``;
        * **collapse** saves at most the mirror-candidate fraction
          (vertices sharing a degree/neighbour-sum signature) times
          ``collapse_gain`` — ``mirror_candidates`` is a zero-argument
          callable evaluated lazily, and only when the stage could pay
          off even at 100 % candidate density (the proxy itself costs
          an O(m) pass, which must not be burned on hopeless inputs);
        * **reorder** saves nothing while the CSR fits the last-level
          cache, and at most ``reorder_gain`` of the run beyond it.

        The ratios are scale-free in ``n + m``, so the verdicts reflect
        graph *structure*: pendant-rich or mirror-rich inputs keep
        their reductions at any size, while the pinned benchmark
        analogs (0.4-0.8 % degree-1 vertices, sub-cache CSR) gate all
        three and fall through to the planner-tweaked plain path.
        """
        p = self.params
        n, m = max(num_vertices, 1), max(num_directed_edges, 0)
        run_s = p.prep_bfs_estimate * m / p.edge_rate
        stage_s = (n + m) / p.prep_edge_rate
        peel = p.peel_gain * (deg1_count / n) * run_s >= stage_s
        collapse = p.collapse_gain * run_s >= stage_s
        if collapse and mirror_candidates is not None:
            candidates = mirror_candidates()
            collapse = p.collapse_gain * (candidates / n) * run_s >= stage_s
        reorder = (
            graph_bytes > p.llc_bytes
            and p.reorder_gain * run_s >= stage_s
        )
        return ReductionGates(peel=peel, collapse=collapse, reorder=reorder)

    def lane_batch_verdict(
        self, diameter_estimate: int, lanes: int, *, merged: bool = False
    ) -> tuple[bool, str]:
        """:meth:`lane_batch_advisable` plus the *reason* for a veto.

        The reason string is what ``--workspace-stats`` and the bench
        JSON surface for every recorded lane fallback (a bare count
        cannot tell a road map that tripped the level cap from a
        near-empty trailing word), so the vocabulary is small and
        stable: ``"single lane cannot amortize a sweep"``,
        ``"lane occupancy F below minimum M"``, and ``"estimated
        diameter D exceeds [merged] lane level cap C"``. An advisable
        batch returns ``(True, "")``.
        """
        if lanes <= 1:
            return False, "single lane cannot amortize a sweep"
        words = ceil(lanes / LANE_WIDTH)
        occupancy = lanes / (words * LANE_WIDTH)
        if occupancy < self.params.lane_min_occupancy:
            return False, (
                f"lane occupancy {occupancy:.3f} below minimum "
                f"{self.params.lane_min_occupancy:.3f}"
            )
        cap = self.params.merged_level_cap if merged else self.params.lane_level_cap
        if diameter_estimate > cap:
            kind = "merged lane level cap" if merged else "lane level cap"
            return False, (
                f"estimated diameter {diameter_estimate} exceeds {kind} {cap}"
            )
        return True, ""

    def lane_batch_advisable(
        self, diameter_estimate: int, lanes: int, *, merged: bool = False
    ) -> bool:
        """Whether a ``lanes``-source sweep should beat the scalar path.

        Two gates, matching the two ways lane sweeps lose in practice:
        the expected level count (``diameter_estimate`` against
        :attr:`~CostModelParams.lane_level_cap` /
        :attr:`~CostModelParams.merged_level_cap` for ``merged`` waves),
        and the fill of the trailing lane word (fewer than
        ``lane_min_occupancy * 64`` sources per word cannot amortize
        the per-level sweep overhead). :meth:`lane_batch_verdict` is the
        same gate with the veto reason attached.
        """
        ok, _ = self.lane_batch_verdict(diameter_estimate, lanes, merged=merged)
        return ok

    def choose_backend(
        self,
        *,
        num_sources: int,
        num_vertices: int,
        num_directed_edges: int,
        max_degree: int,
        workers: int = 1,
        lanes: int = LANE_WIDTH,
        shm_ok: bool = True,
    ) -> str:
        """Pick the sweep backend for a fan-out of ``num_sources`` BFS roots.

        The method that turns this model from a predictor into a
        dispatcher (it is what ``backend="auto"`` in
        :func:`repro.parallel.sweep.create_executor` calls). Three-way
        decision, cheapest structural signals only:

        * ``"multiprocess"`` when the caller brought a team
          (``workers >= 2``), shared memory works, the round has at
          least two sources per worker to hand out, and the modeled
          serial sweep time of the round — ``ceil(k / lanes) * m /
          edge_rate`` gather passes — exceeds
          :attr:`~CostModelParams.process_overhead_s` by more than the
          team could claw back (``serial_s * (1 - 1/workers)``);
        * else ``"bitparallel"`` when :meth:`lane_batch_advisable` says
          a lane sweep of ``min(num_sources, lanes)`` sources beats
          scalar BFS on this structure;
        * else ``"serial"``.
        """
        k = max(int(num_sources), 0)
        m = max(int(num_directed_edges), 0)
        estimate = self.estimate_diameter(num_vertices, m, max_degree)
        lanes = max(1, min(int(lanes), k if k else 1))
        use_lanes = self.lane_batch_advisable(estimate, lanes)
        if workers >= 2 and shm_ok and k >= 2 * workers:
            passes = ceil(k / lanes) if use_lanes else k
            serial_s = passes * m / self.params.edge_rate
            if serial_s * (1.0 - 1.0 / workers) > self.params.process_overhead_s:
                return "multiprocess"
        return "bitparallel" if use_lanes else "serial"

    def choose_gather_path(
        self,
        *,
        num_sources: int,
        max_level: int | None,
        num_vertices: int,
        num_directed_edges: int,
    ) -> tuple[str, str]:
        """Pick the gather path for one multi-source level expansion.

        Returns ``("blocks" | "decoded", reason)`` — the verdict the
        traversal kernel consults when its graph carries an open
        compressed store (``block_gather="auto"``). Same reason-string
        contract as :meth:`lane_batch_verdict`: a small stable
        vocabulary the workspace report can surface.

        The expected touched-vertex count of a ``max_level``-capped
        expansion from ``k`` sources is modeled as
        ``min(n, k * avg_degree ** max_level)`` (computed in log space
        so deep caps cannot overflow); the block path wins only when
        that stays within
        :attr:`~CostModelParams.block_gather_fraction` of the graph —
        beyond it, per-block varint decoding re-pays the full-decode
        cost with none of the locality benefit.
        """
        n = max(int(num_vertices), 1)
        if max_level is None:
            return "decoded", "uncapped expansion reaches the whole component"
        k = max(int(num_sources), 1)
        avg = max(num_directed_edges / n, 1.0)
        log_touched = log(k) + max_level * log(avg) if avg > 1.0 else log(k)
        fraction = 1.0 if log_touched >= log(n) else min(
            (k * avg**max_level) / n, 1.0
        )
        limit = self.params.block_gather_fraction
        if fraction <= limit:
            return "blocks", (
                f"expected touch fraction {fraction:.4f} within "
                f"block gather fraction {limit:g}"
            )
        return "decoded", (
            f"expected touch fraction {fraction:.4f} exceeds "
            f"block gather fraction {limit:g}"
        )

    def choose_memory_mode(
        self, *, decoded_bytes: int, budget_bytes: int | None
    ) -> tuple[str, str]:
        """Route a traversal by memory pressure over a compressed store.

        Returns ``("decode" | "cached" | "stream", reason)`` — the
        verdict :class:`~repro.bfs.kernel.TraversalKernel` consults
        when a memory budget is set on a store-backed graph. Same
        reason-string contract as :meth:`lane_batch_verdict`: small,
        stable vocabulary.

        * ``"decode"`` — no budget, or the full decoded image (times
          :attr:`~CostModelParams.decode_headroom` for the decode
          transient) fits it: the in-memory arrays are strictly faster
          than any block path.
        * ``"cached"`` — the budget cannot hold the decoded image but
          affords a block cache of at least
          :attr:`~CostModelParams.cache_min_fraction` of it: gather
          through the byte-capped LRU.
        * ``"stream"`` — the budget is below even a useful cache:
          decode blocks per gather and retain nothing, so the decoded
          working set never exceeds one frontier's blocks.
        """
        if budget_bytes is None:
            return "decode", "no memory budget set"
        decoded = max(int(decoded_bytes), 1)
        budget = max(int(budget_bytes), 0)
        if decoded * self.params.decode_headroom <= budget:
            return "decode", (
                f"decoded image {decoded} B fits budget {budget} B "
                f"with {self.params.decode_headroom:g}x headroom"
            )
        if budget >= self.params.cache_min_fraction * decoded:
            return "cached", (
                f"budget {budget} B affords a block cache >= "
                f"{self.params.cache_min_fraction:g} of the decoded image"
            )
        return "stream", (
            f"budget {budget} B below minimum useful cache "
            f"({self.params.cache_min_fraction:g} of {decoded} B decoded)"
        )

    # ------------------------------------------------------------------
    # Bit-parallel lane accounting
    # ------------------------------------------------------------------
    def lane_level_time(
        self, frontier_size: int, edges: int, lanes: int, num_threads: int
    ) -> float:
        """Modeled seconds for one level of a ``lanes``-source sweep.

        The edge gather is paid once (same term as :meth:`level_time`);
        on top of it every gathered arc OR-combines ``ceil(lanes/64)``
        lane words.
        """
        if lanes < 1:
            raise AlgorithmError("lanes must be >= 1")
        width = ceil(lanes / LANE_WIDTH)
        base = self.level_time(frontier_size, edges, num_threads)
        return base + edges * width / self.params.lane_word_rate

    def lane_sweep_time(self, trace: BFSTrace, lanes: int, num_threads: int) -> float:
        """Modeled seconds for one full ``lanes``-source lane sweep.

        ``trace`` is the union wave's per-level shape (the lane sweep's
        frontier is the union of the per-lane frontiers).
        """
        total = self.params.bfs_overhead
        for level in trace.levels:
            total += self.lane_level_time(
                level.frontier_size, level.edges_examined, lanes, num_threads
            )
        return total

    def batch_speedup(self, trace: BFSTrace, lanes: int, num_threads: int) -> float:
        """Modeled gain of one ``lanes``-source sweep over ``lanes`` scalar runs.

        Approximates the scalar cost as ``lanes`` traversals of the same
        shape as the union wave — exact when the sources' waves mostly
        overlap (the regime lane batching targets), optimistic when they
        do not overlap at all.
        """
        scalar = lanes * self.trace_time(trace, num_threads)
        batched = self.lane_sweep_time(trace, lanes, num_threads)
        if batched <= 0:
            raise AlgorithmError("degenerate trace (zero modeled time)")
        return scalar / batched
