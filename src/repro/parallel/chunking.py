"""Worklist chunking — the scheduling substrate of the parallel model.

The paper's parallel BFS assigns "each thread a chunk of vertices from
the current worklist" (§4.6). This module reproduces that scheduling
deterministically: a worklist is split into fixed-size chunks, chunks
are dealt to threads round-robin (OpenMP ``schedule(static, chunk)``
semantics), and per-thread work totals are computed from per-vertex
work weights (out-degrees, for BFS). The resulting imbalance figures
feed the level-synchronous cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["ChunkAssignment", "chunk_bounds", "assign_round_robin", "thread_work"]

#: Default chunk size; matches common OpenMP static-chunk practice for
#: irregular graph worklists.
DEFAULT_CHUNK_SIZE = 64


@dataclass(frozen=True)
class ChunkAssignment:
    """A chunked worklist dealt to a thread team.

    Attributes
    ----------
    bounds:
        ``(num_chunks + 1)``-length prefix array; chunk ``c`` covers
        worklist slots ``bounds[c]:bounds[c + 1]``.
    owner:
        ``owner[c]`` is the thread executing chunk ``c``.
    num_threads:
        Team size.
    """

    bounds: np.ndarray
    owner: np.ndarray
    num_threads: int

    @property
    def num_chunks(self) -> int:
        return len(self.bounds) - 1

    def chunks_of(self, thread: int) -> np.ndarray:
        """Indices of the chunks owned by ``thread``."""
        return np.flatnonzero(self.owner == thread)


def chunk_bounds(n: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> np.ndarray:
    """Prefix bounds splitting ``n`` items into ``chunk_size`` chunks."""
    if chunk_size < 1:
        raise AlgorithmError("chunk_size must be >= 1")
    edges = np.arange(0, n + chunk_size, chunk_size, dtype=np.int64)
    edges[-1] = n
    if len(edges) >= 2 and edges[-1] == edges[-2]:
        edges = edges[:-1]
    return edges


def assign_round_robin(
    n: int, num_threads: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> ChunkAssignment:
    """Deal the chunks of an ``n``-item worklist to threads round-robin."""
    if num_threads < 1:
        raise AlgorithmError("num_threads must be >= 1")
    bounds = chunk_bounds(n, chunk_size)
    num_chunks = len(bounds) - 1
    owner = np.arange(num_chunks, dtype=np.int64) % num_threads
    return ChunkAssignment(bounds=bounds, owner=owner, num_threads=num_threads)


def thread_work(assignment: ChunkAssignment, weights: np.ndarray) -> np.ndarray:
    """Total work per thread given per-item ``weights``.

    For BFS levels the weights are the frontier vertices' out-degrees;
    the max/mean ratio of the result is the level's load imbalance.
    """
    cum = np.concatenate(([0], np.cumsum(weights)))
    chunk_totals = cum[assignment.bounds[1:]] - cum[assignment.bounds[:-1]]
    work = np.zeros(assignment.num_threads, dtype=np.int64)
    np.add.at(work, assignment.owner, chunk_totals)
    return work
