"""Thread-scaling study (paper Figure 7).

Runs F-Diam once per input with trace collection enabled, then feeds
the measured per-level traces through the
:class:`~repro.parallel.costmodel.LevelSynchronousCostModel` at each
thread count, yielding modeled throughputs whose geometric mean over
all inputs reproduces the shape of the paper's Figure 7: throughput
rising to the physical core count and flattening beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FDiamConfig
from repro.core.fdiam import fdiam
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.parallel.costmodel import CostModelParams, LevelSynchronousCostModel

__all__ = ["ScalingPoint", "ScalingStudy", "PAPER_THREAD_COUNTS"]

#: The thread counts of the paper's Figure 7 x-axis.
PAPER_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ScalingPoint:
    """Modeled performance of one input at one thread count."""

    graph_name: str
    num_threads: int
    modeled_seconds: float
    throughput: float  # vertices / second (the paper's metric)
    speedup: float  # over the 1-thread model


@dataclass
class ScalingStudy:
    """Collects per-input traces and evaluates the cost model."""

    params: CostModelParams = field(default_factory=CostModelParams)
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS
    points: list[ScalingPoint] = field(default_factory=list)

    def run_input(self, graph: CSRGraph) -> list[ScalingPoint]:
        """Trace one F-Diam run on ``graph`` and model every thread count."""
        config = FDiamConfig(engine="parallel", keep_traces=True)
        result = fdiam(graph, config)
        traces = result.stats.traces
        if not traces:
            raise AlgorithmError(
                f"no BFS traces collected on {graph.name!r}; "
                "cannot model scaling"
            )
        model = LevelSynchronousCostModel(self.params)
        t1 = model.run_time(traces, 1)
        points = []
        for t in self.thread_counts:
            seconds = model.run_time(traces, t)
            points.append(
                ScalingPoint(
                    graph_name=graph.name,
                    num_threads=t,
                    modeled_seconds=seconds,
                    throughput=graph.num_vertices / seconds,
                    speedup=t1 / seconds,
                )
            )
        self.points.extend(points)
        return points

    def geomean_throughput(self) -> dict[int, float]:
        """Geometric-mean modeled throughput per thread count
        (the paper's Figure 7 y-axis)."""
        out: dict[int, float] = {}
        for t in self.thread_counts:
            vals = [p.throughput for p in self.points if p.num_threads == t]
            if vals:
                out[t] = float(np.exp(np.mean(np.log(vals))))
        return out

    def geomean_speedup(self) -> dict[int, float]:
        """Geometric-mean modeled speedup per thread count."""
        out: dict[int, float] = {}
        for t in self.thread_counts:
            vals = [p.speedup for p in self.points if p.num_threads == t]
            if vals:
                out[t] = float(np.exp(np.mean(np.log(vals))))
        return out
