"""Thread-scaling study (paper Figure 7) — modeled and measured.

Runs F-Diam once per input with trace collection enabled, then feeds
the measured per-level traces through the
:class:`~repro.parallel.costmodel.LevelSynchronousCostModel` at each
thread count, yielding modeled throughputs whose geometric mean over
all inputs reproduces the shape of the paper's Figure 7: throughput
rising to the physical core count and flattening beyond it.

:meth:`ScalingStudy.measure_sweep` complements the model with *real*
wall-clock points: the same fixed source battery is dispatched through
the :mod:`repro.parallel.sweep` executors at each worker count and
timed, so the modeled curve finally sits next to a measured
``workers × wall_s`` curve from the shared-memory multiprocess
backend. On a single-core container the measured curve is flat-to-
negative — that is the honest result, and exactly what the comparison
is for; the eccentricity checksum asserts that every worker count
computed identical rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace

import numpy as np

from repro.core.config import FDiamConfig
from repro.core.fdiam import fdiam
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.parallel.costmodel import CostModelParams, LevelSynchronousCostModel

__all__ = [
    "MeasuredPoint",
    "ScalingPoint",
    "ScalingStudy",
    "PAPER_THREAD_COUNTS",
]

#: The thread counts of the paper's Figure 7 x-axis.
PAPER_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ScalingPoint:
    """Modeled performance of one input at one thread count."""

    graph_name: str
    num_threads: int
    modeled_seconds: float
    throughput: float  # vertices / second (the paper's metric)
    speedup: float  # over the 1-thread model


@dataclass(frozen=True)
class MeasuredPoint:
    """Measured wall-clock of one sweep battery at one worker count."""

    graph_name: str
    workers: int
    backend: str
    wall_s: float
    speedup: float  # over the measured 1-worker run
    sources: int
    #: Sum of the battery's eccentricities — identical across worker
    #: counts by construction; recorded so consumers can assert it.
    ecc_checksum: int


@dataclass
class ScalingStudy:
    """Collects per-input traces and evaluates the cost model."""

    params: CostModelParams = field(default_factory=CostModelParams)
    thread_counts: tuple[int, ...] = PAPER_THREAD_COUNTS
    points: list[ScalingPoint] = field(default_factory=list)
    measured: list[MeasuredPoint] = field(default_factory=list)

    def run_input(
        self, graph: CSRGraph, config: FDiamConfig | None = None
    ) -> list[ScalingPoint]:
        """Trace one F-Diam run on ``graph`` and model every thread count.

        ``config`` selects the engine (and any other F-Diam knobs) the
        traced run uses; trace collection is forced on. The default
        remains the parallel engine the paper's Figure 7 measures.
        """
        if config is None:
            config = FDiamConfig(engine="parallel", keep_traces=True)
        elif not config.keep_traces:
            config = dataclasses_replace(config, keep_traces=True)
        result = fdiam(graph, config)
        traces = result.stats.traces
        if not traces:
            raise AlgorithmError(
                f"no BFS traces collected on {graph.name!r} with engine "
                f"{config.engine!r}; cannot model scaling"
            )
        model = LevelSynchronousCostModel(self.params)
        t1 = model.run_time(traces, 1)
        points = []
        for t in self.thread_counts:
            seconds = model.run_time(traces, t)
            points.append(
                ScalingPoint(
                    graph_name=graph.name,
                    num_threads=t,
                    modeled_seconds=seconds,
                    throughput=graph.num_vertices / seconds,
                    speedup=t1 / seconds,
                )
            )
        self.points.extend(points)
        return points

    def measure_sweep(
        self,
        graph: CSRGraph,
        *,
        workers: tuple[int, ...] = (1, 2, 4),
        num_sources: int = 64,
        batch_lanes: int = 64,
        start_method: str | None = None,
    ) -> list[MeasuredPoint]:
        """Time a fixed sweep battery at each worker count — for real.

        The battery is the graph's ``num_sources`` highest-degree
        vertices (deterministic, hub-first, the sources bounding rounds
        favour). Worker count 1 runs the in-process ``bitparallel``
        backend; higher counts run the shared-memory ``multiprocess``
        backend with the same lane budget per worker. Each executor
        gets one untimed warmup round (pool spin-up and page faults
        excluded — the persistent-pool steady state is what the curve
        is about), then one timed round. The per-battery eccentricity
        checksum is asserted identical across worker counts before any
        point is recorded.
        """
        from repro.parallel.sweep import create_executor

        sources = np.argsort(-graph.degrees, kind="stable")[
            : min(num_sources, graph.num_vertices)
        ].astype(np.int64)
        points: list[MeasuredPoint] = []
        base_wall = None
        base_checksum = None
        for w in workers:
            executor = create_executor(
                graph,
                workers=w,
                batch_lanes=batch_lanes,
                backend="bitparallel" if w <= 1 else "multiprocess",
                start_method=start_method,
            )
            try:
                executor.distance_rows(sources)  # warmup
                t0 = time.perf_counter()
                _, info = executor.distance_rows(sources)
                wall = time.perf_counter() - t0
            finally:
                executor.close()
            checksum = int(info.eccentricities.sum())
            if base_checksum is None:
                base_checksum = checksum
            elif checksum != base_checksum:
                raise AlgorithmError(
                    f"scaling sweep on {graph.name!r} is not deterministic: "
                    f"checksum {checksum} at {w} workers != {base_checksum}"
                )
            if base_wall is None:
                base_wall = wall
            points.append(
                MeasuredPoint(
                    graph_name=graph.name,
                    workers=w,
                    backend=executor.backend,
                    wall_s=wall,
                    speedup=base_wall / wall if wall > 0 else 0.0,
                    sources=len(sources),
                    ecc_checksum=checksum,
                )
            )
        self.measured.extend(points)
        return points

    def geomean_throughput(self) -> dict[int, float]:
        """Geometric-mean modeled throughput per thread count
        (the paper's Figure 7 y-axis)."""
        out: dict[int, float] = {}
        for t in self.thread_counts:
            vals = [p.throughput for p in self.points if p.num_threads == t]
            if vals:
                out[t] = float(np.exp(np.mean(np.log(vals))))
        return out

    def geomean_speedup(self) -> dict[int, float]:
        """Geometric-mean modeled speedup per thread count."""
        out: dict[int, float] = {}
        for t in self.thread_counts:
            vals = [p.speedup for p in self.points if p.num_threads == t]
            if vals:
                out[t] = float(np.exp(np.mean(np.log(vals))))
        return out
