"""Parallel-execution substrate: chunk scheduling, a simulated chunked
executor, and the level-synchronous cost model behind the
thread-scaling study (paper Figure 7). See DESIGN.md §2 for why thread
scaling is modeled from measured traces rather than timed directly on
this single-core machine.
"""

from repro.parallel.chunking import (
    ChunkAssignment,
    assign_round_robin,
    chunk_bounds,
    thread_work,
)
from repro.parallel.costmodel import CostModelParams, LevelSynchronousCostModel
from repro.parallel.executor import ChunkedExecutor, StepAccounting
from repro.parallel.scaling import (
    PAPER_THREAD_COUNTS,
    MeasuredPoint,
    ScalingPoint,
    ScalingStudy,
)
from repro.parallel.shm import SharedCSR, shm_available
from repro.parallel.sweep import (
    BitparallelSweepExecutor,
    ExecutorCounters,
    MultiprocessSweepExecutor,
    SerialSweepExecutor,
    SweepExecutor,
    SweepInfo,
    create_executor,
    process_map,
)

__all__ = [
    "BitparallelSweepExecutor",
    "ChunkAssignment",
    "ChunkedExecutor",
    "CostModelParams",
    "ExecutorCounters",
    "LevelSynchronousCostModel",
    "MeasuredPoint",
    "MultiprocessSweepExecutor",
    "PAPER_THREAD_COUNTS",
    "ScalingPoint",
    "ScalingStudy",
    "SerialSweepExecutor",
    "SharedCSR",
    "StepAccounting",
    "SweepExecutor",
    "SweepInfo",
    "assign_round_robin",
    "chunk_bounds",
    "create_executor",
    "process_map",
    "shm_available",
    "thread_work",
]
