"""One dispatch layer for every independent-BFS-source fan-out.

Every bound-driven diameter scheme in this package fans out the same
way: a round of *independent* full BFS traversals from a set of chosen
sources, whose distance rows then refine shared bounds (the
eccentricity spectrum, the SumSweep / Takes–Kosters bounding rounds,
the batched query engine, the fuzz campaign's trial battery). Before
this module each caller hand-rolled its own loop; now they all go
through a :class:`SweepExecutor` with three interchangeable backends:

* ``serial`` — one pooled-kernel BFS per source. The reference
  backend, and the right one for tiny rounds and high-diameter
  structures where lane words lose.
* ``bitparallel`` — chunked 64-lane shared-gather sweeps
  (:func:`repro.bfs.bitparallel.lane_distances`); amortizes up to 64
  traversals per edge-gather pass.
* ``multiprocess`` — real shared-memory parallelism: the CSR lives in
  a ``multiprocessing.shared_memory`` segment
  (:class:`~repro.parallel.shm.SharedCSR`), a persistent worker pool
  attaches read-only, sources are partitioned with the
  :mod:`repro.parallel.chunking` policies, and each worker writes its
  ``int32`` distance rows straight into a per-call shared output block
  — zero pickling of graph data in either direction. Workers run lane
  sweeps or scalar BFS per chunk, whichever the cost model prefers for
  the structure, so results are bit-identical to the serial backend by
  construction (BFS distances are unique).

Backend selection is the cost model's job:
:meth:`~repro.parallel.costmodel.LevelSynchronousCostModel.choose_backend`
turns the model that previously only *predicted* parallel speedup into
the component that *dispatches*, and :func:`create_executor` applies
its verdict with graceful degradation (no shared memory, pool start
failure, or a single-worker request all fall back toward
``bitparallel``/``serial`` with a warning rather than an error).

Spawn-vs-fork: the worker entry point (:func:`_worker_main`) is a
module-level function and every task payload is a few integers plus a
segment name, so both start methods work; ``REPRO_START_METHOD``
overrides the platform default (``fork`` where available, else
``spawn``). Shared-memory lifecycle rules — create/attach/unlink,
the ``resource_tracker`` caveat, and the atexit guard that makes
KeyboardInterrupt leak-free — live in :mod:`repro.parallel.shm`.
"""

from __future__ import annotations

import os
import queue as _queue
import warnings
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.bfs.kernel import TraversalKernel
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.parallel.chunking import chunk_bounds
from repro.parallel.costmodel import LANE_WIDTH, LevelSynchronousCostModel
from repro.parallel.shm import SharedCSR, attach_segment, create_segment, destroy_segment, shm_available

__all__ = [
    "ExecutorCounters",
    "SweepInfo",
    "SweepExecutor",
    "SerialSweepExecutor",
    "BitparallelSweepExecutor",
    "MultiprocessSweepExecutor",
    "create_executor",
    "process_map",
    "default_start_method",
    "START_METHOD_ENV",
]

#: Environment override for the multiprocessing start method
#: (``fork`` / ``spawn`` / ``forkserver``); the CI multiprocess job
#: pins ``spawn`` to exercise the stricter path.
START_METHOD_ENV = "REPRO_START_METHOD"

#: Seconds between worker-liveness checks while the parent waits on
#: round results.
_POLL_S = 0.2


def default_start_method() -> str:
    """The start method the multiprocess backend uses by default."""
    import multiprocessing as mp

    override = os.environ.get(START_METHOD_ENV)
    methods = mp.get_all_start_methods()
    if override:
        if override not in methods:
            raise AlgorithmError(
                f"unsupported start method {override!r} from "
                f"{START_METHOD_ENV}; available: {', '.join(methods)}"
            )
        return override
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class SweepInfo:
    """Accounting of one :meth:`SweepExecutor.distance_rows` round.

    ``eccentricities[i]`` is the exact eccentricity of ``sources[i]``
    within its component (the row maximum, read out without another
    pass); ``sweeps`` counts physical edge-gather passes, so
    ``traversals / sweeps`` is the gather amortization the round
    achieved. ``lane_occupancy`` is the mean lane-word fill across the
    round's sweeps (1.0 for scalar traversals).
    """

    backend: str
    workers: int
    traversals: int
    sweeps: int
    edges_examined: int
    lane_occupancy: float
    eccentricities: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))


@dataclass
class ExecutorCounters:
    """Lifetime totals of one :class:`SweepExecutor`.

    Every :meth:`SweepExecutor.distance_rows` round accumulates its
    :class:`SweepInfo` here, so a long-lived executor (the query
    engine's per-graph dispatcher, the serving layer's ``/stats``
    endpoint) can report cumulative amortization without the caller
    threading per-round infos around.
    """

    rounds: int = 0
    traversals: int = 0
    sweeps: int = 0
    edges_examined: int = 0

    def account(self, info: SweepInfo) -> None:
        self.rounds += 1
        self.traversals += info.traversals
        self.sweeps += info.sweeps
        self.edges_examined += info.edges_examined

    def snapshot(self) -> dict:
        """JSON-friendly view (the ``/stats`` payload shape)."""
        return {
            "rounds": self.rounds,
            "traversals": self.traversals,
            "sweeps": self.sweeps,
            "edges_examined": self.edges_examined,
        }


class SweepExecutor:
    """Abstract dispatcher for rounds of independent BFS sources.

    Concrete backends implement :meth:`distance_rows`; everything else
    (round sizing, context management, close, the cumulative
    :attr:`counters`) is shared. Executors are
    deterministic: the distance matrix depends only on the graph and
    the source list, never on the backend, worker count, or chunk
    partitioning — which is what lets the verify layer treat backend
    choice as a differential-testing axis.
    """

    backend = "abstract"

    def __init__(self, graph: CSRGraph, *, kernel: TraversalKernel | None = None):
        self.graph = graph
        self.kernel = kernel if kernel is not None else TraversalKernel(graph)
        #: Lifetime round/traversal/sweep totals across distance_rows calls.
        self.counters = ExecutorCounters()
        if self.kernel.graph is not graph:
            raise AlgorithmError("sweep executor kernel is bound to a different graph")

    @property
    def round_size(self) -> int:
        """Preferred number of sources per refinement round."""
        return 1

    @property
    def workers(self) -> int:
        return 1

    def distance_rows(self, sources) -> tuple[np.ndarray, SweepInfo]:
        """Exact distance rows for ``sources``: ``((k, n) int32, SweepInfo)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker pool, shm segments)."""

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_sources(self, sources) -> np.ndarray:
        sources = np.asarray(sources, dtype=np.int64).ravel()
        n = self.graph.num_vertices
        if len(sources) and (sources.min() < 0 or sources.max() >= n):
            raise AlgorithmError(f"sweep source out of range [0, {n})")
        return sources


class SerialSweepExecutor(SweepExecutor):
    """One pooled-kernel BFS per source (the reference backend)."""

    backend = "serial"

    def distance_rows(self, sources) -> tuple[np.ndarray, SweepInfo]:
        sources = self._check_sources(sources)
        k = len(sources)
        n = self.graph.num_vertices
        dist = np.empty((k, n), dtype=np.int32)
        ecc = np.zeros(k, dtype=np.int64)
        ws = self.kernel.workspace
        edges_before = ws.stats.edges_examined
        for i, s in enumerate(sources.tolist()):
            res = self.kernel.bfs(s, record_dist=True)
            dist[i] = res.dist
            ecc[i] = res.eccentricity
            ws.release_dist(res.dist)
        info = SweepInfo(
            backend=self.backend,
            workers=1,
            traversals=k,
            sweeps=k,
            edges_examined=ws.stats.edges_examined - edges_before,
            lane_occupancy=1.0 if k else 0.0,
            eccentricities=ecc,
        )
        self.counters.account(info)
        return dist, info


class BitparallelSweepExecutor(SweepExecutor):
    """Chunked 64-lane shared-gather sweeps in the calling process."""

    backend = "bitparallel"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        kernel: TraversalKernel | None = None,
        max_lanes: int = LANE_WIDTH,
    ):
        super().__init__(graph, kernel=kernel)
        if max_lanes < 1:
            raise AlgorithmError(f"max_lanes must be >= 1, got {max_lanes}")
        self.max_lanes = max_lanes

    @property
    def round_size(self) -> int:
        return self.max_lanes

    def distance_rows(self, sources) -> tuple[np.ndarray, SweepInfo]:
        sources = self._check_sources(sources)
        dist, sweeps = self.kernel.distance_batch(sources, max_lanes=self.max_lanes)
        ecc = (
            np.concatenate([s.eccentricities for s in sweeps])
            if sweeps
            else np.empty(0, np.int64)
        )
        info = SweepInfo(
            backend=self.backend,
            workers=1,
            traversals=len(sources),
            sweeps=len(sweeps),
            edges_examined=sum(s.edges_examined for s in sweeps),
            lane_occupancy=(
                sum(s.lane_occupancy for s in sweeps) / len(sweeps) if sweeps else 0.0
            ),
            eccentricities=ecc,
        )
        self.counters.account(info)
        return dist, info


def _worker_main(spec: dict, use_lanes: bool, task_q, result_q) -> None:
    """Persistent worker loop: attach the shared CSR, serve chunk tasks.

    Module-level (spawn-importable); receives only queues and the shm
    spec. Each task carries the output segment's name, so the worker
    writes its distance rows directly into shared memory and sends back
    just the small per-chunk accounting. A ``memory_budget`` in the
    spec reaches the worker's kernel, so budgeted fan-outs bound every
    worker's decoded-block scratch, not just the parent's.
    """
    graph, graph_seg = SharedCSR.attach(spec)
    kernel = TraversalKernel(graph, memory_budget=spec.get("memory_budget"))
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            task_id, out_name, total_rows, lo, srcs = task
            try:
                n = graph.num_vertices
                out_seg = attach_segment(out_name)
                try:
                    out = np.ndarray((total_rows, n), dtype=np.int32, buffer=out_seg.buf)
                    edges_before = kernel.workspace.stats.edges_examined
                    if use_lanes:
                        dist, sweeps = kernel.distance_batch(srcs, max_lanes=LANE_WIDTH)
                        out[lo : lo + len(srcs)] = dist
                        ecc = np.concatenate([s.eccentricities for s in sweeps])
                        nsweeps = len(sweeps)
                        occ = sum(s.lane_occupancy for s in sweeps)
                    else:
                        ecc = np.zeros(len(srcs), dtype=np.int64)
                        for i, s in enumerate(srcs.tolist()):
                            res = kernel.bfs(s, record_dist=True)
                            out[lo + i] = res.dist
                            ecc[i] = res.eccentricity
                            kernel.workspace.release_dist(res.dist)
                        nsweeps = len(srcs)
                        occ = float(len(srcs))
                    edges = kernel.workspace.stats.edges_examined - edges_before
                finally:
                    del out
                    out_seg.close()
                result_q.put(("ok", task_id, ecc, int(edges), nsweeps, occ))
            except BaseException as exc:  # report, keep serving
                result_q.put(("error", task_id, f"{type(exc).__name__}: {exc}", 0, 0, 0.0))
    finally:
        graph_seg.close()


class MultiprocessSweepExecutor(SweepExecutor):
    """Shared-memory worker pool: real parallelism over BFS sources.

    The CSR is copied once into a shared segment at construction;
    ``workers`` persistent processes attach read-only and stay warm
    (each holds its own pooled :class:`~repro.bfs.kernel.TraversalKernel`)
    across every :meth:`distance_rows` round. Per round, the sources
    are chunked with :func:`repro.parallel.chunking.chunk_bounds`, each
    chunk's rows are written into a per-round shared output block, and
    only the per-chunk eccentricity/edge accounting travels through the
    result queue. A worker dying mid-round is detected by liveness
    polling and raises :class:`~repro.errors.AlgorithmError`; all shm
    segments are unlinked on :meth:`close`, on error, and by the
    :mod:`repro.parallel.shm` atexit guard.
    """

    backend = "multiprocess"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        workers: int,
        kernel: TraversalKernel | None = None,
        max_lanes: int = LANE_WIDTH,
        use_lanes: bool | None = None,
        start_method: str | None = None,
        memory_budget: int | None = None,
    ):
        super().__init__(graph, kernel=kernel)
        if workers < 2:
            raise AlgorithmError(f"multiprocess backend needs >= 2 workers, got {workers}")
        if max_lanes < 1:
            raise AlgorithmError(f"max_lanes must be >= 1, got {max_lanes}")
        import multiprocessing as mp

        self.max_lanes = max_lanes
        self._workers = workers
        self._failed = False
        if use_lanes is None:
            model = LevelSynchronousCostModel()
            estimate = model.estimate_diameter(
                graph.num_vertices, graph.num_directed_edges, graph.max_degree()
            )
            use_lanes = model.lane_batch_advisable(estimate, min(max_lanes, LANE_WIDTH))
        self.use_lanes = bool(use_lanes)

        method = start_method or default_start_method()
        self._ctx = mp.get_context(method)
        self.start_method = method
        self._shared = SharedCSR(graph, memory_budget=memory_budget)
        self._record_shm(self._shared.nbytes)
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs = []
        try:
            for _ in range(workers):
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(self._shared.spec, self.use_lanes, self._task_q, self._result_q),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise
        self._finalizer = weakref.finalize(
            self, MultiprocessSweepExecutor._cleanup, self._shared, self._procs
        )

    # ------------------------------------------------------------------
    @property
    def round_size(self) -> int:
        return self.max_lanes * self._workers if self.use_lanes else self._workers

    @property
    def workers(self) -> int:
        return self._workers

    def _record_shm(self, nbytes: int) -> None:
        stats = self.kernel.workspace.stats
        stats.shm_segments += 1
        stats.shm_bytes = max(stats.shm_bytes, stats.shm_resident + nbytes)
        stats.shm_resident += nbytes

    def _release_shm(self, nbytes: int) -> None:
        stats = self.kernel.workspace.stats
        stats.shm_resident -= nbytes

    def distance_rows(self, sources) -> tuple[np.ndarray, SweepInfo]:
        if self._failed:
            raise AlgorithmError("multiprocess sweep executor is closed")
        sources = self._check_sources(sources)
        k = len(sources)
        n = self.graph.num_vertices
        if k == 0:
            return np.empty((0, n), dtype=np.int32), SweepInfo(
                backend=self.backend,
                workers=self._workers,
                traversals=0,
                sweeps=0,
                edges_examined=0,
                lane_occupancy=0.0,
            )
        per_chunk = self.max_lanes if self.use_lanes else 1
        # Spread the round over the team, but never below one lane
        # sweep's worth of useful batching per task.
        per_chunk = max(1, min(per_chunk, -(-k // self._workers)))
        bounds = chunk_bounds(k, per_chunk)
        out_seg = create_segment(4 * k * n)
        self._record_shm(out_seg.size)
        try:
            for c in range(len(bounds) - 1):
                lo, hi = int(bounds[c]), int(bounds[c + 1])
                self._task_q.put((c, out_seg.name, k, lo, sources[lo:hi]))
            num_tasks = len(bounds) - 1
            ecc = np.zeros(k, dtype=np.int64)
            edges = 0
            nsweeps = 0
            occ_sum = 0.0
            done = 0
            while done < num_tasks:
                try:
                    msg = self._result_q.get(timeout=_POLL_S)
                except _queue.Empty:
                    dead = [p.pid for p in self._procs if not p.is_alive()]
                    if dead:
                        self._failed = True
                        raise AlgorithmError(
                            f"sweep worker(s) {dead} died mid-round; "
                            "results are incomplete"
                        ) from None
                    self.kernel.check_deadline()
                    continue
                status, task_id, payload, task_edges, task_sweeps, task_occ = msg
                if status != "ok":
                    self._failed = True
                    raise AlgorithmError(f"sweep worker failed: {payload}")
                lo = int(bounds[task_id])
                hi = int(bounds[task_id + 1])
                ecc[lo:hi] = payload
                edges += task_edges
                nsweeps += task_sweeps
                occ_sum += task_occ
                done += 1
            view = np.ndarray((k, n), dtype=np.int32, buffer=out_seg.buf)
            dist = view.copy()
            del view
        finally:
            self._release_shm(out_seg.size)
            destroy_segment(out_seg)
            if self._failed:
                self.close()
        info = SweepInfo(
            backend=self.backend,
            workers=self._workers,
            traversals=k,
            sweeps=nsweeps,
            edges_examined=edges,
            lane_occupancy=occ_sum / nsweeps if nsweeps else 0.0,
            eccentricities=ecc,
        )
        self.counters.account(info)
        return dist, info

    def close(self) -> None:
        procs = getattr(self, "_procs", [])
        for _ in procs:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (getattr(self, "_task_q", None), getattr(self, "_result_q", None)):
            if q is not None:
                try:
                    q.close()
                    q.cancel_join_thread()
                except (OSError, ValueError):
                    pass
        shared = getattr(self, "_shared", None)
        if shared is not None and shared._seg is not None:
            self._release_shm(shared.nbytes)
            shared.close()
            shared._seg = None
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        self._failed = True

    @staticmethod
    def _cleanup(shared, procs) -> None:  # pragma: no cover - gc backstop
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        if shared._seg is not None:
            shared.close()


def create_executor(
    graph: CSRGraph,
    *,
    workers: int = 1,
    batch_lanes: int = LANE_WIDTH,
    backend: str = "auto",
    kernel: TraversalKernel | None = None,
    model: LevelSynchronousCostModel | None = None,
    start_method: str | None = None,
    memory_budget: int | None = None,
) -> SweepExecutor:
    """Build the right :class:`SweepExecutor` for a fan-out workload.

    ``backend="auto"`` delegates to
    :meth:`LevelSynchronousCostModel.choose_backend` with the graph's
    structural estimate and ``batch_lanes * max(workers, 1)`` expected
    sources per round. Degradation is graceful and warned, never
    fatal: a ``multiprocess`` request without usable shared memory (or
    whose pool fails to start) falls back to ``bitparallel``, and a
    single-worker ``multiprocess`` request is served in-process.

    ``memory_budget`` is the byte cap on decoded-block scratch. When it
    resolves to a pressure mode (``"cached"`` / ``"stream"`` — see
    :meth:`LevelSynchronousCostModel.choose_memory_mode`) on a
    store-backed graph, an ``auto`` backend is vetoed down to
    ``serial``: lane sweeps and decoded-array gathers would drag the
    full indices through memory regardless of the budget, while the
    serial backend runs on the kernel's budget-routed block path. An
    explicit ``multiprocess`` request still works — the budget travels
    in the shm spec so every worker's kernel honors it too.
    """
    if workers < 1:
        raise AlgorithmError(f"workers must be >= 1, got {workers}")
    if batch_lanes < 1:
        raise AlgorithmError(f"batch_lanes must be >= 1, got {batch_lanes}")
    if backend == "auto":
        model = model or LevelSynchronousCostModel()
        if memory_budget is not None and graph.backing_store is not None:
            decoded = graph.indptr.nbytes + graph.indices.nbytes
            mode, _ = model.choose_memory_mode(
                decoded_bytes=decoded, budget_bytes=memory_budget
            )
            if mode != "decode":
                backend = "serial"
        if backend == "auto":
            backend = model.choose_backend(
                num_sources=batch_lanes * max(workers, 1),
                num_vertices=graph.num_vertices,
                num_directed_edges=graph.num_directed_edges,
                max_degree=graph.max_degree(),
                workers=workers,
                lanes=min(batch_lanes, LANE_WIDTH),
                shm_ok=shm_available(),
            )
    if backend == "multiprocess":
        if workers < 2:
            backend = "bitparallel"
        elif not shm_available():
            warnings.warn(
                "shared memory unavailable; multiprocess sweep backend "
                "falling back to bitparallel",
                stacklevel=2,
            )
            backend = "bitparallel"
        else:
            try:
                return MultiprocessSweepExecutor(
                    graph,
                    workers=workers,
                    kernel=kernel,
                    max_lanes=batch_lanes,
                    start_method=start_method,
                    memory_budget=memory_budget,
                )
            except (OSError, AlgorithmError) as exc:
                warnings.warn(
                    f"multiprocess sweep pool failed to start ({exc}); "
                    "falling back to bitparallel",
                    stacklevel=2,
                )
                backend = "bitparallel"
    if backend == "bitparallel":
        return BitparallelSweepExecutor(graph, kernel=kernel, max_lanes=batch_lanes)
    if backend == "serial":
        return SerialSweepExecutor(graph, kernel=kernel)
    raise AlgorithmError(
        f"unknown sweep backend {backend!r}; "
        "expected auto, serial, bitparallel, or multiprocess"
    )


def process_map(func, items, *, workers: int = 1, start_method: str | None = None) -> list:
    """Map ``func`` over ``items`` with a throwaway worker pool.

    The fan-out primitive for *non-graph* independent work (the fuzz
    campaign's trial battery): tasks must be picklable and ``func``
    module-level. ``workers <= 1``, a single item, or an unusable
    multiprocessing environment degrade to an in-process map, so the
    result is always exactly ``[func(x) for x in items]`` in order —
    callers never need to care which path ran.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(x) for x in items]
    import multiprocessing as mp

    try:
        ctx = mp.get_context(start_method or default_start_method())
        chunk = max(1, -(-len(items) // (workers * 2)))
        with ctx.Pool(processes=min(workers, len(items))) as pool:
            return pool.map(func, items, chunksize=chunk)
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); running trials in-process",
            stacklevel=2,
        )
        return [func(x) for x in items]
