"""Shared-memory CSR segments for the multiprocess sweep backend.

The multiprocess :class:`~repro.parallel.sweep.SweepExecutor` backend
must hand the graph to its worker processes without pickling it — the
CSR of a 10^5-vertex analog is megabytes, and a fuzz campaign or query
batch dispatches hundreds of rounds. This module owns the
``multiprocessing.shared_memory`` lifecycle:

* the parent *creates* named segments (``repro-sweep-<hex>``), copies
  ``indptr``/``indices`` (and per-call distance-row outputs) into them,
  and records every creation in a process-local registry;
* workers *attach* read-only by name, immediately unregistering the
  mapping from their ``resource_tracker`` so a worker exit cannot
  unlink a segment the parent still owns (attaching registers the
  segment for destruction on Python < 3.13, which is exactly wrong for
  a create-in-parent / attach-in-child protocol);
* the parent *unlinks* deterministically (context manager /
  ``destroy_segment``), with an ``atexit`` guard sweeping anything the
  registry still holds — so a KeyboardInterrupt mid-sweep cannot leak
  ``/dev/shm`` entries.

Everything here is numpy-agnostic plumbing; the array views live in
:class:`SharedCSR` and the executor's per-call output blocks.
"""

from __future__ import annotations

import atexit
import os
import secrets

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = [
    "SHM_PREFIX",
    "shm_available",
    "create_segment",
    "attach_segment",
    "destroy_segment",
    "SharedCSR",
]

#: Name prefix of every segment this package creates; the leak
#: regression tests scan ``/dev/shm`` for leftovers carrying it.
SHM_PREFIX = "repro-sweep-"

#: Process-local registry of segments *created* (not attached) here,
#: keyed by name — the atexit guard unlinks whatever is left.
_CREATED: dict[str, object] = {}

_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory works in this environment.

    Probed once per process (containers without ``/dev/shm`` or with a
    locked-down tmpfs raise on create); the multiprocess backend falls
    back gracefully when this is ``False``.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except (ImportError, OSError, PermissionError, ValueError):
            _AVAILABLE = False
    return _AVAILABLE


def create_segment(nbytes: int):
    """Create a registered shared-memory segment of at least ``nbytes``."""
    from multiprocessing import shared_memory

    name = f"{SHM_PREFIX}{os.getpid():x}-{secrets.token_hex(6)}"
    try:
        seg = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 1)
        )
    except OSError as exc:
        raise AlgorithmError(f"cannot create shared-memory segment: {exc}") from exc
    _CREATED[seg.name] = seg
    return seg


def attach_segment(name: str):
    """Attach to an existing segment without adopting its ownership.

    Used by worker processes. On Python < 3.13 attaching *registers*
    the segment with the ``resource_tracker`` for destruction, which is
    exactly wrong for a create-in-parent / attach-in-child protocol —
    and under ``fork`` the tracker process is shared, so a worker
    unregistering after the fact would clobber the parent's own
    registration (KeyError noise at unlink). Suppressing the
    registration during the attach sends the tracker nothing at all.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip_shared_memory(res_name, rtype):
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def destroy_segment(seg) -> None:
    """Close and unlink one segment; idempotent and exception-safe."""
    if seg is None:
        return
    _CREATED.pop(getattr(seg, "name", None), None)
    try:
        seg.close()
    except (OSError, BufferError):
        pass
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass


@atexit.register
def _unlink_leftovers() -> None:  # pragma: no cover - interpreter teardown
    for seg in list(_CREATED.values()):
        destroy_segment(seg)


class SharedCSR:
    """A CSR graph placed in one shared-memory segment.

    Layout: ``indptr`` (``int64``, ``n + 1`` entries) followed by
    ``indices`` (``int32`` or ``int64``, ``m`` entries) — the offset of
    ``indices`` is ``8 * (n + 1)``, which keeps both arrays aligned.
    The parent constructs this once per executor; workers rebuild a
    read-only :class:`~repro.graph.csr.CSRGraph` view over the same
    physical pages via :meth:`attach`, so the graph is shared with
    zero pickling and zero per-worker copies (only the ``O(n)`` degree
    array is worker-local).

    When the parent's graph carries an open compressed store (a
    ``.scsr`` loaded with ``mmap=True`` — see
    :attr:`~repro.graph.csr.CSRGraph.backing_store`) and the compressed
    image is smaller than the decoded arrays, the segment ships the
    *image* instead (``spec["kind"] == "scsr"``): each worker
    varint-decodes its own private CSR from the shared pages on
    attach. The segment shrinks by the store's compression ratio at
    the cost of one full decode per worker — paid once per pool, not
    per round — and the decoded answers are bit-identical either way
    (the differential tests cross-check spawned backends over both
    segment kinds).
    """

    def __init__(self, graph: CSRGraph, *, memory_budget: int | None = None):
        store = graph.backing_store
        decoded_nbytes = graph.indptr.nbytes + graph.indices.nbytes
        self._memory_budget = memory_budget
        if store is not None and store.image_nbytes < decoded_nbytes:
            self._init_scsr(graph, store)
            return
        n = graph.num_vertices
        m = len(graph.indices)
        indptr_bytes = 8 * (n + 1)
        self._seg = create_segment(indptr_bytes + graph.indices.dtype.itemsize * m)
        buf = self._seg.buf
        indptr_view = np.ndarray(n + 1, dtype=np.int64, buffer=buf)
        indices_view = np.ndarray(
            m, dtype=graph.indices.dtype, buffer=buf, offset=indptr_bytes
        )
        indptr_view[:] = graph.indptr
        indices_view[:] = graph.indices
        self.nbytes = self._seg.size
        self.spec = {
            "segment": self._seg.name,
            "num_vertices": n,
            "num_indices": m,
            "indices_dtype": graph.indices.dtype.str,
            "name": graph.name,
        }

    def _init_scsr(self, graph: CSRGraph, store) -> None:
        """Place the compressed ``.scsr`` image in the segment."""
        image = store.image
        self._seg = create_segment(len(image))
        view = np.ndarray(len(image), dtype=np.uint8, buffer=self._seg.buf)
        view[:] = image
        self.nbytes = self._seg.size
        self.spec = {
            "segment": self._seg.name,
            "kind": "scsr",
            "image_nbytes": len(image),
            "name": graph.name,
        }
        if self._memory_budget is not None:
            self.spec["memory_budget"] = int(self._memory_budget)

    @staticmethod
    def attach(spec: dict) -> tuple[CSRGraph, object]:
        """Rebuild the graph from a worker process; returns ``(graph, seg)``.

        The returned segment handle must be kept alive as long as the
        graph is used (the arrays view its buffer) and ``close()``\\d —
        never unlinked — when the worker shuts down. For ``"scsr"``
        segments the worker decodes a private copy, so the handle only
        needs to outlive the attach itself; it is still returned for a
        uniform lifecycle.
        """
        seg = attach_segment(spec["segment"])
        if spec.get("kind") == "scsr":
            from repro.store import CompressedCSR

            image = np.ndarray(
                int(spec["image_nbytes"]), dtype=np.uint8, buffer=seg.buf
            )
            budget = spec.get("memory_budget")
            store = CompressedCSR.from_buffer(
                image,
                source=f"<shm:{spec['segment']}>",
                cache_bytes=budget,
            )
            graph = store.to_graph().with_name(spec["name"])
            if budget is not None:
                # Keep the store attached so the worker's kernel can
                # route gathers through the budgeted block cache.
                object.__setattr__(graph, "_backing", store)
            return graph, seg
        n = int(spec["num_vertices"])
        m = int(spec["num_indices"])
        indptr = np.ndarray(n + 1, dtype=np.int64, buffer=seg.buf)
        indices = np.ndarray(
            m, dtype=np.dtype(spec["indices_dtype"]), buffer=seg.buf, offset=8 * (n + 1)
        )
        graph = CSRGraph(indptr=indptr, indices=indices, name=spec["name"])
        return graph, seg

    def close(self) -> None:
        """Unlink the segment; safe to call more than once."""
        destroy_segment(self._seg)

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
