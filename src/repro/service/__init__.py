"""Coalescing graph-query service: continuous batching for throughput.

PR 4's :class:`~repro.query.QueryEngine` packs a pre-formed batch of
mixed dist/ecc/diam queries into 64-lane sweeps — 256 queries in one
edge-gather pass. Production traffic doesn't arrive pre-formed: it is
many concurrent clients each holding one query. This package closes
that gap with the trick inference servers use — **continuous
batching**: an always-on asyncio HTTP/JSON server whose per-graph
*batching window* coalesces in-flight requests into shared sweeps, so
N concurrent single queries cost ~N/64 gather passes instead of N
scalar BFS runs.

Layers (DESIGN.md §15):

* :class:`~repro.service.scheduler.CoalescingScheduler` — the batching
  window state machine, adaptive window sizing, admission control.
* :class:`~repro.service.registry.GraphRegistry` — multi-graph
  residency under a byte budget with LRU eviction, composing with the
  out-of-core memory-mode routing for graphs bigger than the budget.
* :class:`~repro.service.server.QueryService` — the HTTP front end
  (``POST /query``, ``GET /stats``, ``GET /graphs``, ``GET /healthz``)
  and lifecycle owner.
* :class:`~repro.service.client.ServiceClient` — the dependency-free
  client the load harness, CI gate, and tests drive it with.

``python -m repro serve graph.scsr --mmap`` boots one from the CLI.
"""

from repro.service.client import ServiceClient
from repro.service.registry import GraphRegistry, GraphSpec, UnknownGraphError
from repro.service.scheduler import (
    BatchFailedError,
    CoalescingScheduler,
    QueueFullError,
    SchedulerConfig,
    ServiceClosedError,
)
from repro.service.server import QueryService
from repro.service.stats import LatencyRecorder, ServiceStats, percentile

__all__ = [
    "BatchFailedError",
    "CoalescingScheduler",
    "GraphRegistry",
    "GraphSpec",
    "LatencyRecorder",
    "QueryService",
    "QueueFullError",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceStats",
    "UnknownGraphError",
    "percentile",
]
