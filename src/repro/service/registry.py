"""Multi-graph registry: lazy opens, byte-budgeted LRU residency.

The server is configured with *specs* (a key plus a graph file path,
or an already-built :class:`~repro.graph.csr.CSRGraph`); the registry
opens them lazily on first query and keeps the resident set under a
byte budget with LRU eviction. Residency is measured the same way the
out-of-core tier measures it (PR 8's ``decoded_bytes``):
``indptr.nbytes + indices.nbytes`` — the arrays a traversal actually
walks.

Interplay with the memory-mode routing: the budget here evicts *whole
graphs*; a graph whose decoded size alone exceeds the engine's
``memory_budget`` still opens fine when backed by a mmap'd ``.scsr``
image — the kernel's cost model routes its gathers through the
block-decode path (DESIGN.md §14), so a cold or oversized graph costs
wall time, never an OOM. The two budgets compose: ``byte_budget``
bounds how many graphs stay hot, ``memory_budget`` bounds the scratch
each one may decode.

Threading contract: :meth:`ensure`, :meth:`evict`, and :meth:`close`
run on the scheduler's single dispatch thread (the same thread that
runs ``QueryEngine`` batches), so the engine's registry and this one
are mutated from exactly one thread. :meth:`pin`/:meth:`unpin` are
called from the event loop and guarded by a lock; pinned graphs (ones
with queries waiting or in flight) are never evicted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.dynamic import DynamicGraph
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.io import read_graph

__all__ = ["GraphRegistry", "GraphSpec", "UnknownGraphError", "resident_bytes"]


class UnknownGraphError(AlgorithmError):
    """A query named a graph key the registry has no spec for (404)."""


def resident_bytes(graph) -> int:
    """Decoded working-set estimate: the arrays a traversal walks.

    A :class:`~repro.dynamic.DynamicGraph` is measured by its base CSR
    (the overlay is bounded by the compaction threshold, a fraction of
    the base).
    """
    base = getattr(graph, "base", graph)
    return int(base.indptr.nbytes + base.indices.nbytes)


@dataclass
class GraphSpec:
    """One serveable graph: a key plus how to materialize it."""

    key: str
    #: Path to open lazily (``.npz``/``.scsr``/text), or ``None`` when
    #: ``graph`` is provided directly.
    path: str | None = None
    #: Pre-built graph (tests, embedded use); kept out of eviction's
    #: store-closing path since the caller owns it.
    graph: CSRGraph | None = None
    #: Memory-map binary containers on open (``.scsr`` keeps the
    #: compressed image attached for block-decoding gathers).
    mmap: bool = True
    #: Wrap in a :class:`~repro.dynamic.DynamicGraph` on open so the
    #: service can apply ``POST /mutate`` batches to it.
    dynamic: bool = False

    def __post_init__(self):
        if (self.path is None) == (self.graph is None):
            raise AlgorithmError(
                f"graph spec {self.key!r} needs exactly one of path/graph"
            )


class _Resident:
    __slots__ = ("graph", "nbytes", "opened_here")

    def __init__(self, graph: CSRGraph, nbytes: int, opened_here: bool):
        self.graph = graph
        self.nbytes = nbytes
        self.opened_here = opened_here


class GraphRegistry:
    """Byte-budgeted LRU of resident graphs in front of a QueryEngine."""

    def __init__(self, engine, *, byte_budget: int | None = None):
        if byte_budget is not None and byte_budget < 0:
            raise AlgorithmError("byte_budget must be >= 0")
        self.engine = engine
        self.byte_budget = byte_budget
        self._specs: dict[str, GraphSpec] = {}
        self._resident: dict[str, _Resident] = {}  # insertion = LRU order
        self._pins: dict[str, int] = {}
        self._pin_lock = threading.Lock()
        self.opens = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    def register(
        self,
        key: str,
        *,
        path: str | None = None,
        graph: CSRGraph | None = None,
        mmap: bool = True,
        dynamic: bool = False,
    ) -> None:
        """Declare a serveable graph (not opened until first query)."""
        self._specs[key] = GraphSpec(
            key=key, path=path, graph=graph, mmap=mmap, dynamic=dynamic
        )

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def keys(self) -> list[str]:
        return list(self._specs)

    @property
    def resident_total(self) -> int:
        return sum(r.nbytes for r in self._resident.values())

    # ------------------------------------------------------------------
    # Pinning (event-loop side)
    # ------------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction while queries reference it."""
        with self._pin_lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        with self._pin_lock:
            count = self._pins.get(key, 0) - 1
            if count <= 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count

    def _pinned(self, key: str) -> bool:
        with self._pin_lock:
            return self._pins.get(key, 0) > 0

    # ------------------------------------------------------------------
    # Residency (dispatch-thread side)
    # ------------------------------------------------------------------
    def ensure(self, key: str) -> CSRGraph:
        """Open ``key`` if cold, register it with the engine, and
        return the graph; refreshes LRU order and applies the budget."""
        spec = self._specs.get(key)
        if spec is None:
            raise UnknownGraphError(
                f"unknown graph {key!r}; serveable: {sorted(self._specs)}"
            )
        resident = self._resident.get(key)
        if resident is None:
            if spec.graph is not None:
                graph, opened_here = spec.graph, False
            else:
                graph, opened_here = read_graph(spec.path, mmap=spec.mmap), True
            if spec.dynamic and not isinstance(graph, DynamicGraph):
                graph = DynamicGraph(graph)
            self.engine.add_graph(graph, key=key)
            resident = _Resident(graph, resident_bytes(graph), opened_here)
            self._resident[key] = resident
            self.opens += 1
        else:
            # Refresh LRU order (dict preserves insertion order).
            self._resident.pop(key)
            self._resident[key] = resident
        self._evict_over_budget(keep=key)
        return resident.graph

    def _evict_over_budget(self, *, keep: str) -> None:
        if self.byte_budget is None:
            return
        while self.resident_total > self.byte_budget:
            victim = next(
                (
                    k
                    for k in self._resident
                    if k != keep and not self._pinned(k)
                ),
                None,
            )
            if victim is None:
                # Everything else is pinned (or this is the only
                # graph): allow the overshoot — shedding in-flight
                # work to honor a byte budget would corrupt batches.
                return
            self.evict(victim)

    def evict(self, key: str) -> bool:
        """Drop ``key`` from the engine and close its backing store."""
        resident = self._resident.pop(key, None)
        if resident is None:
            return False
        self.engine.remove_graph(key)
        base = getattr(resident.graph, "base", resident.graph)
        backing = getattr(base, "backing_store", None)
        if resident.opened_here and backing is not None:
            backing.close()
        self.evictions += 1
        return True

    def close(self) -> None:
        """Evict everything (shutdown path)."""
        for key in list(self._resident):
            self.evict(key)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/stats`` endpoint's ``registry`` section."""
        return {
            "registered": len(self._specs),
            "resident": len(self._resident),
            "resident_bytes": self.resident_total,
            "byte_budget": self.byte_budget,
            "opens": self.opens,
            "evictions": self.evictions,
            "graphs": {
                key: {
                    "resident": key in self._resident,
                    "resident_bytes": (
                        self._resident[key].nbytes
                        if key in self._resident
                        else 0
                    ),
                    "vertices": (
                        self._resident[key].graph.num_vertices
                        if key in self._resident
                        else None
                    ),
                }
                for key in self._specs
            },
        }
