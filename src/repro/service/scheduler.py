"""The coalescing batch scheduler: continuous batching for queries.

The mechanism that turns PR 4's batched :class:`~repro.query.QueryEngine`
into multi-user throughput. Requests arrive one at a time from
concurrent clients; the scheduler holds each graph's arrivals in a
*batching window* and dispatches them as one ``QueryEngine.run`` batch,
so N concurrent single queries cost ~N/64 edge-gather passes instead of
N scalar BFS runs.

State machine per graph key (DESIGN.md §15):

* **idle** — no pending queries, no timer.
* **accumulating** — the first arrival arms a one-shot timer for the
  chosen window; later arrivals pile into the same list. Reaching
  ``batch_limit`` pending queries dispatches immediately (the window
  is a latency bound, not a batch-size requirement).
* **dispatch** — the timer (or the limit) fires: the pending list is
  swapped out atomically on the event loop, pinned against registry
  eviction, and run on the single dispatch thread. New arrivals start
  accumulating the *next* batch immediately — batch k+1 fills while
  batch k executes, which is exactly the continuous-batching overlap
  inference servers use.

Window tuning: the armed window is
``clamp(min_window_s, window_s, 63 × EWMA inter-arrival gap)`` when
``adaptive`` (the default). Under heavy load the gap is microseconds,
so the window shrinks toward ``min_window_s`` — batches still fill a
lane word because arrivals are dense, and nobody waits longer than
needed. Under light load the clamp rises to the configured ceiling:
a lone query waits at most ``window_s`` before running solo.

Admission control: at most ``max_pending`` queries may be waiting
across all graphs. Excess submissions fail fast with
:class:`QueueFullError` (the server's 429) *before* touching any
batch state, so shed load can never corrupt in-flight work.

Threading contract: all scheduler state is mutated on the event-loop
thread. Engine work — registry opens, evictions, and batch runs —
happens on one dedicated dispatch thread (``QueryEngine`` is not
thread-safe; a single worker serializes every mutation of it).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import AlgorithmError, ReproError
from repro.parallel.costmodel import LANE_WIDTH
from repro.query.engine import parse_query
from repro.service.stats import ServiceStats

__all__ = [
    "BatchFailedError",
    "CoalescingScheduler",
    "QueueFullError",
    "SchedulerConfig",
    "ServiceClosedError",
]

#: EWMA smoothing for the inter-arrival gap estimate.
_GAP_ALPHA = 0.2


class QueueFullError(ReproError):
    """Admission control shed this request (HTTP 429)."""


class ServiceClosedError(ReproError):
    """The service is shutting down (HTTP 503)."""


class BatchFailedError(ReproError):
    """The engine run carrying this query raised (HTTP 500)."""


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the coalescing window (see module docstring)."""

    #: Ceiling on how long the first query of a batch waits (seconds).
    window_s: float = 0.004
    #: Floor of the adaptive window (seconds).
    min_window_s: float = 0.0005
    #: Scale the window with the measured arrival rate.
    adaptive: bool = True
    #: Dispatch immediately once this many queries are pending for one
    #: graph (matches the engine's ``batch_lanes`` chunking).
    batch_limit: int = 256
    #: Admission-control bound on total pending queries.
    max_pending: int = 1024

    def __post_init__(self):
        if self.window_s < 0 or self.min_window_s < 0:
            raise AlgorithmError("window durations must be >= 0")
        if self.min_window_s > self.window_s:
            raise AlgorithmError("min_window_s must be <= window_s")
        if self.batch_limit < 1:
            raise AlgorithmError("batch_limit must be >= 1")
        if self.max_pending < 1:
            raise AlgorithmError("max_pending must be >= 1")


class _Pending:
    __slots__ = ("parsed", "future", "t0")

    def __init__(self, parsed: tuple, future: asyncio.Future, t0: float):
        self.parsed = parsed
        self.future = future
        self.t0 = t0


class CoalescingScheduler:
    """Per-graph batching windows over one dispatch thread."""

    def __init__(
        self,
        engine,
        registry,
        *,
        config: SchedulerConfig | None = None,
        stats: ServiceStats | None = None,
    ):
        self.engine = engine
        self.registry = registry
        self.config = config or SchedulerConfig()
        self.stats = stats if stats is not None else ServiceStats()
        self._pending: dict[str, list[_Pending]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._inflight: set[asyncio.Task] = set()
        self._total_pending = 0
        self._ewma_gap: float | None = None
        self._last_arrival: float | None = None
        self._closed = False
        self._dispatch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dispatch"
        )

    # ------------------------------------------------------------------
    @property
    def pending_total(self) -> int:
        """Queries currently waiting in a window (not yet dispatched)."""
        return self._total_pending

    def _pick_window(self) -> float:
        window = self.config.window_s
        if self.config.adaptive and self._ewma_gap is not None:
            window = min(window, (LANE_WIDTH - 1) * self._ewma_gap)
        return max(self.config.min_window_s, window)

    def _note_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap += _GAP_ALPHA * (gap - self._ewma_gap)
        self._last_arrival = now

    # ------------------------------------------------------------------
    async def submit(self, key: str, query) -> tuple[int, int]:
        """Coalesce one query into the graph's current window.

        Returns ``(answer, epoch)`` — the epoch is the graph's
        mutation epoch the carrying batch actually ran under (always 0
        for static graphs), so a caller interleaving queries with
        ``POST /mutate`` can line every answer up with the mutation
        stream.

        Raises :class:`~repro.service.registry.UnknownGraphError` for
        an unregistered key, :class:`~repro.errors.AlgorithmError` for
        a malformed/out-of-range query (before it can join a batch),
        :class:`QueueFullError` when admission control sheds it, and
        :class:`ServiceClosedError` during shutdown.
        """
        t0 = time.perf_counter()
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        if self._total_pending >= self.config.max_pending:
            self.stats.rejected += 1
            raise QueueFullError(
                f"{self._total_pending} queries pending "
                f"(limit {self.config.max_pending}); retry later"
            )
        loop = asyncio.get_running_loop()
        # Cold graphs open on the dispatch thread (mmap + sidecar load
        # can take a while; the event loop keeps serving meanwhile).
        graph = await loop.run_in_executor(
            self._dispatch, self.registry.ensure, key
        )
        try:
            parsed = parse_query(query, num_vertices=graph.num_vertices)
        except AlgorithmError:
            self.stats.invalid += 1
            raise
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        # Authoritative admission check: the await above yielded, so
        # other submissions may have filled the queue since the fast
        # pre-check.
        if self._total_pending >= self.config.max_pending:
            self.stats.rejected += 1
            raise QueueFullError(
                f"{self._total_pending} queries pending "
                f"(limit {self.config.max_pending}); retry later"
            )

        future: asyncio.Future = loop.create_future()
        pending = self._pending.setdefault(key, [])
        pending.append(_Pending(parsed, future, t0))
        self._total_pending += 1
        self.stats.admitted += 1
        self._note_arrival(time.perf_counter())
        if len(pending) >= self.config.batch_limit:
            self._flush(key)
        elif key not in self._timers:
            window = self._pick_window()
            self.stats.last_window_s = window
            self._timers[key] = loop.call_later(window, self._flush, key)

        answer, epoch = await future
        self.stats.answered += 1
        self.stats.latency.record(time.perf_counter() - t0)
        return answer, epoch

    # ------------------------------------------------------------------
    def _flush(self, key: str) -> None:
        """Swap out the graph's pending list and dispatch it."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        self._total_pending -= len(batch)
        self.registry.pin(key)
        task = asyncio.get_running_loop().create_task(
            self._run_batch(key, batch)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: str, batch: list[_Pending]) -> None:
        queries = [p.parsed for p in batch]
        loop = asyncio.get_running_loop()
        try:
            answers, batch_stats = await loop.run_in_executor(
                self._dispatch, self.engine.run, key, queries
            )
        except BaseException as exc:  # noqa: BLE001 - fail the riders, keep serving
            self.stats.failed_batches += 1
            for p in batch:
                if not p.future.done():
                    p.future.set_exception(
                        BatchFailedError(f"batch failed: {exc}")
                    )
        else:
            self.stats.observe_batch(
                batch_stats, window_s=self.stats.last_window_s
            )
            for p, answer in zip(batch, answers):
                if not p.future.done():
                    p.future.set_result((answer, batch_stats.epoch))
        finally:
            self.registry.unpin(key)

    # ------------------------------------------------------------------
    async def submit_mutation(self, key: str, inserts=(), deletes=()):
        """Apply one mutation batch, interleaving safely with queries.

        Ordering contract: queries admitted *before* the mutation run
        on the pre-mutation epoch, the mutation itself runs alone on
        the dispatch thread (``QueryEngine.mutate`` swaps the entry's
        kernel/memo state, which must never race a batch), and queries
        admitted afterwards see the new epoch. This needs no global
        lock: the key's currently-accumulating window is flushed first,
        and since both batch runs and the mutation are submitted to the
        same single-worker executor in that order, FIFO execution on
        the dispatch thread is the serialization.

        Returns the :class:`~repro.dynamic.MutationBatch` record.
        Raises ``UnknownGraphError`` for an unregistered key,
        ``AlgorithmError`` for a static graph or malformed/out-of-range
        edges, and ``ServiceClosedError`` during shutdown.
        """
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._dispatch, self.registry.ensure, key)
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        # Dispatch the window the pre-mutation queries joined...
        self._flush(key)
        # ... and let the freshly created batch task(s) reach their
        # run_in_executor submission (a task runs synchronously up to
        # its first await once the loop yields; call_soon is FIFO, so
        # one tick suffices) before the mutation enters the executor
        # queue behind them.
        await asyncio.sleep(0)
        self.registry.pin(key)
        try:
            batch = await loop.run_in_executor(
                self._dispatch, self.engine.mutate, key, inserts, deletes
            )
        finally:
            self.registry.unpin(key)
        self.stats.mutations += 1
        self.stats.mutated_edges += batch.inserted + batch.deleted
        return batch

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush every window and wait for in-flight batches."""
        for key in list(self._pending):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def close(self) -> None:
        """Stop admitting, drain in-flight work, stop the dispatcher."""
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for batch in self._pending.values():
            for p in batch:
                if not p.future.done():
                    p.future.set_exception(
                        ServiceClosedError("service is shutting down")
                    )
        self._pending.clear()
        self._total_pending = 0
        self._dispatch.shutdown(wait=True)
