"""Minimal asyncio HTTP/JSON client for the query service.

The load harness, the CI service gate, and the tests all talk to the
server through this: one keep-alive connection per client instance
(mirroring a real caller with a connection pool of one), JSON in/out,
no third-party dependencies. Not a general HTTP client — exactly the
subset the service speaks.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import AlgorithmError

__all__ = ["ServiceClient"]


class ServiceClient:
    """One persistent connection to a :class:`QueryService`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One round trip; reconnects once if the connection went stale."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._roundtrip(method, path, payload)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(self, method, path, payload):
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise AlgorithmError(
                f"malformed status line {status_line!r} from the service"
            )
        status = int(parts[1])
        headers = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        raw_body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        payload = json.loads(raw_body) if raw_body else {}
        return status, payload

    # ------------------------------------------------------------------
    async def query(self, graph: str, *queries) -> tuple[int, dict]:
        """POST /query with one or more query strings."""
        return await self.request(
            "POST", "/query", {"graph": graph, "queries": list(queries)}
        )

    async def mutate(
        self, graph: str, *, insert=(), delete=()
    ) -> tuple[int, dict]:
        """POST /mutate with edge-pair lists (dynamic graphs only)."""
        return await self.request(
            "POST",
            "/mutate",
            {
                "graph": graph,
                "insert": [list(edge) for edge in insert],
                "delete": [list(edge) for edge in delete],
            },
        )

    async def stats(self) -> dict:
        status, payload = await self.request("GET", "/stats")
        if status != 200:
            raise AlgorithmError(f"/stats returned {status}: {payload}")
        return payload
