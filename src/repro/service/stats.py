"""Service-side accounting: latency percentiles and coalescing ratios.

Every admitted request records one end-to-end latency sample (submit →
answer, including the batching-window wait); every dispatched batch
folds its :class:`repro.query.BatchStats` into the service totals. The
two headline numbers the load harness and the ``/stats`` endpoint
report:

* **coalescing ratio** — queries per dispatched batch. 1.0 means the
  window never merged anything; 64 means each batch filled a full
  lane word.
* **gather-pass ratio** — scalar one-BFS-per-query traversals the
  served queries would have cost, divided by the physical edge-gather
  sweeps actually run. This is the same ledger
  :class:`~repro.query.BatchStats` keeps per batch, accumulated over
  the service lifetime.

All mutation happens on the event-loop thread (batch completions are
marshalled back via ``call_soon_threadsafe``), so the recorder needs no
locking; ``snapshot()`` readers on the same loop always see a
consistent view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyRecorder", "ServiceStats", "percentile"]


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    k = int(round(q / 100.0 * (len(ordered) - 1)))
    return float(ordered[max(0, min(len(ordered) - 1, k))])


class LatencyRecorder:
    """Bounded ring of recent latency samples plus lifetime totals.

    Percentiles are computed over the retained window (the last
    ``capacity`` samples) — a long-running server's p99 should reflect
    recent behaviour, not the cold start an unbounded reservoir would
    average in forever. ``count``/``total_s`` stay lifetime-accurate.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        self.count = 0
        self.total_s = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    def snapshot(self) -> dict:
        """JSON-friendly mean + p50/p95/p99 (milliseconds)."""
        window = self._ring
        return {
            "count": self.count,
            "mean_ms": round(
                1e3 * self.total_s / self.count if self.count else 0.0, 3
            ),
            "p50_ms": round(1e3 * percentile(window, 50), 3),
            "p95_ms": round(1e3 * percentile(window, 95), 3),
            "p99_ms": round(1e3 * percentile(window, 99), 3),
            "window_samples": len(window),
        }


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`~repro.service.QueryService`."""

    #: Requests admitted into a batching window.
    admitted: int = 0
    #: Requests answered successfully.
    answered: int = 0
    #: Requests shed by admission control (HTTP 429).
    rejected: int = 0
    #: Requests refused at parse/validation time (HTTP 400).
    invalid: int = 0
    #: Batches whose engine run raised (every rider got a 500).
    failed_batches: int = 0
    #: Batches dispatched to the engine.
    batches: int = 0
    #: Queries carried by those batches.
    batched_queries: int = 0
    #: Physical edge-gather sweeps across all batches.
    sweeps: int = 0
    #: One-BFS-per-query scalar baseline across all batches.
    scalar_traversals: int = 0
    #: Fresh sources actually swept.
    bfs_sources: int = 0
    #: Queries answered from the distance-row or diameter memos.
    memo_hits: int = 0
    #: Edges examined across all batches.
    edges_examined: int = 0
    #: Mutation batches applied through ``POST /mutate``.
    mutations: int = 0
    #: Edges actually inserted or deleted by those batches (noop
    #: requests excluded).
    mutated_edges: int = 0
    #: The batching window the scheduler last armed (seconds).
    last_window_s: float = 0.0
    #: Size and amortization of the most recent batch.
    last_batch: dict = field(default_factory=dict)
    #: End-to-end latency samples (submit -> answer).
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def observe_batch(self, batch_stats, *, window_s: float) -> None:
        """Fold one dispatched batch's :class:`BatchStats` in."""
        self.batches += 1
        self.batched_queries += batch_stats.queries
        self.sweeps += batch_stats.sweeps
        self.scalar_traversals += batch_stats.scalar_traversals
        self.bfs_sources += batch_stats.bfs_sources
        self.memo_hits += batch_stats.memo_hits
        self.edges_examined += batch_stats.edges_examined
        self.last_window_s = window_s
        self.last_batch = {
            "queries": batch_stats.queries,
            "sweeps": batch_stats.sweeps,
            "memo_hits": batch_stats.memo_hits,
            "window_ms": round(1e3 * window_s, 3),
        }

    @property
    def coalescing_ratio(self) -> float:
        """Mean queries per dispatched batch (1.0 = no coalescing)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    @property
    def gather_pass_ratio(self) -> float:
        """Scalar-baseline traversals per physical sweep."""
        return self.scalar_traversals / self.sweeps if self.sweeps else 0.0

    def snapshot(self) -> dict:
        """The ``/stats`` endpoint's ``service`` section."""
        return {
            "admitted": self.admitted,
            "answered": self.answered,
            "rejected": self.rejected,
            "invalid": self.invalid,
            "failed_batches": self.failed_batches,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "coalescing_ratio": round(self.coalescing_ratio, 3),
            "sweeps": self.sweeps,
            "scalar_traversals": self.scalar_traversals,
            "gather_pass_ratio": round(self.gather_pass_ratio, 3),
            "bfs_sources": self.bfs_sources,
            "memo_hits": self.memo_hits,
            "edges_examined": self.edges_examined,
            "mutations": self.mutations,
            "mutated_edges": self.mutated_edges,
            "last_window_ms": round(1e3 * self.last_window_s, 3),
            "last_batch": dict(self.last_batch),
            "latency": self.latency.snapshot(),
        }
