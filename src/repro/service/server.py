"""Asyncio HTTP/JSON front door for the coalescing query scheduler.

A deliberately small, dependency-free HTTP/1.1 implementation over
``asyncio.start_server`` (the container has no aiohttp): request line +
headers + Content-Length body in, JSON out, keep-alive supported. The
interesting machinery lives in :mod:`repro.service.scheduler`; this
module just maps HTTP onto it.

Endpoints:

``POST /query``
    Body ``{"graph": KEY, "queries": [Q, ...]}`` (or a single
    ``"query": Q``). Each query coalesces *individually* into the
    graph's current batching window, so the queries of one request and
    of every concurrent request share sweeps. Responds
    ``{"graph": KEY, "answers": [...], "epochs": [...]}`` — the epoch
    per answer is the mutation epoch its carrying batch ran under
    (all zeros for static graphs). Errors are structured:
    400 malformed/out-of-range query, 404 unknown graph, 429 shed by
    admission control, 500 batch failure, 503 shutting down.

``POST /mutate``
    Body ``{"graph": KEY, "insert": [[u, v], ...],
    "delete": [[u, v], ...]}`` (either list optional). Applies one
    batched edge mutation to a graph registered as dynamic
    (``add_graph(..., dynamic=True)``), serialized against query
    batches on the dispatch thread (see
    :meth:`CoalescingScheduler.submit_mutation`). Responds
    ``{"graph": KEY, "epoch": E, "applied": {...}}`` with the
    post-batch epoch and insert/delete/noop counts. 400 for a static
    graph, self-loops, or out-of-range endpoints; 404/503 as above.

``GET /stats``
    Service, scheduler, registry, per-graph executor, and warm-start
    cache counters (see :meth:`QueryService.stats_snapshot`).

``GET /graphs``
    The registry listing (keys, residency, sizes).

``GET /healthz``
    ``{"ok": true}`` once the server accepts connections.
"""

from __future__ import annotations

import asyncio
import json

from repro._version import __version__
from repro.errors import AlgorithmError, ReproError
from repro.query import QueryEngine
from repro.service.registry import GraphRegistry, UnknownGraphError
from repro.service.scheduler import (
    BatchFailedError,
    CoalescingScheduler,
    QueueFullError,
    SchedulerConfig,
    ServiceClosedError,
)
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies past this size are rejected outright (413).
_MAX_BODY = 1 << 20

#: Engine registry capacity: residency is the byte-budgeted registry's
#: job, so the engine's own LRU must never be the one evicting.
_ENGINE_CAPACITY = 1 << 30


def _status_for(exc: ReproError) -> int:
    if isinstance(exc, UnknownGraphError):
        return 404
    if isinstance(exc, QueueFullError):
        return 429
    if isinstance(exc, ServiceClosedError):
        return 503
    if isinstance(exc, BatchFailedError):
        return 500
    if isinstance(exc, AlgorithmError):
        return 400
    return 500


class QueryService:
    """One server: engine + registry + scheduler + HTTP front end."""

    def __init__(
        self,
        *,
        store=None,
        config: SchedulerConfig | None = None,
        byte_budget: int | None = None,
        memory_budget: int | None = None,
        batch_lanes: int = 256,
        workers: int = 1,
        memo_vectors: int = 64,
    ):
        self.store = store
        self.engine = QueryEngine(
            store=store,
            max_graphs=_ENGINE_CAPACITY,
            batch_lanes=batch_lanes,
            memo_vectors=memo_vectors,
            workers=workers,
            memory_budget=memory_budget,
        )
        self.registry = GraphRegistry(self.engine, byte_budget=byte_budget)
        self.stats = ServiceStats()
        self.scheduler = CoalescingScheduler(
            self.engine, self.registry, config=config, stats=self.stats
        )
        self._server: asyncio.base_events.Server | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def add_graph(
        self,
        key: str,
        *,
        path: str | None = None,
        graph=None,
        mmap: bool = True,
        dynamic: bool = False,
    ) -> None:
        """Register a serveable graph (opened lazily on first query).

        With ``dynamic=True`` the graph is wrapped in a
        :class:`~repro.dynamic.DynamicGraph` on open, which enables
        ``POST /mutate`` batches against it.
        """
        self.registry.register(
            key, path=path, graph=graph, mmap=mmap, dynamic=dynamic
        )

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_client, host=host, port=port
        )
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise AlgorithmError("start() the service first")
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain batches, flush sidecars, free graphs."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.close()
        loop = asyncio.get_running_loop()
        # Engine/registry teardown belongs to the dispatch thread, but
        # the scheduler's executor is gone now; state is quiesced, so
        # running it here is safe.
        await loop.run_in_executor(None, self._teardown)

    def _teardown(self) -> None:
        if self.store is not None:
            self.engine.flush()
        self.registry.close()
        self.engine.close()

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The ``/stats`` payload."""
        snapshot = {
            "version": __version__,
            "service": self.stats.snapshot(),
            "scheduler": {
                "pending": self.scheduler.pending_total,
                "window_ms": round(1e3 * self.scheduler.config.window_s, 3),
                "min_window_ms": round(
                    1e3 * self.scheduler.config.min_window_s, 3
                ),
                "adaptive": self.scheduler.config.adaptive,
                "batch_limit": self.scheduler.config.batch_limit,
                "max_pending": self.scheduler.config.max_pending,
            },
            "registry": self.registry.snapshot(),
            "executors": self.engine.executor_counters(),
        }
        if self.store is not None:
            snapshot["cache"] = self.store.counters()
        return snapshot

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload = await self._dispatch_request(
                    method, path, body
                )
                writer.write(
                    self._encode_response(
                        status, payload, keep_alive=keep_alive
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise asyncio.IncompleteReadError(b"", length)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    @staticmethod
    def _encode_response(status, payload, *, keep_alive):
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    # ------------------------------------------------------------------
    async def _dispatch_request(self, method, path, body):
        path = path.split("?", 1)[0]
        if path == "/query":
            if method != "POST":
                return 405, {"error": "POST /query"}
            return await self._handle_query(body)
        if path == "/mutate":
            if method != "POST":
                return 405, {"error": "POST /mutate"}
            return await self._handle_mutate(body)
        if method != "GET":
            return 405, {"error": f"GET {path}"}
        if path == "/healthz":
            return 200, {"ok": True, "graphs": self.registry.keys()}
        if path == "/stats":
            return 200, self.stats_snapshot()
        if path == "/graphs":
            return 200, self.registry.snapshot()["graphs"]
        return 404, {"error": f"unknown path {path!r}"}

    async def _handle_query(self, body):
        try:
            payload = json.loads(body or b"{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        key = payload.get("graph")
        if not isinstance(key, str):
            return 400, {"error": "missing 'graph' key"}
        queries = payload.get("queries")
        if queries is None:
            single = payload.get("query")
            queries = None if single is None else [single]
        if not isinstance(queries, list) or not queries:
            return 400, {
                "error": "provide 'queries': [..] or 'query': '..'"
            }

        results = await asyncio.gather(
            *(self.scheduler.submit(key, q) for q in queries),
            return_exceptions=True,
        )
        answers, epochs, errors = [], [], []
        status = 200
        for query, result in zip(queries, results):
            if isinstance(result, ReproError):
                code = _status_for(result)
                errors.append(
                    {"query": query, "status": code, "error": str(result)}
                )
                answers.append(None)
                epochs.append(None)
                if status == 200:
                    status = code
            elif isinstance(result, BaseException):
                errors.append(
                    {"query": query, "status": 500, "error": str(result)}
                )
                answers.append(None)
                epochs.append(None)
                if status == 200:
                    status = 500
            else:
                answer, epoch = result
                answers.append(answer)
                epochs.append(epoch)
        response = {"graph": key, "answers": answers, "epochs": epochs}
        if errors:
            response["errors"] = errors
        return status, response

    async def _handle_mutate(self, body):
        try:
            payload = json.loads(body or b"{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        key = payload.get("graph")
        if not isinstance(key, str):
            return 400, {"error": "missing 'graph' key"}
        inserts = payload.get("insert", [])
        deletes = payload.get("delete", [])
        if not isinstance(inserts, list) or not isinstance(deletes, list):
            return 400, {"error": "'insert'/'delete' must be edge lists"}
        try:
            batch = await self.scheduler.submit_mutation(
                key, inserts, deletes
            )
        except ReproError as exc:
            return _status_for(exc), {"error": str(exc)}
        return 200, {
            "graph": key,
            "epoch": batch.epoch,
            "applied": {
                "inserted": batch.inserted,
                "deleted": batch.deleted,
                "noop_inserts": batch.noop_inserts,
                "noop_deletes": batch.noop_deletes,
            },
        }
