"""Eccentricity primitives built on the BFS engines.

F-Diam computes the eccentricity of a vertex "by performing a parallel
level-synchronous BFS starting from v and counting the number of levels"
(Section 4). This module wraps that pattern and provides the
all-vertices variant that the naive APSP baseline and the test oracles
use.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.bfs.hybrid import BFSResult, run_bfs
from repro.bfs.reference import serial_bfs
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["Engine", "get_engine", "eccentricity", "all_eccentricities"]

#: The two execution engines of the reproduction (see DESIGN.md §2):
#: ``"parallel"`` = vectorized direction-optimized kernels,
#: ``"serial"``   = scalar pure-Python level loop.
Engine = Literal["parallel", "serial"]

_EngineFn = Callable[..., BFSResult]


def get_engine(engine: Engine) -> _EngineFn:
    """Resolve an engine name to its BFS callable."""
    if engine == "parallel":
        return run_bfs
    if engine == "serial":
        return serial_bfs
    raise ValueError(f"unknown engine {engine!r}; expected 'parallel' or 'serial'")


def eccentricity(
    graph: CSRGraph,
    vertex: int,
    marks: VisitMarks | None = None,
    *,
    engine: Engine = "parallel",
) -> int:
    """Eccentricity of ``vertex`` within its connected component."""
    return get_engine(engine)(graph, vertex, marks).eccentricity


def all_eccentricities(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    marks: VisitMarks | None = None,
) -> np.ndarray:
    """Eccentricity of every vertex (one BFS per vertex).

    This is the quadratic APSP-style computation the paper's
    introduction motivates against; it backs the naive baseline and the
    exhaustive correctness oracle for small graphs. Isolated vertices
    get eccentricity 0.
    """
    n = graph.num_vertices
    if marks is None:
        marks = VisitMarks(n)
    bfs = get_engine(engine)
    ecc = np.zeros(n, dtype=np.int64)
    for v in range(n):
        ecc[v] = bfs(graph, v, marks).eccentricity
    return ecc
