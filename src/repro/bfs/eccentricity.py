"""Eccentricity primitives and the execution-engine registry.

F-Diam computes the eccentricity of a vertex "by performing a parallel
level-synchronous BFS starting from v and counting the number of levels"
(Section 4). This module wraps that pattern, provides the all-vertices
variant that the naive APSP baseline and the test oracles use, and
hosts the **engine registry**: every BFS execution strategy is
registered by name so stages, baselines, and the CLI resolve engines
uniformly and the equivalence tests can sweep all of them.

Registered engines (see DESIGN.md §2 and the architecture section):

* ``"parallel"`` — vectorized direction-optimized hybrid (the paper's
  OpenMP code analog), kernel-backed.
* ``"serial"``   — scalar pure-Python level loop (the paper's serial
  code analog).
* ``"batched"``  — single-source traversal through the kernel's batched
  multi-source machinery; a structurally independent code path used to
  cross-check the Winnow/Eliminate primitive.
* ``"bitparallel"`` — single-source traversal through the bit-parallel
  lane sweep (:mod:`repro.bfs.bitparallel`); one lane of the 64-wide
  machinery, cross-checking the engine the multi-source consumers use.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bfs.hybrid import BFSResult, run_bfs
from repro.bfs.kernel import TraversalKernel, Workspace
from repro.bfs.reference import serial_bfs
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = [
    "Engine",
    "available_engines",
    "register_engine",
    "get_engine",
    "eccentricity",
    "all_eccentricities",
]

#: Engine name — one of :func:`available_engines` (historically the
#: literal pair ``"parallel"``/``"serial"``; the registry is open).
Engine = str

_EngineFn = Callable[..., BFSResult]


def batched_bfs(
    graph: CSRGraph,
    source: int,
    marks: VisitMarks | None = None,
    *,
    max_level: int | None = None,
    record_dist: bool = False,
) -> BFSResult:
    """Single-source BFS through the batched multi-source kernel path."""
    kernel = TraversalKernel(
        graph,
        engine="batched",
        workspace=Workspace(graph.num_vertices, marks=marks),
    )
    return kernel.bfs(source, max_level=max_level, record_dist=record_dist)


def bitparallel_bfs(
    graph: CSRGraph,
    source: int,
    marks: VisitMarks | None = None,
    *,
    max_level: int | None = None,
    record_dist: bool = False,
) -> BFSResult:
    """Single-source BFS through the bit-parallel lane-sweep path."""
    kernel = TraversalKernel(
        graph,
        engine="bitparallel",
        workspace=Workspace(graph.num_vertices, marks=marks),
    )
    return kernel.bfs(source, max_level=max_level, record_dist=record_dist)


_ENGINES: dict[str, _EngineFn] = {}


def register_engine(name: str, fn: _EngineFn) -> None:
    """Register a BFS engine under ``name`` (overwrites existing)."""
    _ENGINES[name] = fn


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines (registration order)."""
    return tuple(_ENGINES)


def get_engine(engine: Engine) -> _EngineFn:
    """Resolve an engine name to its BFS callable."""
    try:
        return _ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
        ) from None


register_engine("parallel", run_bfs)
register_engine("serial", serial_bfs)
register_engine("batched", batched_bfs)
register_engine("bitparallel", bitparallel_bfs)


def eccentricity(
    graph: CSRGraph,
    vertex: int,
    marks: VisitMarks | None = None,
    *,
    engine: Engine = "parallel",
) -> int:
    """Eccentricity of ``vertex`` within its connected component."""
    return get_engine(engine)(graph, vertex, marks).eccentricity


def all_eccentricities(
    graph: CSRGraph,
    *,
    engine: Engine = "parallel",
    marks: VisitMarks | None = None,
    batch_lanes: int = 0,
) -> np.ndarray:
    """Eccentricity of every vertex (one BFS per vertex).

    This is the quadratic APSP-style computation the paper's
    introduction motivates against; it backs the naive baseline and the
    exhaustive correctness oracle for small graphs. Isolated vertices
    get eccentricity 0. The ``"parallel"`` engine runs through one
    pooled kernel so the scratch buffers are shared across all ``n``
    traversals.

    ``batch_lanes > 0`` ignores ``engine`` and computes the spectrum in
    ``ceil(n / batch_lanes)`` bit-parallel sweeps of up to
    ``batch_lanes`` sources each (rounded up to whole 64-lane words by
    the sweep); every edge gather is shared by all lanes of a chunk, so
    the number of gather passes drops by roughly the lane count.
    """
    n = graph.num_vertices
    ecc = np.zeros(n, dtype=np.int64)
    if batch_lanes > 0:
        kernel = TraversalKernel(
            graph, workspace=Workspace(n, marks=marks), batch_lanes=batch_lanes
        )
        for start in range(0, n, batch_lanes):
            chunk = np.arange(start, min(start + batch_lanes, n), dtype=np.int64)
            sweep = kernel.levels_batched64(chunk)
            ecc[chunk] = sweep.eccentricities
        return ecc
    if engine == "parallel":
        kernel = TraversalKernel(graph, workspace=Workspace(n, marks=marks))
        for v in range(n):
            ecc[v] = kernel.bfs(v).eccentricity
        return ecc
    if marks is None:
        marks = VisitMarks(n)
    bfs = get_engine(engine)
    for v in range(n):
        ecc[v] = bfs(graph, v, marks).eccentricity
    return ecc
