"""Bit-parallel 64-lane multi-source BFS (the lane-mask sweep engine).

F-Diam's cost is dominated by repeated traversals over the same CSR
graph: the eccentricity spectrum, the SumSweep / Takes–Kosters
baselines, and the multi-source pruning waves (Eliminate extension,
Winnow resume) all launch many BFS runs whose memory passes could be
shared. This module batches up to 64 *logical* traversals per machine
word into one *physical* level-synchronous sweep:

* every vertex carries a ``uint64`` lane word (an ``(n, ceil(k/64))``
  matrix for ``k > 64`` sources) whose bit *i* means "reached by
  source *i*";
* one level expands ALL lanes at once: the frontier's neighbourhood is
  gathered (``gather_rows``), and each candidate pulls the bitwise OR
  of its neighbours' frontier words via :func:`segmented_or` — the
  ``row_any`` cumsum trick generalized from boolean "any" to bitwise
  OR (``reduceat`` per lane word, with the zero-length-segment fixup);
* a candidate's *fresh* bits are the pulled word minus its reach word,
  so per-lane first-touch semantics are preserved exactly.

The edge gathers — the bandwidth-bound part — are shared by all lanes,
so 64 eccentricities or partial balls cost roughly one traversal's
worth of memory passes instead of 64 (the classic bit-parallel BFS
batching, cf. multi-source BFS in the Magnien–Latapy–Habib
bounding-BFS lineage; see DESIGN.md §8 for the mapping onto the
paper's multi-source partial BFS).

Two read-out modes:

* **lane mode** (``marks=None``) — per-source semantics: per-lane
  eccentricities, visited counts, distance matrices. Backs the
  ``"bitparallel"`` engine, :meth:`TraversalKernel.levels_batched64`,
  the batched eccentricity spectrum, and the batched baseline
  refinement rounds.
* **merged mode** (``marks`` given) — first-touch-across-all-sources
  semantics identical to :meth:`TraversalKernel.levels`: a vertex is
  fresh when *any* lane reaches it and the shared marks have not seen
  it. This is the paper's multi-source partial BFS (Eliminate
  extension §4.5, Winnow resume) executed on the lane machinery;
  sources are spread round-robin over 64 lanes purely for the lane
  accounting, the level sets are bit-for-bit those of the scalar wave.

Buffers come from a duck-typed :class:`~repro.bfs.kernel.Workspace`
pool (``acquire_lanes`` / ``release_lanes``) so repeated sweeps reuse
their lane matrices; this module deliberately imports nothing from
:mod:`repro.bfs.kernel` to keep the dependency direction acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.bfs.frontier import compact_unique, gather_rows
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = [
    "LANE_WIDTH",
    "LaneSweep",
    "segmented_or",
    "lane_sweep",
    "lane_distances",
]

#: Logical traversals per lane word (the machine word width).
LANE_WIDTH = 64

_ONE = np.uint64(1)
_ZERO = np.uint64(0)


def segmented_or(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-row bitwise OR over a flat lane-word array segmented by ``lengths``.

    ``values`` has shape ``(total, W)`` (a 1-D array is treated as
    ``W = 1``); row ``i`` of the result is the OR of the ``lengths[i]``
    consecutive rows of its segment. This is :func:`repro.bfs.frontier.row_any`
    generalized from boolean "any" to bitwise OR: ``reduceat`` per lane
    word, with the explicit fixup for ``reduceat``'s zero-length-segment
    misbehaviour (it returns the element *at* the segment start instead
    of the reduction identity, so empty segments are masked to 0).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.ndim == 1:
        values = values[:, None]
    rows = len(lengths)
    out = np.zeros((rows, values.shape[1]), dtype=values.dtype)
    if rows == 0 or len(values) == 0:
        return out
    ends = np.cumsum(lengths)
    starts = ends - lengths
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    # Reduceat over the starts of the non-empty segments: each reduces
    # exactly its own segment because the next non-empty start equals
    # this segment's end (empty segments contribute no elements).
    out[nonempty] = np.bitwise_or.reduceat(values, starts[nonempty], axis=0)
    return out


def _lane_layout(k: int, merged: bool) -> tuple[int, np.ndarray, np.ndarray]:
    """Width in words plus per-source (word, bit) lane assignment.

    Lane mode gives every source its own bit; merged mode folds all
    sources round-robin into one 64-lane word (the lane structure is
    diagnostic only there — read-out is first-touch via shared marks).
    """
    if merged:
        width = 1
        word = np.zeros(k, dtype=np.int64)
        bitpos = (np.arange(k) % LANE_WIDTH).astype(np.uint64)
    else:
        width = max(1, -(-k // LANE_WIDTH))
        word = np.arange(k) // LANE_WIDTH
        bitpos = (np.arange(k) % LANE_WIDTH).astype(np.uint64)
    return width, word, np.left_shift(_ONE, bitpos)


@dataclass
class LaneSweep:
    """Outcome of one bit-parallel multi-source sweep.

    Attributes
    ----------
    sources:
        The lane assignment: lane ``i`` traverses from ``sources[i]``
        (lane mode) — or, in merged mode, the deduplicated seed set.
    width:
        Lane words per vertex (``ceil(k / 64)``; 1 in merged mode).
    eccentricities:
        Per lane, the deepest level at which the lane discovered a
        vertex — the source's eccentricity within its component when
        the sweep ran to exhaustion, or the depth reached under a
        level cap. Meaningful in lane mode only.
    visited_counts:
        Per-lane reached-vertex counts (source included); filled only
        when requested via ``record_counts``.
    levels:
        Number of levels the sweep expanded.
    edges_examined:
        Total adjacency entries gathered (frontier push-discovery plus
        candidate pull) — shared by ALL lanes, which is the entire
        point: compare against ``k`` scalar traversals' edge counts.
    reach:
        The final ``(n, width)`` reach matrix when requested via
        ``record_reach`` (caller owns it; release via
        ``Workspace.release_lanes``), else ``None``.
    """

    sources: np.ndarray
    width: int
    eccentricities: np.ndarray
    visited_counts: np.ndarray | None
    levels: int
    edges_examined: int
    reach: np.ndarray | None = None

    @property
    def lane_count(self) -> int:
        """Number of logical traversals batched into the sweep."""
        return len(self.sources)

    @property
    def lane_occupancy(self) -> float:
        """Fraction of the allocated lane bits actually carrying a source."""
        capacity = self.width * LANE_WIDTH
        return self.lane_count / capacity if capacity else 0.0


def lane_sweep(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    max_level: int | None = None,
    *,
    pool=None,
    marks=None,
    on_level: Callable[[int, np.ndarray, np.ndarray], object] | None = None,
    check: Callable[[], None] | None = None,
    record_counts: bool = False,
    record_reach: bool = False,
) -> LaneSweep:
    """Run one bit-parallel level-synchronous sweep from ``sources``.

    Parameters
    ----------
    graph:
        The CSR graph to traverse.
    sources:
        Lane assignment: lane ``i`` starts from ``sources[i]``
        (duplicates allowed — duplicate lanes simply shadow each
        other). An empty set returns an empty zero-level sweep.
    max_level:
        Level cap; ``None`` runs every lane to exhaustion.
    pool:
        Optional duck-typed :class:`~repro.bfs.kernel.Workspace`
        supplying pooled lane matrices, the arange gather scratch, and
        the claim flag.
    marks:
        ``None`` selects lane mode (per-source first touch via the
        reach matrix). A marks object (``is_visited`` / ``visit``)
        selects merged mode: first touch across ALL sources, read out
        through the shared marks — the exact semantics of
        :meth:`TraversalKernel.levels`. Callers are responsible for
        epoch handling and for pre-marking sources when the merged
        wave must not rediscover them.
    on_level:
        Optional ``callback(depth, fresh_vertices, fresh_words)``
        invoked per level (depth counts from 1, ``fresh_words`` is the
        per-vertex lane-bit matrix of that level). Returning the
        literal ``False`` stops the sweep.
    check:
        Optional per-level hook (deadline enforcement).
    record_counts:
        Compute per-lane visited counts (an ``O(n * k)`` read-out of
        the reach matrix; off by default so wide batches don't pay it).
    record_reach:
        Hand the reach matrix to the caller instead of releasing it.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    k = len(sources)
    n = graph.num_vertices
    if k and (sources.min() < 0 or sources.max() >= n):
        raise AlgorithmError(f"lane sweep source out of range [0, {n})")
    merged = marks is not None
    width, word_idx, bits = _lane_layout(k, merged)
    ecc = np.zeros(k, dtype=np.int64)
    if k == 0:
        return LaneSweep(
            sources=sources,
            width=0,
            eccentricities=ecc,
            visited_counts=np.zeros(0, dtype=np.int64) if record_counts else None,
            levels=0,
            edges_examined=0,
        )

    front = pool.acquire_lanes(width) if pool is not None else np.zeros((n, width), dtype=np.uint64)
    np.bitwise_or.at(front, (sources, word_idx), bits)
    reach = None
    full = None
    if not merged:
        reach = pool.acquire_lanes(width) if pool is not None else np.zeros((n, width), dtype=np.uint64)
        reach[sources] = front[sources]
        full = np.full(width, ~_ZERO, dtype=np.uint64)
        if k % LANE_WIDTH:
            full[-1] = np.uint64((1 << (k % LANE_WIDTH)) - 1)

    indptr, indices = graph.indptr, graph.indices
    frontier = np.unique(sources)
    level = 0
    edges = 0
    # The level loop runs user callbacks (on_level, deadline checks)
    # that may raise mid-level; the try/finally guarantees the pooled
    # lane matrices always go back to the pool (release_lanes itself
    # guards against double releases), closing the leak where an abort
    # stranded a front/reach matrix and the next sweep allocated anew.
    try:
        while len(frontier):
            if max_level is not None and level >= max_level:
                break
            if check is not None:
                check()
            # Discovery: which vertices border the frontier at all. This
            # gather is shared by every lane in the batch.
            neigh, _ = gather_rows(
                indices, indptr[frontier], indptr[frontier + 1], pool=pool
            )
            edges += len(neigh)
            if len(neigh) == 0:
                break
            cand = compact_unique(neigh, n, pool=pool)
            if merged:
                cand = cand[~np.asarray(marks.is_visited(cand), dtype=bool)]
            else:
                cand = cand[(reach[cand] != full).any(axis=1)]  # drop saturated
            if len(cand) == 0:
                break
            # Pull: each candidate ORs its neighbours' frontier lane words.
            vals, lengths = gather_rows(
                indices, indptr[cand], indptr[cand + 1], pool=pool
            )
            edges += len(vals)
            pulled = segmented_or(front[vals], lengths)
            if merged:
                # Every candidate has a frontier neighbour by construction,
                # so all of them are fresh under first-touch semantics.
                fresh, fresh_words = cand, pulled
                marks.visit(fresh)
            else:
                pulled &= ~reach[cand]
                live = np.flatnonzero((pulled != _ZERO).any(axis=1))
                if len(live) == 0:
                    break
                fresh = cand[live]
                fresh_words = pulled[live]
                reach[fresh] |= fresh_words
            front[frontier] = _ZERO
            front[fresh] = fresh_words
            frontier = fresh
            level += 1
            advanced = np.bitwise_or.reduce(fresh_words, axis=0)
            ecc[(advanced[word_idx] & bits) != _ZERO] = level
            if on_level is not None and on_level(level, fresh, fresh_words) is False:
                break
        counts = None
        if record_counts:
            counts = np.zeros(k, dtype=np.int64)
            if merged:
                counts += 1  # sources only; merged read-out lives in the marks
            else:
                for j in range(k):
                    counts[j] = int(
                        ((reach[:, word_idx[j]] & bits[j]) != _ZERO).sum()
                    )
    finally:
        front[frontier] = _ZERO  # pooled buffers go back clean
        if pool is not None:
            pool.release_lanes(front)
            if reach is not None and not record_reach:
                pool.release_lanes(reach)
            stats = getattr(pool, "stats", None)
            if stats is not None:
                stats.edges_examined += edges

    return LaneSweep(
        sources=sources,
        width=width,
        eccentricities=ecc,
        visited_counts=counts,
        levels=level,
        edges_examined=edges,
        reach=reach if record_reach else None,
    )


def lane_distances(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    max_level: int | None = None,
    *,
    pool=None,
    check: Callable[[], None] | None = None,
) -> tuple[np.ndarray, LaneSweep]:
    """Per-source BFS distances for up to a few hundred sources at once.

    Returns ``(dist, sweep)`` where ``dist`` has shape ``(k, n)``
    (``int32``, ``-1`` for unreached) and ``dist[i]`` is the distance
    array of ``sources[i]`` — the read-out the batched SumSweep /
    Takes–Kosters refinement rounds and the batched eccentricity
    spectrum consume. The per-level unpack costs ``O(k * touched)``
    bookkeeping, but the edge gathers remain shared.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    k = len(sources)
    n = graph.num_vertices
    dist = np.full((k, n), -1, dtype=np.int32)
    if k == 0:
        sweep = lane_sweep(graph, sources, max_level, pool=pool, check=check)
        return dist, sweep
    dist[np.arange(k), sources] = 0
    width, word_idx, bits = _lane_layout(k, merged=False)

    def unpack(depth: int, fresh: np.ndarray, fresh_words: np.ndarray) -> None:
        for j in range(k):
            hit = (fresh_words[:, word_idx[j]] & bits[j]) != _ZERO
            if hit.any():
                dist[j, fresh[hit]] = depth

    sweep = lane_sweep(
        graph, sources, max_level, pool=pool, on_level=unpack, check=check
    )
    return dist, sweep
