"""Counter-based visited marks.

F-Diam performs thousands of (partial) BFS traversals per run. Resetting
a boolean ``visited`` array before each of them would cost ``O(n)`` per
traversal — often more than the traversal itself when Winnow/Eliminate
only touch a few vertices. The paper avoids this with a *counter* scheme
(Section 4: "We use a counter rather than a flag to avoid a costly reset
procedure after each BFS traversal"):

* a single ``int64`` array ``marks`` holds, per vertex, the epoch in
  which it was last visited;
* each traversal first bumps a global epoch counter;
* vertex ``v`` counts as visited in the current traversal iff
  ``marks[v] == counter``.

Since the epoch counter is 64-bit it can never realistically wrap, so
the array never needs resetting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VisitMarks"]


class VisitMarks:
    """Shared visited-marks array with epoch-based semantics.

    One instance is created per algorithm run and threaded through every
    BFS/Winnow/Eliminate call, exactly like the ``counter`` parameter in
    the paper's Algorithms 1–5.
    """

    __slots__ = ("marks", "counter")

    def __init__(self, num_vertices: int):
        #: Per-vertex epoch of last visit. Epoch 0 is reserved as
        #: "never visited" because :meth:`new_epoch` starts at 1.
        self.marks = np.zeros(num_vertices, dtype=np.int64)
        #: Current epoch. Only vertices with ``marks == counter`` are
        #: considered visited.
        self.counter = 0

    def new_epoch(self) -> int:
        """Start a new traversal; all vertices become unvisited."""
        self.counter += 1
        return self.counter

    def visit(self, vertices: np.ndarray | int) -> None:
        """Mark ``vertices`` visited in the current epoch."""
        self.marks[vertices] = self.counter

    def is_visited(self, vertices: np.ndarray | int):
        """Visited status (scalar bool or boolean array)."""
        return self.marks[vertices] == self.counter

    def unvisited_mask(self) -> np.ndarray:
        """Boolean mask over all vertices, ``True`` where unvisited."""
        return self.marks != self.counter

    def visited_count(self) -> int:
        """Number of vertices visited in the current epoch."""
        return int(np.count_nonzero(self.marks == self.counter))

    def __len__(self) -> int:
        return len(self.marks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VisitMarks(n={len(self.marks)}, epoch={self.counter})"
