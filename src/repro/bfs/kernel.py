"""The shared traversal kernel every stage, baseline, and benchmark uses.

Every stage of F-Diam — 2-sweep, Winnow, Chain Processing, Eliminate,
the incremental extension, and the main eccentricity loop — ultimately
runs a level-synchronous BFS, as do all of the baseline diameter codes.
Historically each of them hand-rolled its own frontier loop and
allocated fresh scratch arrays per call; this module centralizes the
whole traversal surface behind two objects:

* :class:`Workspace` — per-graph pooled scratch state: the counter-based
  :class:`~repro.bfs.visited.VisitMarks` (the paper's ``counter``
  parameter), the bottom-up frontier flag array, the claim flag used
  for large-set frontier compaction, a cached ``arange`` ramp for the
  edge gathers, a free list of distance buffers, and per-width pools of
  the uint64 lane matrices used by the bit-parallel engine. Pooling
  removes the per-BFS ``O(n)`` allocation cost that the paper's counter
  trick exists to avoid, and records reuse statistics (peak scratch
  bytes, buffer/lane reuse hit rates, lane words allocated) for the
  ``--workspace-stats`` report.

* :class:`TraversalKernel` — a graph-bound facade exposing the full
  traversal surface: direction-optimized full BFS (:meth:`bfs`, paper
  Algorithm 2 / §4.6), level-capped batched multi-source BFS
  (:meth:`levels`, the primitive behind Winnow / Eliminate / the §4.5
  extension), bit-parallel 64-lane multi-source BFS
  (:meth:`levels_batched64`, one shared edge sweep driving up to 64
  logical traversals per machine word — see
  :mod:`repro.bfs.bitparallel`), and the staggered multi-source wave
  (:meth:`staggered_wave`) that Chain Processing injects its anchors
  into. The top-down and bottom-up modules act as direction-step
  strategies invoked by the kernel; an optional deadline is checked at
  every level so even a single huge traversal aborts within one level
  of the budget expiring. With ``batch_lanes > 0`` (the
  ``--bfs-batch-lanes`` switch) the merged :meth:`levels` wave also
  runs on the lane machinery, producing bit-identical level sets while
  exercising the pooled lane matrices.

The single-shot helpers in :mod:`repro.bfs.hybrid` and
:mod:`repro.bfs.partial` remain as thin wrappers that build an
ephemeral kernel, so existing call sites and the engine registry keep
working unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.bfs.bitparallel import LaneSweep, lane_distances, lane_sweep
from repro.bfs.bottomup import bottomup_step
from repro.bfs.instrumentation import BFSTrace, Direction
from repro.bfs.topdown import topdown_step, topdown_step_blocks
from repro.bfs.visited import VisitMarks
from repro.errors import AlgorithmError, BenchmarkTimeout
from repro.graph.csr import CSRGraph

__all__ = [
    "BFSResult",
    "DEFAULT_THRESHOLD",
    "Workspace",
    "WorkspaceStats",
    "TraversalKernel",
]

#: Frontier-size fraction above which the engine goes bottom-up
#: (paper Section 4.6: "We experimentally determined a threshold of 10%
#: of the number of vertices to yield good performance").
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class BFSResult:
    """Outcome of one complete (or level-capped) BFS traversal.

    Attributes
    ----------
    source:
        Starting vertex.
    eccentricity:
        Number of levels that discovered vertices — the eccentricity of
        ``source`` within its connected component (or the depth reached,
        if the traversal was level-capped).
    visited_count:
        Vertices reached, including the source.
    last_frontier:
        The vertices of the deepest non-empty level; ``last_frontier[0]``
        is the paper's choice of "farthest vertex" for the 2-sweep.
    dist:
        Distance array (``-1`` for unreached vertices) if requested via
        ``record_dist``, else ``None``. The array may come from the
        workspace's buffer pool; hand it back via
        :meth:`Workspace.release_dist` once it is no longer needed.
    trace:
        Per-level instrumentation if requested, else ``None``.
    """

    source: int
    eccentricity: int
    visited_count: int
    last_frontier: np.ndarray
    dist: np.ndarray | None = None
    trace: BFSTrace | None = None


@dataclass
class WorkspaceStats:
    """Scratch-buffer accounting of one :class:`Workspace`.

    ``buffer_requests`` counts every time a traversal needed a pooled
    scratch buffer (bottom-up frontier flag, claim flag, arange ramp,
    or distance array); ``buffer_reuses`` counts how many of those were
    served from the pool without allocating. Lane matrices (the
    bit-parallel engine's ``(n, width)`` reach/frontier words) are
    accounted separately: ``lane_requests`` / ``lane_reuses`` mirror the
    generic counters and ``lane_words_allocated`` totals the ``uint64``
    lane words ever allocated. ``peak_scratch_bytes`` is the high-water
    mark of all scratch memory owned by the workspace (visit marks
    included), while ``owned_bytes`` tracks what is *resident* in the
    workspace right now — the singleton flags/ramp plus every pooled
    distance buffer and lane matrix. ``CSRGraph.memory_bytes`` knows
    nothing about this scratch, so ``owned_bytes`` is what the
    ``--workspace-stats`` report adds to the graph's own footprint.
    ``edges_examined`` totals the arcs gathered by every traversal that
    ran on the workspace (top-down, bottom-up, and lane sweeps alike).

    The multiprocess sweep backend charges its shared-memory segments
    here too: ``shm_segments`` counts every segment created on behalf
    of this workspace's kernel (the shared CSR plus one output block
    per round), ``shm_resident`` is what is mapped right now, and
    ``shm_bytes`` is the high-water mark — the shm analog of
    ``peak_scratch_bytes``.

    The compressed-store gather path mirrors the lane counters: when a
    kernel routes expansions through per-block decoding
    (:func:`repro.bfs.topdown.topdown_step_blocks`),
    ``store_block_requests`` / ``store_block_hits`` count the block
    LRU-cache traffic those expansions generated,
    ``store_blocks_decoded`` / ``store_decoded_bytes`` the varint work
    actually done, and ``store_block_evictions`` the cache pressure —
    synced from the store's own :class:`~repro.store.BlockCacheStats`
    after every block-path expansion.
    """

    buffer_requests: int = 0
    buffer_reuses: int = 0
    lane_requests: int = 0
    lane_reuses: int = 0
    lane_words_allocated: int = 0
    allocated_bytes: int = 0
    peak_scratch_bytes: int = 0
    owned_bytes: int = 0
    epochs: int = 0
    edges_examined: int = 0
    shm_segments: int = 0
    shm_bytes: int = 0
    shm_resident: int = 0
    store_block_requests: int = 0
    store_block_hits: int = 0
    store_blocks_decoded: int = 0
    store_decoded_bytes: int = 0
    store_block_evictions: int = 0
    store_redecoded_blocks: int = 0
    store_decode_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of buffer requests served without an allocation."""
        if self.buffer_requests == 0:
            return 0.0
        return self.buffer_reuses / self.buffer_requests

    @property
    def lane_hit_rate(self) -> float:
        """Fraction of lane-matrix requests served without an allocation."""
        if self.lane_requests == 0:
            return 0.0
        return self.lane_reuses / self.lane_requests

    @property
    def store_block_hit_rate(self) -> float:
        """Fraction of store block requests served without a decode."""
        if self.store_block_requests == 0:
            return 0.0
        return self.store_block_hits / self.store_block_requests

    def _record_alloc(self, nbytes: int) -> None:
        self.allocated_bytes += nbytes
        self.peak_scratch_bytes = max(self.peak_scratch_bytes, self.allocated_bytes)

    def _record_free(self, nbytes: int) -> None:
        self.allocated_bytes -= nbytes


class Workspace:
    """Pooled per-graph traversal scratch state.

    One instance is created per algorithm run (F-Diam state, baseline
    context, spectrum computation, ...) and shared by every traversal
    of that run, exactly like the paper threads its ``counter``
    parameter through Algorithms 1–5 — extended here to *all* per-BFS
    scratch, not just the visited marks.
    """

    __slots__ = (
        "num_vertices",
        "marks",
        "stats",
        "_flag",
        "_claim",
        "_arange",
        "_dist_pool",
        "_lane_pool",
    )

    def __init__(self, num_vertices: int, marks: VisitMarks | None = None):
        if marks is not None and len(marks) != num_vertices:
            raise AlgorithmError(
                f"workspace size {num_vertices} does not match marks of "
                f"size {len(marks)}"
            )
        self.num_vertices = num_vertices
        self.stats = WorkspaceStats()
        self.marks = marks if marks is not None else VisitMarks(num_vertices)
        self.stats._record_alloc(self.marks.marks.nbytes)
        #: Lazily allocated boolean frontier flag for bottom-up steps.
        self._flag: np.ndarray | None = None
        #: Lazily allocated all-False claim flag for large-set compaction.
        self._claim: np.ndarray | None = None
        #: Cached monotonically-grown ``0..size-1`` ramp for gathers.
        self._arange: np.ndarray | None = None
        #: Free list of released distance buffers.
        self._dist_pool: list[np.ndarray] = []
        #: Free lists of released lane matrices, keyed by word width.
        self._lane_pool: dict[int, list[np.ndarray]] = {}
        self._sync_owned()

    def owned_bytes(self) -> int:
        """Bytes currently resident in the workspace.

        Visit marks, the singleton flag/claim/ramp buffers, and every
        buffer sitting in the distance and lane pools. Buffers lent out
        to a running traversal are *not* counted (they show up again
        once released); ``stats.allocated_bytes`` covers live-but-lent
        memory and ``stats.peak_scratch_bytes`` its high-water mark.
        """
        total = self.marks.marks.nbytes
        for buf in (self._flag, self._claim, self._arange):
            if buf is not None:
                total += buf.nbytes
        total += sum(d.nbytes for d in self._dist_pool)
        for pool in self._lane_pool.values():
            total += sum(m.nbytes for m in pool)
        return total

    def _sync_owned(self) -> None:
        self.stats.owned_bytes = self.owned_bytes()

    def new_epoch(self) -> int:
        """Start a fresh traversal epoch on the shared marks."""
        self.stats.epochs += 1
        return self.marks.new_epoch()

    def frontier_flag(self) -> np.ndarray:
        """The pooled bottom-up frontier flag (contents unspecified).

        Callers must fully reinitialize it (``flag[:] = False``) before
        use; the bottom-up step does exactly that each level.
        """
        self.stats.buffer_requests += 1
        if self._flag is None:
            self._flag = np.zeros(self.num_vertices, dtype=bool)
            self.stats._record_alloc(self._flag.nbytes)
            self._sync_owned()
        else:
            self.stats.buffer_reuses += 1
        return self._flag

    def claim_flag(self) -> np.ndarray:
        """The pooled claim flag for large-set compaction.

        Contract: the flag is all-``False`` on entry and every user
        must restore it to all-``False`` before returning it (see
        :func:`repro.bfs.frontier.compact_unique`) — unlike
        :meth:`frontier_flag`, which bottom-up steps may leave dirty.
        """
        self.stats.buffer_requests += 1
        if self._claim is None:
            self._claim = np.zeros(self.num_vertices, dtype=bool)
            self.stats._record_alloc(self._claim.nbytes)
            self._sync_owned()
        else:
            self.stats.buffer_reuses += 1
        return self._claim

    def arange(self, total: int) -> np.ndarray:
        """A read-only-by-convention ``0..total-1`` ramp, cached and grown.

        Replaces the per-gather ``np.arange(total)`` allocation in
        :func:`repro.bfs.frontier.gather_rows`: the cached ramp grows
        geometrically and every gather takes a prefix view of it.
        """
        self.stats.buffer_requests += 1
        if self._arange is None or len(self._arange) < total:
            size = max(total, 1024)
            if self._arange is not None:
                size = max(size, 2 * len(self._arange))
                self.stats._record_free(self._arange.nbytes)
            self._arange = np.arange(size, dtype=np.int64)
            self.stats._record_alloc(self._arange.nbytes)
            self._sync_owned()
        else:
            self.stats.buffer_reuses += 1
        return self._arange[:total]

    def acquire_lanes(self, width: int) -> np.ndarray:
        """A zeroed ``(n, width)`` uint64 lane matrix, pooled when possible.

        Lane matrices back the bit-parallel sweeps (per-vertex reach
        and frontier words); hand them back via :meth:`release_lanes`.
        """
        if width < 1:
            raise AlgorithmError(f"lane width must be >= 1, got {width}")
        self.stats.lane_requests += 1
        pool = self._lane_pool.get(width)
        if pool:
            self.stats.lane_reuses += 1
            lanes = pool.pop()
            lanes.fill(0)
            self._sync_owned()
            return lanes
        lanes = np.zeros((self.num_vertices, width), dtype=np.uint64)
        self.stats.lane_words_allocated += self.num_vertices * width
        self.stats._record_alloc(lanes.nbytes)
        return lanes

    def release_lanes(self, lanes: np.ndarray | None) -> None:
        """Return a lane matrix to the pool for reuse.

        Accepts ``None`` and foreign arrays gracefully. Re-releasing a
        matrix that is already pooled is a no-op (the identity guard
        closes the double-free where one buffer could later be handed
        to two concurrent sweeps at once). When the per-width pool is
        at capacity the matrix is dropped and its bytes leave the
        live-allocation accounting.
        """
        if (
            lanes is None
            or lanes.ndim != 2
            or lanes.dtype != np.uint64
            or lanes.shape[0] != self.num_vertices
        ):
            return
        pool = self._lane_pool.setdefault(lanes.shape[1], [])
        if any(entry is lanes for entry in pool):
            return
        if len(pool) < 4:
            pool.append(lanes)
        else:
            self.stats._record_free(lanes.nbytes)
        self._sync_owned()

    def acquire_dist(self) -> np.ndarray:
        """A distance buffer pre-filled with ``-1``, pooled when possible."""
        self.stats.buffer_requests += 1
        if self._dist_pool:
            self.stats.buffer_reuses += 1
            dist = self._dist_pool.pop()
            dist.fill(-1)
            self._sync_owned()
            return dist
        dist = np.full(self.num_vertices, -1, dtype=np.int64)
        self.stats._record_alloc(dist.nbytes)
        return dist

    def release_dist(self, dist: np.ndarray | None) -> None:
        """Return a distance buffer to the pool for reuse.

        Accepts ``None`` and foreign arrays gracefully so callers can
        unconditionally recycle ``result.dist``; re-releasing a pooled
        buffer is a no-op (same double-free guard as
        :meth:`release_lanes`). The pool is capped at a handful of
        buffers; traversal patterns never hold more than two distance
        arrays at once (the midpoint computations), so a larger pool
        would only pin memory — dropped buffers leave the
        live-allocation accounting.
        """
        if (
            dist is None
            or dist.dtype != np.int64
            or len(dist) != self.num_vertices
        ):
            return
        if any(entry is dist for entry in self._dist_pool):
            return
        if len(self._dist_pool) < 4:
            self._dist_pool.append(dist)
        else:
            self.stats._record_free(dist.nbytes)
        self._sync_owned()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(n={self.num_vertices}, epoch={self.marks.counter}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )


class TraversalKernel:
    """Graph-bound traversal facade with a pooled :class:`Workspace`.

    Parameters
    ----------
    graph:
        The graph all traversals of this kernel run on.
    engine:
        Default execution engine for :meth:`bfs`: ``"parallel"``
        (vectorized direction-optimized hybrid) or any other name
        registered with :func:`repro.bfs.eccentricity.register_engine`
        (``"serial"``, ``"batched"``).
    threshold:
        Frontier-size fraction of ``|V|`` at which the hybrid goes
        bottom-up.
    directions:
        ``False`` forces pure top-down in the hybrid.
    workspace:
        Shared scratch state; a private one is created when omitted.
    deadline:
        Optional ``time.perf_counter()`` instant. Every level loop in
        the kernel checks it and raises
        :class:`~repro.errors.BenchmarkTimeout`, so even one huge
        traversal (2-sweep, Winnow, Extend) aborts within a level of
        the budget expiring.
    batch_lanes:
        When positive, the multi-source :meth:`levels` primitive routes
        through the bit-parallel lane-sweep machinery (merged read-out;
        results are identical, the lane words carry seed-group
        diagnostics and the sweeps share the workspace's pooled lane
        matrices). ``0`` (the default) keeps the scalar top-down wave.
    block_gather:
        Policy for the compressed-store gather path, effective only
        when the graph carries an open
        :class:`~repro.store.CompressedCSR` (``.scsr`` loaded with
        ``mmap=True``). ``"auto"`` (the default) asks
        :meth:`~repro.parallel.costmodel.LevelSynchronousCostModel.choose_gather_path`
        per :meth:`levels` expansion — level-capped waves expected to
        touch only a sliver of the graph decode just their frontier's
        blocks, everything else uses the decoded arrays; ``"force"``
        routes every scalar expansion through the blocks (the
        equivalence tests); ``"off"`` never touches the store. Either
        way the results are bit-identical.
    memory_budget:
        Optional byte cap on decoded-block scratch for store-backed
        graphs. With ``memory_mode="auto"`` the cost model's
        :meth:`~repro.parallel.costmodel.LevelSynchronousCostModel.choose_memory_mode`
        resolves it to one of the execution modes below; without a
        backing store the budget is trivially satisfied (the decoded
        arrays already exist) and the kernel stays on ``"decode"``.
    memory_mode:
        Memory-pressure execution mode; ``"auto"`` (default) derives it
        from ``memory_budget``. Resolved values: ``"decode"`` — use
        the decoded arrays (plus the cost-model-routed block path of
        ``block_gather``); ``"cached"`` — route *every* scalar
        expansion through the store's block cache, byte-capped at the
        budget; ``"stream"`` — ditto, but decoded blocks are never
        retained, so decoded scratch is bounded by one frontier's
        blocks. Forcing ``"cached"`` / ``"stream"`` requires a
        store-backed graph. All modes produce bit-identical traversal
        results; only ``edges_examined`` accounting may differ (budget
        modes never run bottom-up steps).
    """

    __slots__ = (
        "graph",
        "engine",
        "threshold",
        "directions",
        "workspace",
        "deadline",
        "batch_lanes",
        "block_gather",
        "memory_budget",
        "memory_mode",
        "_block_store",
        "_store_mark",
    )

    def __init__(
        self,
        graph: CSRGraph,
        *,
        engine: str = "parallel",
        threshold: float = DEFAULT_THRESHOLD,
        directions: bool = True,
        workspace: Workspace | None = None,
        deadline: float | None = None,
        batch_lanes: int = 0,
        block_gather: str = "auto",
        memory_budget: int | None = None,
        memory_mode: str = "auto",
    ):
        self.graph = graph
        self.engine = engine
        self.threshold = threshold
        self.directions = directions
        self.workspace = workspace or Workspace(graph.num_vertices)
        if self.workspace.num_vertices != graph.num_vertices:
            raise AlgorithmError(
                "workspace/graph size mismatch: "
                f"{self.workspace.num_vertices} != {graph.num_vertices}"
            )
        self.deadline = deadline
        if batch_lanes < 0:
            raise AlgorithmError(f"batch_lanes must be >= 0, got {batch_lanes}")
        self.batch_lanes = batch_lanes
        if block_gather not in ("auto", "force", "off"):
            raise AlgorithmError(
                f"block_gather must be 'auto', 'force', or 'off', "
                f"got {block_gather!r}"
            )
        self.block_gather = block_gather
        self._block_store = (
            graph.backing_store if block_gather != "off" else None
        )
        if memory_mode not in ("auto", "decode", "cached", "stream"):
            raise AlgorithmError(
                f"memory_mode must be 'auto', 'decode', 'cached', or "
                f"'stream', got {memory_mode!r}"
            )
        if memory_budget is not None and memory_budget < 0:
            raise AlgorithmError(
                f"memory_budget must be >= 0, got {memory_budget}"
            )
        self.memory_budget = memory_budget
        if memory_mode == "auto":
            if memory_budget is None or self._block_store is None:
                resolved = "decode"
            else:
                from repro.parallel.costmodel import LevelSynchronousCostModel

                decoded = graph.indptr.nbytes + graph.indices.nbytes
                resolved, _ = LevelSynchronousCostModel().choose_memory_mode(
                    decoded_bytes=decoded, budget_bytes=memory_budget
                )
        else:
            resolved = memory_mode
            if resolved in ("cached", "stream") and self._block_store is None:
                raise AlgorithmError(
                    f"memory_mode {resolved!r} requires a store-backed "
                    "graph (a .scsr loaded with mmap=True)"
                )
        self.memory_mode = resolved
        if (
            resolved == "cached"
            and memory_budget is not None
            and self._block_store is not None
        ):
            self._block_store.set_cache_budget(memory_budget)
        if self._block_store is not None:
            st = self._block_store.stats
            self._store_mark = (
                st.block_requests,
                st.block_hits,
                st.blocks_decoded,
                st.decoded_bytes,
                st.evictions,
                st.redecoded_blocks,
                st.decode_seconds,
            )
        else:
            self._store_mark = (0, 0, 0, 0, 0, 0, 0.0)

    # ------------------------------------------------------------------
    # Compressed-store gather path
    # ------------------------------------------------------------------
    def _use_block_gather(
        self, num_sources: int, max_level: int | None
    ) -> bool:
        """Whether this :meth:`levels` expansion should decode blocks."""
        store = self._block_store
        if store is None:
            return False
        if self.block_gather == "force":
            return True
        from repro.parallel.costmodel import LevelSynchronousCostModel

        path, _ = LevelSynchronousCostModel().choose_gather_path(
            num_sources=num_sources,
            max_level=max_level,
            num_vertices=self.graph.num_vertices,
            num_directed_edges=self.graph.num_directed_edges,
        )
        return path == "blocks"

    def _sync_store_stats(self) -> None:
        """Fold the store's decode counters into the workspace stats.

        The store's :class:`~repro.store.BlockCacheStats` are cumulative
        over the store's whole lifetime (other kernels, the CLI, the
        query engine may share it), so only the delta since this
        kernel's last sync is charged here.
        """
        st = self._block_store.stats
        now = (
            st.block_requests,
            st.block_hits,
            st.blocks_decoded,
            st.decoded_bytes,
            st.evictions,
            st.redecoded_blocks,
            st.decode_seconds,
        )
        mark, self._store_mark = self._store_mark, now
        ws = self.workspace.stats
        ws.store_block_requests += now[0] - mark[0]
        ws.store_block_hits += now[1] - mark[1]
        ws.store_blocks_decoded += now[2] - mark[2]
        ws.store_decoded_bytes += now[3] - mark[3]
        ws.store_block_evictions += now[4] - mark[4]
        ws.store_redecoded_blocks += now[5] - mark[5]
        ws.store_decode_seconds += now[6] - mark[6]

    # ------------------------------------------------------------------
    # Deadline
    # ------------------------------------------------------------------
    def check_deadline(self) -> None:
        """Raise :class:`BenchmarkTimeout` once the deadline has passed."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BenchmarkTimeout("traversal kernel exceeded its time budget")

    # ------------------------------------------------------------------
    # Full (or level-capped) single-source BFS
    # ------------------------------------------------------------------
    def bfs(
        self,
        source: int,
        *,
        max_level: int | None = None,
        record_dist: bool = False,
        record_trace: bool = False,
    ) -> BFSResult:
        """One complete (or level-capped) BFS through the configured engine."""
        if self.engine == "parallel":
            return self._hybrid_bfs(
                source,
                max_level=max_level,
                record_dist=record_dist,
                record_trace=record_trace,
            )
        if self.engine == "batched":
            return self._batched_bfs(
                source, max_level=max_level, record_dist=record_dist
            )
        if self.engine == "bitparallel":
            return self._bitparallel_bfs(
                source, max_level=max_level, record_dist=record_dist
            )
        from repro.bfs.eccentricity import get_engine

        return get_engine(self.engine)(
            self.graph,
            source,
            self.workspace.marks,
            max_level=max_level,
            record_dist=record_dist,
        )

    def _hybrid_bfs(
        self,
        source: int,
        *,
        max_level: int | None,
        record_dist: bool,
        record_trace: bool,
    ) -> BFSResult:
        """Direction-optimized BFS (the paper's Algorithm 2 / §4.6)."""
        graph, ws = self.graph, self.workspace
        n = graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
        marks = ws.marks
        ws.new_epoch()
        marks.visit(source)

        dist = ws.acquire_dist() if record_dist else None
        if dist is not None:
            dist[source] = 0
        trace = BFSTrace(source=source) if record_trace else None

        frontier = np.array([source], dtype=np.int64)
        size_threshold = self.threshold * n
        visited = 1
        level = 0
        last_nonempty = frontier
        # Memory-budgeted modes route every expansion through the
        # store's block path (bottom-up needs the full decoded indices,
        # so it is disabled under pressure — the next frontier is
        # identical either way, only the arc accounting differs).
        use_blocks = self.memory_mode in ("cached", "stream")
        retain = self.memory_mode != "stream"

        while len(frontier):
            if max_level is not None and level >= max_level:
                break
            self.check_deadline()
            level += 1
            if use_blocks:
                next_frontier, edges = topdown_step_blocks(
                    self._block_store, frontier, marks, pool=ws, retain=retain
                )
                direction = Direction.TOP_DOWN
            elif self.directions and len(frontier) > size_threshold:
                flag = ws.frontier_flag()
                flag[:] = False
                flag[frontier] = True
                next_frontier, edges = bottomup_step(graph, flag, marks, pool=ws)
                direction = Direction.BOTTOM_UP
            else:
                next_frontier, edges = topdown_step(graph, frontier, marks, pool=ws)
                direction = Direction.TOP_DOWN
            ws.stats.edges_examined += edges
            if trace is not None:
                trace.record(
                    frontier_size=len(frontier),
                    edges_examined=edges,
                    direction=direction,
                    discovered=len(next_frontier),
                )
            if len(next_frontier) == 0:
                level -= 1  # this level discovered nothing
                break
            if dist is not None:
                dist[next_frontier] = level
            visited += len(next_frontier)
            last_nonempty = next_frontier
            frontier = next_frontier

        if use_blocks:
            self._sync_store_stats()
        return BFSResult(
            source=source,
            eccentricity=level,
            visited_count=visited,
            last_frontier=last_nonempty,
            dist=dist,
            trace=trace,
        )

    def _batched_bfs(
        self, source: int, *, max_level: int | None, record_dist: bool
    ) -> BFSResult:
        """Single-source BFS through the batched multi-source machinery.

        A structurally independent engine (one source, the
        :meth:`levels` code path) used by the equivalence tests to
        cross-check the multi-source primitive against the hybrid and
        scalar engines.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
        dist = self.workspace.acquire_dist() if record_dist else None
        if dist is not None:
            dist[source] = 0

        def fill_dist(depth: int, vertices: np.ndarray) -> None:
            if dist is not None:
                dist[vertices] = depth

        levels = self.levels([source], max_level, on_level=fill_dist)
        visited = 1 + sum(len(level) for level in levels)
        last = levels[-1] if levels else np.array([source], dtype=np.int64)
        return BFSResult(
            source=source,
            eccentricity=len(levels),
            visited_count=visited,
            last_frontier=last,
            dist=dist,
            trace=None,
        )

    def _bitparallel_bfs(
        self, source: int, *, max_level: int | None, record_dist: bool
    ) -> BFSResult:
        """Single-source BFS through the bit-parallel lane engine.

        One lane of the 64-lane sweep (see :mod:`repro.bfs.bitparallel`)
        — a third structurally independent code path the equivalence
        tests cross-check against the hybrid and batched engines.
        """
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
        dist = self.workspace.acquire_dist() if record_dist else None
        if dist is not None:
            dist[source] = 0
        visited = 1
        last = np.array([source], dtype=np.int64)

        def on_level(depth: int, fresh: np.ndarray, _words: np.ndarray) -> None:
            nonlocal visited, last
            visited += len(fresh)
            last = fresh
            if dist is not None:
                dist[fresh] = depth

        sweep = lane_sweep(
            self.graph,
            [source],
            max_level,
            pool=self.workspace,
            on_level=on_level,
            check=self.check_deadline,
        )
        return BFSResult(
            source=source,
            eccentricity=sweep.levels,
            visited_count=visited,
            last_frontier=last,
            dist=dist,
            trace=None,
        )

    # ------------------------------------------------------------------
    # Batched multi-source level expansion (Winnow / Eliminate / Extend)
    # ------------------------------------------------------------------
    def levels(
        self,
        sources: Sequence[int] | np.ndarray,
        max_level: int | None,
        *,
        marks: VisitMarks | None = None,
        new_epoch: bool = True,
        mark_sources: bool = True,
        on_level: Callable[[int, np.ndarray], object] | None = None,
    ) -> list[np.ndarray]:
        """Expand up to ``max_level`` BFS levels from a set of sources.

        This is the batched multi-source primitive behind Winnow
        (Algorithm 3), Eliminate (Algorithm 5), and the §4.5 extension
        of eliminated regions: the whole seed set advances as ONE
        level-synchronous wave, so the cost is independent of the
        number of seeds. Expansion runs top-down: pruning frontiers
        are either small (Eliminate) or dominated by first-touch work
        (Winnow), and the paper's Algorithms 3/5 use plain top-down
        worklists as well.

        Parameters
        ----------
        sources:
            One or more starting vertices (deduplicated).
        max_level:
            Number of levels to expand; ``0`` returns immediately and
            ``None`` runs to exhaustion.
        marks:
            Visited-marks override (Winnow passes its persistent
            boolean ball marks); defaults to the workspace marks.
        new_epoch:
            Start a fresh epoch on the marks (disable for persistent
            marks that must survive across calls).
        mark_sources:
            Whether the sources themselves are marked visited (disable
            when resuming from an already-marked frontier).
        on_level:
            Optional ``callback(depth, vertices)`` invoked for each
            discovered level (depth counts from 1). Returning the
            literal ``False`` stops the expansion early — Korf's
            baseline uses this for its active-set early termination.

        Returns
        -------
        list of arrays
            ``result[k]`` holds the vertices first discovered at depth
            ``k + 1`` from the source set; sources are not included.
        """
        n = self.graph.num_vertices
        use_ws_marks = marks is None
        if use_ws_marks:
            marks = self.workspace.marks
        sources = np.unique(np.asarray(sources, dtype=np.int64))
        if len(sources) and (sources[0] < 0 or sources[-1] >= n):
            raise AlgorithmError(f"partial BFS source out of range [0, {n})")
        if new_epoch:
            if use_ws_marks:
                self.workspace.new_epoch()
            else:
                marks.new_epoch()
        if mark_sources:
            marks.visit(sources)

        if self.batch_lanes > 0 and self.memory_mode not in ("cached", "stream"):
            # Lane sweeps run on the decoded arrays; under a memory
            # budget the scalar block path below bounds decoded scratch.
            return self._levels_lanes(
                sources, max_level, marks=marks, on_level=on_level
            )

        budgeted = self.memory_mode in ("cached", "stream")
        use_blocks = budgeted or self._use_block_gather(len(sources), max_level)
        retain = self.memory_mode != "stream"
        levels: list[np.ndarray] = []
        frontier = sources
        level = 0
        while len(frontier):
            if max_level is not None and level >= max_level:
                break
            self.check_deadline()
            if use_blocks:
                next_frontier, edges = topdown_step_blocks(
                    self._block_store,
                    frontier,
                    marks,
                    pool=self.workspace,
                    retain=retain,
                )
            else:
                next_frontier, edges = topdown_step(
                    self.graph, frontier, marks, pool=self.workspace
                )
            self.workspace.stats.edges_examined += edges
            if len(next_frontier) == 0:
                break
            levels.append(next_frontier)
            frontier = next_frontier
            level += 1
            if on_level is not None and on_level(level, next_frontier) is False:
                break
        if use_blocks:
            self._sync_store_stats()
        return levels

    def _levels_lanes(
        self,
        sources: np.ndarray,
        max_level: int | None,
        *,
        marks,
        on_level: Callable[[int, np.ndarray], object] | None,
    ) -> list[np.ndarray]:
        """Merged multi-source expansion on the bit-parallel machinery.

        Level sets are identical to the scalar top-down wave (first
        touch across all sources, read out through the shared marks);
        the sources are spread round-robin over 64 lanes so the sweep
        exercises the lane words and the workspace's pooled lane
        matrices — see :mod:`repro.bfs.bitparallel` (merged mode).
        """
        levels: list[np.ndarray] = []

        def collect(depth: int, fresh: np.ndarray, _words: np.ndarray):
            levels.append(fresh)
            if on_level is not None and on_level(depth, fresh) is False:
                return False
            return None

        lane_sweep(
            self.graph,
            sources,
            max_level,
            pool=self.workspace,
            marks=marks,
            on_level=collect,
            check=self.check_deadline,
        )
        return levels

    def levels_batched64(
        self,
        sources: Sequence[int] | np.ndarray,
        max_level: int | None = None,
        *,
        on_level: Callable[[int, np.ndarray, np.ndarray], object] | None = None,
        record_counts: bool = False,
        record_reach: bool = False,
    ) -> LaneSweep:
        """Bit-parallel multi-source BFS: one sweep, up to 64 lanes per word.

        Lane ``i`` runs an independent logical BFS from ``sources[i]``;
        all lanes share every edge gather of the sweep (the whole point
        — see :mod:`repro.bfs.bitparallel`). Returns the
        :class:`~repro.bfs.bitparallel.LaneSweep` with per-lane
        eccentricities; ``on_level(depth, fresh_vertices, fresh_words)``
        exposes the per-level lane bits for distance-style read-outs.
        Lane matrices come from the kernel workspace's pool and the
        deadline is checked at every level.
        """
        return lane_sweep(
            self.graph,
            np.asarray(sources, dtype=np.int64),
            max_level,
            pool=self.workspace,
            on_level=on_level,
            check=self.check_deadline,
            record_counts=record_counts,
            record_reach=record_reach,
        )

    def distance_batch(
        self,
        sources: Sequence[int] | np.ndarray,
        *,
        max_lanes: int = 256,
    ) -> tuple[np.ndarray, list[LaneSweep]]:
        """Full distance rows for many sources via chunked lane sweeps.

        The bulk primitive behind the batched query engine
        (:mod:`repro.query`): ``sources`` are packed 64 per machine
        word and swept in chunks of at most ``max_lanes``, so ``k``
        distance rows cost ``ceil(k / max_lanes)`` physical gather
        passes instead of ``k`` scalar traversals. Returns the stacked
        ``(k, n)`` ``int32`` distance matrix (``-1`` unreached, row
        ``i`` for ``sources[i]``) plus the per-chunk
        :class:`~repro.bfs.bitparallel.LaneSweep` records, whose
        ``eccentricities`` / ``edges_examined`` fields carry the
        accounting the caller reports.
        """
        if max_lanes <= 0:
            raise AlgorithmError(
                f"max_lanes must be positive, got {max_lanes}"
            )
        sources = np.asarray(sources, dtype=np.int64).ravel()
        n = self.graph.num_vertices
        if len(sources) == 0:
            return np.empty((0, n), dtype=np.int32), []
        rows: list[np.ndarray] = []
        sweeps: list[LaneSweep] = []
        for lo in range(0, len(sources), max_lanes):
            dist, sweep = lane_distances(
                self.graph,
                sources[lo : lo + max_lanes],
                pool=self.workspace,
                check=self.check_deadline,
            )
            rows.append(dist)
            sweeps.append(sweep)
        stacked = rows[0] if len(rows) == 1 else np.concatenate(rows)
        return stacked, sweeps

    # ------------------------------------------------------------------
    # Staggered multi-source wave (Chain Processing)
    # ------------------------------------------------------------------
    def staggered_wave(
        self,
        injections: Mapping[int, Sequence[int] | np.ndarray],
        num_steps: int,
        *,
        marks: VisitMarks | None = None,
        on_discover: Callable[[int, np.ndarray], object] | None = None,
    ) -> int:
        """Multi-source wave with per-step source injection.

        Chain Processing's batched Algorithm 4: the anchor of a
        length-``s`` chain enters the frontier at offset
        ``max_len - s``, so one wave realizes the element-wise minimum
        of all per-chain Eliminate writes (see
        :mod:`repro.core.chain`). ``injections[step]`` seeds new
        sources right before step ``step`` expands; ``on_discover``
        receives every first-touched vertex with its wave depth
        (injected sources at their injection step, expanded vertices
        one past the step that discovered them).

        Returns the number of vertices discovered (injected sources
        included).
        """
        use_ws_marks = marks is None
        if use_ws_marks:
            marks = self.workspace.marks
            self.workspace.new_epoch()
        else:
            marks.new_epoch()
        discovered = 0
        frontier = np.empty(0, dtype=np.int64)
        for step in range(num_steps + 1):
            injected = injections.get(step)
            if injected is not None:
                arr = np.unique(np.asarray(injected, dtype=np.int64))
                fresh = arr[~marks.is_visited(arr)]
                if len(fresh):
                    marks.visit(fresh)
                    discovered += len(fresh)
                    if on_discover is not None:
                        on_discover(step, fresh)
                    frontier = np.concatenate([frontier, fresh])
            if step == num_steps:
                break
            self.check_deadline()
            if len(frontier):
                frontier, edges = topdown_step(
                    self.graph, frontier, marks, pool=self.workspace
                )
                self.workspace.stats.edges_examined += edges
                if len(frontier):
                    discovered += len(frontier)
                    if on_discover is not None:
                        on_discover(step + 1, frontier)
        return discovered

    def sweep_executor(
        self,
        *,
        workers: int = 1,
        batch_lanes: int = 64,
        backend: str = "auto",
        start_method: str | None = None,
    ):
        """A :class:`~repro.parallel.sweep.SweepExecutor` bound to this kernel.

        The preferred way for callers that already hold a kernel
        (spectrum, baselines, query engine) to obtain a dispatcher:
        the executor shares this kernel's workspace — so serial and
        bitparallel rounds keep the pooled buffers and the edge
        accounting, and multiprocess rounds charge their shm segments
        to :class:`WorkspaceStats`. Call-time import: the sweep layer
        sits above the kernel.
        """
        from repro.parallel.sweep import create_executor

        return create_executor(
            self.graph,
            workers=workers,
            batch_lanes=batch_lanes,
            backend=backend,
            kernel=self,
            start_method=start_method,
            memory_budget=self.memory_budget,
        )

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    def ball(
        self, center: int, radius: int, *, include_center: bool = True
    ) -> np.ndarray:
        """All vertices within ``radius`` steps of ``center`` (sorted)."""
        levels = self.levels([center], radius)
        parts = levels + (
            [np.array([center], dtype=np.int64)] if include_center else []
        )
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def eccentricity(self, vertex: int) -> int:
        """Eccentricity of ``vertex`` within its connected component."""
        return self.bfs(vertex).eccentricity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraversalKernel(graph={self.graph.name!r}, engine={self.engine!r}, "
            f"n={self.graph.num_vertices})"
        )
