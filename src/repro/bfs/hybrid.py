"""Direction-optimized BFS traversal (the paper's workhorse).

Implements the full level-synchronous BFS of the paper's Algorithm 2 and
Section 4.6: start top-down; once the worklist exceeds a threshold
(default 10 % of ``|V|``, the value the paper determined experimentally)
switch to bottom-up; switch back to top-down when the frontier shrinks
below the threshold again, "in line with the latest direction-optimized
BFS implementations".

The traversal doubles as the eccentricity primitive: the number of
levels that discover at least one vertex *is* the source's eccentricity
within its connected component (Algorithm 2 returns ``level - 1``).

The level loop itself lives in :class:`repro.bfs.kernel.TraversalKernel`
(the shared kernel every stage and baseline routes through);
:func:`run_bfs` is the single-shot convenience wrapper that builds an
ephemeral kernel around the caller's marks. Long-running callers should
hold a kernel directly so the pooled workspace buffers get reused.
"""

from __future__ import annotations

from repro.bfs.kernel import (
    DEFAULT_THRESHOLD,
    BFSResult,
    TraversalKernel,
    Workspace,
)
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["BFSResult", "run_bfs", "DEFAULT_THRESHOLD"]


def run_bfs(
    graph: CSRGraph,
    source: int,
    marks: VisitMarks | None = None,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    directions: bool = True,
    max_level: int | None = None,
    record_dist: bool = False,
    record_trace: bool = False,
) -> BFSResult:
    """Run a direction-optimized BFS from ``source``.

    Parameters
    ----------
    graph:
        Graph to traverse.
    source:
        Starting vertex id.
    marks:
        Shared visited marks; a fresh epoch is started on them. A
        private instance is created when omitted.
    threshold:
        Frontier-size fraction of ``|V|`` at which to run bottom-up.
    directions:
        Set ``False`` to force pure top-down (used by tests and by the
        serial-engine comparison).
    max_level:
        Stop after this many levels (partial BFS). ``None`` runs to
        exhaustion.
    record_dist:
        Fill and return a per-vertex distance array.
    record_trace:
        Collect a :class:`~repro.bfs.instrumentation.BFSTrace`.

    Returns
    -------
    BFSResult
    """
    kernel = TraversalKernel(
        graph,
        threshold=threshold,
        directions=directions,
        workspace=Workspace(graph.num_vertices, marks=marks),
    )
    return kernel.bfs(
        source,
        max_level=max_level,
        record_dist=record_dist,
        record_trace=record_trace,
    )
