"""Direction-optimized BFS traversal (the paper's workhorse).

Implements the full level-synchronous BFS of the paper's Algorithm 2 and
Section 4.6: start top-down; once the worklist exceeds a threshold
(default 10 % of ``|V|``, the value the paper determined experimentally)
switch to bottom-up; switch back to top-down when the frontier shrinks
below the threshold again, "in line with the latest direction-optimized
BFS implementations".

The traversal doubles as the eccentricity primitive: the number of
levels that discover at least one vertex *is* the source's eccentricity
within its connected component (Algorithm 2 returns ``level - 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.bottomup import bottomup_step
from repro.bfs.instrumentation import BFSTrace, Direction
from repro.bfs.topdown import topdown_step
from repro.bfs.visited import VisitMarks
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["BFSResult", "run_bfs", "DEFAULT_THRESHOLD"]

#: Frontier-size fraction above which the engine goes bottom-up
#: (paper Section 4.6: "We experimentally determined a threshold of 10%
#: of the number of vertices to yield good performance").
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class BFSResult:
    """Outcome of one complete (or level-capped) BFS traversal.

    Attributes
    ----------
    source:
        Starting vertex.
    eccentricity:
        Number of levels that discovered vertices — the eccentricity of
        ``source`` within its connected component (or the depth reached,
        if the traversal was level-capped).
    visited_count:
        Vertices reached, including the source.
    last_frontier:
        The vertices of the deepest non-empty level; ``last_frontier[0]``
        is the paper's choice of "farthest vertex" for the 2-sweep.
    dist:
        Distance array (``-1`` for unreached vertices) if requested via
        ``record_dist``, else ``None``.
    trace:
        Per-level instrumentation if requested, else ``None``.
    """

    source: int
    eccentricity: int
    visited_count: int
    last_frontier: np.ndarray
    dist: np.ndarray | None = None
    trace: BFSTrace | None = None


def run_bfs(
    graph: CSRGraph,
    source: int,
    marks: VisitMarks | None = None,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    directions: bool = True,
    max_level: int | None = None,
    record_dist: bool = False,
    record_trace: bool = False,
) -> BFSResult:
    """Run a direction-optimized BFS from ``source``.

    Parameters
    ----------
    graph:
        Graph to traverse.
    source:
        Starting vertex id.
    marks:
        Shared visited marks; a fresh epoch is started on them. A
        private instance is created when omitted.
    threshold:
        Frontier-size fraction of ``|V|`` at which to run bottom-up.
    directions:
        Set ``False`` to force pure top-down (used by tests and by the
        serial-engine comparison).
    max_level:
        Stop after this many levels (partial BFS). ``None`` runs to
        exhaustion.
    record_dist:
        Fill and return a per-vertex distance array.
    record_trace:
        Collect a :class:`~repro.bfs.instrumentation.BFSTrace`.

    Returns
    -------
    BFSResult
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
    if marks is None:
        marks = VisitMarks(n)
    marks.new_epoch()
    marks.visit(source)

    dist = np.full(n, -1, dtype=np.int64) if record_dist else None
    if dist is not None:
        dist[source] = 0
    trace = BFSTrace(source=source) if record_trace else None

    frontier = np.array([source], dtype=np.int64)
    frontier_flag = np.zeros(n, dtype=bool) if directions else None
    size_threshold = threshold * n
    visited = 1
    level = 0
    last_nonempty = frontier

    while len(frontier):
        if max_level is not None and level >= max_level:
            break
        level += 1
        if directions and len(frontier) > size_threshold:
            frontier_flag[:] = False
            frontier_flag[frontier] = True
            next_frontier, edges = bottomup_step(graph, frontier_flag, marks)
            direction = Direction.BOTTOM_UP
        else:
            next_frontier, edges = topdown_step(graph, frontier, marks)
            direction = Direction.TOP_DOWN
        if trace is not None:
            trace.record(
                frontier_size=len(frontier),
                edges_examined=edges,
                direction=direction,
                discovered=len(next_frontier),
            )
        if len(next_frontier) == 0:
            level -= 1  # this level discovered nothing
            break
        if dist is not None:
            dist[next_frontier] = level
        visited += len(next_frontier)
        last_nonempty = next_frontier
        frontier = next_frontier

    return BFSResult(
        source=source,
        eccentricity=level,
        visited_count=visited,
        last_frontier=last_nonempty,
        dist=dist,
        trace=trace,
    )
