"""Vectorized frontier primitives shared by all BFS engines.

The paper's parallel BFS distributes the current worklist across OpenMP
threads, each of which scans its chunk's adjacency lists and atomically
claims unvisited neighbours. In this reproduction the same per-level
data-parallel work is expressed as whole-frontier NumPy array operations
(the "vectorize the inner loop" idiom from the scientific-Python
optimization guide): a level's entire neighbour gather, visited filter,
and deduplication run as a handful of compiled array kernels instead of
a thread team. The amount and order of algorithmic work per level is
identical; only the execution vehicle differs.

The two primitives here are:

* :func:`gather_neighbors` — concatenate the adjacency lists of every
  frontier vertex (the "scan my chunk's edges" step).
* :func:`row_any` — per-row boolean reduction over a gathered range
  (the bottom-up "does any of my neighbours sit on the frontier?" test).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["gather_neighbors", "gather_rows", "row_any", "frontier_edge_count"]


def gather_rows(
    indices: np.ndarray, starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``indices[starts[i]:stops[i]]`` for all rows ``i``.

    Returns ``(values, lengths)`` where ``values`` is the concatenation
    and ``lengths[i] = stops[i] - starts[i]``. The flat gather index is
    built with ``repeat``/``cumsum`` arithmetic so the whole operation is
    ``O(total)`` compiled work with no Python-level loop, including for
    empty rows.
    """
    lengths = (stops - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    prefix = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - prefix, lengths)
    return indices[flat].astype(np.int64), lengths


def gather_neighbors(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All neighbours of the frontier vertices, concatenated (with repeats)."""
    values, _ = gather_rows(
        graph.indices, graph.indptr[frontier], graph.indptr[frontier + 1]
    )
    return values


def row_any(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-row "any true" over a flat boolean array segmented by ``lengths``.

    Implemented with a cumulative sum and segment differencing rather
    than ``np.logical_or.reduceat`` because ``reduceat`` mishandles
    zero-length segments (it returns the element *at* the segment start
    instead of the reduction identity).
    """
    cum = np.concatenate(([0], np.cumsum(values.astype(np.int64))))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return (cum[ends] - cum[starts]) > 0


def frontier_edge_count(graph: CSRGraph, frontier: np.ndarray) -> int:
    """Number of arcs leaving the frontier (work metric for cost models)."""
    return int((graph.indptr[frontier + 1] - graph.indptr[frontier]).sum())
