"""Vectorized frontier primitives shared by all BFS engines.

The paper's parallel BFS distributes the current worklist across OpenMP
threads, each of which scans its chunk's adjacency lists and atomically
claims unvisited neighbours. In this reproduction the same per-level
data-parallel work is expressed as whole-frontier NumPy array operations
(the "vectorize the inner loop" idiom from the scientific-Python
optimization guide): a level's entire neighbour gather, visited filter,
and deduplication run as a handful of compiled array kernels instead of
a thread team. The amount and order of algorithmic work per level is
identical; only the execution vehicle differs.

The primitives here are:

* :func:`gather_rows` / :func:`gather_neighbors` — concatenate the
  adjacency lists of every frontier vertex (the "scan my chunk's edges"
  step). Both accept an optional ``pool`` (duck-typed
  :class:`~repro.bfs.kernel.Workspace`) whose cached ``arange`` scratch
  replaces the per-level ``np.arange(total)`` allocation.
* :func:`row_any` — per-row boolean reduction over a gathered range
  (the bottom-up "does any of my neighbours sit on the frontier?" test).
* :func:`compact_unique` — sorted deduplication of a fresh-neighbour
  set: a sort for small sets, claim-via-flag-array plus
  ``np.flatnonzero`` compaction for large ones (the vectorized analog
  of the paper's atomic claim, cheaper than an ``O(f log f)`` sort once
  the fresh set is a sizable fraction of ``|V|``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "gather_neighbors",
    "gather_rows",
    "row_any",
    "compact_unique",
    "frontier_edge_count",
]

#: Fresh sets larger than this fraction of ``|V|`` are deduplicated by
#: claim + ``flatnonzero`` compaction instead of ``np.unique``'s sort:
#: the flag scan costs ``O(n)`` while the sort costs ``O(f log f)``, so
#: the crossover sits at a constant fraction of ``n``.
CLAIM_FRACTION = 0.125


def gather_rows(
    indices: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    *,
    pool=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``indices[starts[i]:stops[i]]`` for all rows ``i``.

    Returns ``(values, lengths)`` where ``values`` is the concatenation
    and ``lengths[i] = stops[i] - starts[i]``. The flat gather index is
    built with ``repeat``/``cumsum`` arithmetic so the whole operation is
    ``O(total)`` compiled work with no Python-level loop, including for
    empty rows.

    ``pool`` (any object with an ``arange(total)`` method, normally a
    :class:`~repro.bfs.kernel.Workspace`) supplies the ``0..total-1``
    base ramp from a cached scratch buffer instead of allocating a
    fresh ``np.arange`` per call; the scratch is only read.
    """
    lengths = (stops - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    prefix = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    base = pool.arange(total) if pool is not None else np.arange(total, dtype=np.int64)
    flat = base + np.repeat(starts - prefix, lengths)
    return indices[flat].astype(np.int64), lengths


def gather_neighbors(
    graph: CSRGraph, frontier: np.ndarray, *, pool=None
) -> np.ndarray:
    """All neighbours of the frontier vertices, concatenated (with repeats)."""
    values, _ = gather_rows(
        graph.indices,
        graph.indptr[frontier],
        graph.indptr[frontier + 1],
        pool=pool,
    )
    return values


def row_any(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-row "any true" over a flat boolean array segmented by ``lengths``.

    Implemented with a cumulative sum and segment differencing rather
    than ``np.logical_or.reduceat`` because ``reduceat`` mishandles
    zero-length segments (it returns the element *at* the segment start
    instead of the reduction identity).
    """
    cum = np.concatenate(([0], np.cumsum(values.astype(np.int64))))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return (cum[ends] - cum[starts]) > 0


def compact_unique(
    values: np.ndarray, num_vertices: int, *, pool=None
) -> np.ndarray:
    """Sorted unique vertex ids of ``values`` (all in ``[0, num_vertices)``).

    Small sets go through ``np.unique`` (a sort). Sets larger than
    ``CLAIM_FRACTION * num_vertices`` are claimed into a boolean flag
    array and compacted with ``np.flatnonzero`` — ``O(n)`` instead of
    ``O(f log f)``, which wins exactly when the fresh set is large. The
    flag comes from ``pool.claim_flag()`` when a pool is given (it must
    be all-``False`` on entry and is restored to all-``False`` before
    returning, so one pooled buffer serves every level of every
    traversal).
    """
    if len(values) < max(64, int(num_vertices * CLAIM_FRACTION)):
        return np.unique(values)
    flag = pool.claim_flag() if pool is not None else np.zeros(num_vertices, dtype=bool)
    try:
        flag[values] = True
        out = np.flatnonzero(flag)
        flag[out] = False  # restore the all-False contract
    except BaseException:
        # A compaction dying mid-way (out-of-memory, interrupt) must not
        # hand a dirty pooled claim flag to the next large-set
        # compaction; the full clear only runs on this cold path.
        flag[:] = False
        raise
    return out


def frontier_edge_count(graph: CSRGraph, frontier: np.ndarray) -> int:
    """Number of arcs leaving the frontier (work metric for cost models)."""
    return int((graph.indptr[frontier + 1] - graph.indptr[frontier]).sum())
