"""Partial and multi-source BFS traversals.

These are the traversal shapes behind F-Diam's pruning machinery:

* **Winnow** (Algorithm 3) is a single-source partial BFS capped at
  ``⌊bound/2⌋`` levels that collects everything it reaches.
* **Eliminate** (Algorithm 5) is a single-source partial BFS capped at
  ``bound − ecc`` levels whose per-level sets receive eccentricity
  upper bounds.
* **Extension of eliminated regions** (Section 4.5) is a *multi-source*
  partial BFS seeded with every vertex whose recorded bound equals the
  old diameter bound, run for ``new_bound − old_bound`` levels.

All three reduce to :func:`partial_bfs_levels`, which returns the
discovered vertices level by level so callers can attach per-level
metadata. Traversals run top-down: pruning frontiers are either small
(Eliminate) or their cost is dominated by first-touch work (Winnow), and
the paper's Algorithm 3/5 use plain top-down worklists as well.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bfs.topdown import topdown_step
from repro.bfs.visited import VisitMarks
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["partial_bfs_levels", "ball"]


def partial_bfs_levels(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    max_level: int | None,
    marks: VisitMarks | None = None,
    *,
    mark_sources: bool = True,
) -> list[np.ndarray]:
    """Expand up to ``max_level`` BFS levels from a set of sources.

    Parameters
    ----------
    graph:
        Graph to traverse.
    sources:
        One or more starting vertices (deduplicated).
    max_level:
        Number of levels to expand; ``0`` returns immediately and
        ``None`` runs to exhaustion.
    marks:
        Shared visited marks; a fresh epoch is started. A private
        instance is created when omitted.
    mark_sources:
        Whether the sources themselves are marked visited (always true
        for the callers here; exposed for tests).

    Returns
    -------
    list of arrays
        ``result[k]`` holds the vertices first discovered at level
        ``k + 1`` (i.e. at distance ``k + 1`` from the source set).
        The sources themselves are not included.
    """
    n = graph.num_vertices
    sources = np.unique(np.asarray(sources, dtype=np.int64))
    if len(sources) and (sources[0] < 0 or sources[-1] >= n):
        raise AlgorithmError(f"partial BFS source out of range [0, {n})")
    if marks is None:
        marks = VisitMarks(n)
    marks.new_epoch()
    if mark_sources:
        marks.visit(sources)

    levels: list[np.ndarray] = []
    frontier = sources
    level = 0
    while len(frontier):
        if max_level is not None and level >= max_level:
            break
        next_frontier, _ = topdown_step(graph, frontier, marks)
        if len(next_frontier) == 0:
            break
        levels.append(next_frontier)
        frontier = next_frontier
        level += 1
    return levels


def ball(
    graph: CSRGraph,
    center: int,
    radius: int,
    marks: VisitMarks | None = None,
    *,
    include_center: bool = True,
) -> np.ndarray:
    """All vertices within ``radius`` steps of ``center`` (sorted).

    This is the region Winnow removes (with ``radius = ⌊bound/2⌋``) and
    the region Chain Processing removes around a chain anchor. Also used
    by the property-based tests to verify the safety theorems directly.
    """
    levels = partial_bfs_levels(graph, [center], radius, marks)
    parts = levels + ([np.array([center], dtype=np.int64)] if include_center else [])
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))
