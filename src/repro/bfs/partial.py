"""Partial and multi-source BFS traversals.

These are the traversal shapes behind F-Diam's pruning machinery:

* **Winnow** (Algorithm 3) is a single-source partial BFS capped at
  ``⌊bound/2⌋`` levels that collects everything it reaches.
* **Eliminate** (Algorithm 5) is a single-source partial BFS capped at
  ``bound − ecc`` levels whose per-level sets receive eccentricity
  upper bounds.
* **Extension of eliminated regions** (Section 4.5) is a *multi-source*
  partial BFS seeded with every vertex whose recorded bound equals the
  old diameter bound, run for ``new_bound − old_bound`` levels.

All three reduce to the batched multi-source primitive
:meth:`repro.bfs.kernel.TraversalKernel.levels`; the functions here are
single-shot wrappers around an ephemeral kernel for callers that don't
hold one (the stages in :mod:`repro.core` route through the run state's
pooled kernel instead).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bfs.kernel import TraversalKernel, Workspace
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["partial_bfs_levels", "ball"]


def partial_bfs_levels(
    graph: CSRGraph,
    sources: Sequence[int] | np.ndarray,
    max_level: int | None,
    marks: VisitMarks | None = None,
    *,
    mark_sources: bool = True,
) -> list[np.ndarray]:
    """Expand up to ``max_level`` BFS levels from a set of sources.

    Parameters
    ----------
    graph:
        Graph to traverse.
    sources:
        One or more starting vertices (deduplicated).
    max_level:
        Number of levels to expand; ``0`` returns immediately and
        ``None`` runs to exhaustion.
    marks:
        Shared visited marks; a fresh epoch is started. A private
        instance is created when omitted.
    mark_sources:
        Whether the sources themselves are marked visited (always true
        for the callers here; exposed for tests).

    Returns
    -------
    list of arrays
        ``result[k]`` holds the vertices first discovered at level
        ``k + 1`` (i.e. at distance ``k + 1`` from the source set).
        The sources themselves are not included.
    """
    kernel = TraversalKernel(
        graph, workspace=Workspace(graph.num_vertices, marks=marks)
    )
    return kernel.levels(sources, max_level, mark_sources=mark_sources)


def ball(
    graph: CSRGraph,
    center: int,
    radius: int,
    marks: VisitMarks | None = None,
    *,
    include_center: bool = True,
) -> np.ndarray:
    """All vertices within ``radius`` steps of ``center`` (sorted).

    This is the region Winnow removes (with ``radius = ⌊bound/2⌋``) and
    the region Chain Processing removes around a chain anchor. Also used
    by the property-based tests to verify the safety theorems directly.
    """
    kernel = TraversalKernel(
        graph, workspace=Workspace(graph.num_vertices, marks=marks)
    )
    return kernel.ball(center, radius, include_center=include_center)
