"""Instrumentation for BFS traversals.

The paper's evaluation reports several traversal-level quantities:
Table 3 counts BFS traversals per algorithm, Section 6.2 reasons about
frontier sizes and direction switches, and the parallel cost model
(Figure 7) needs per-level frontier/edge traces. All of that is captured
here. Instrumentation is opt-in and adds only a few scalar appends per
level, so it is cheap enough to leave enabled in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Direction", "LevelTrace", "BFSTrace", "TraversalCounter"]


class Direction(str, Enum):
    """Which direction a level-synchronous BFS step executed in."""

    TOP_DOWN = "top-down"
    BOTTOM_UP = "bottom-up"


@dataclass(frozen=True)
class LevelTrace:
    """Measurements of a single BFS level.

    Attributes
    ----------
    level:
        1-based level index (level ``k`` discovers vertices at distance
        ``k`` from the source set).
    frontier_size:
        Number of vertices on the input frontier of this step.
    edges_examined:
        Arcs scanned while expanding this level. For top-down steps this
        is the out-degree sum of the frontier; for bottom-up steps it is
        the number of arcs of unvisited vertices that were inspected
        before each one found a frontier neighbour (or exhausted its
        list), matching the paper's "wasted work" discussion.
    direction:
        Whether the step ran top-down or bottom-up.
    discovered:
        Number of new vertices discovered by this step.
    """

    level: int
    frontier_size: int
    edges_examined: int
    direction: Direction
    discovered: int


@dataclass
class BFSTrace:
    """Complete per-level trace of one BFS traversal."""

    source: int
    levels: list[LevelTrace] = field(default_factory=list)

    def record(
        self,
        frontier_size: int,
        edges_examined: int,
        direction: Direction,
        discovered: int,
    ) -> None:
        """Append one level's measurements."""
        self.levels.append(
            LevelTrace(
                level=len(self.levels) + 1,
                frontier_size=frontier_size,
                edges_examined=edges_examined,
                direction=direction,
                discovered=discovered,
            )
        )

    @property
    def eccentricity(self) -> int:
        """Levels that discovered at least one vertex."""
        return sum(1 for lv in self.levels if lv.discovered > 0)

    @property
    def total_edges_examined(self) -> int:
        """Total arcs scanned by the traversal."""
        return sum(lv.edges_examined for lv in self.levels)

    @property
    def total_discovered(self) -> int:
        """Vertices discovered, excluding the source set."""
        return sum(lv.discovered for lv in self.levels)

    @property
    def num_direction_switches(self) -> int:
        """How many times the hybrid engine changed direction."""
        return sum(
            1
            for a, b in zip(self.levels, self.levels[1:])
            if a.direction != b.direction
        )

    def frontier_sizes(self) -> list[int]:
        """Frontier size per level (input of the parallel cost model)."""
        return [lv.frontier_size for lv in self.levels]

    def edge_counts(self) -> list[int]:
        """Edges examined per level (input of the parallel cost model)."""
        return [lv.edges_examined for lv in self.levels]


@dataclass
class TraversalCounter:
    """Counts BFS traversals using the paper's Table 3 convention.

    "We count a BFS traversal as either the computation of the
    eccentricity of a vertex or the use of the Winnow function. ...
    the Eliminate function typically only traverses a small portion of
    the graph, so we do not count it."
    """

    eccentricity_calls: int = 0
    winnow_calls: int = 0
    eliminate_calls: int = 0  # tracked but excluded from the headline count
    traces: list[BFSTrace] = field(default_factory=list)
    keep_traces: bool = False

    @property
    def bfs_traversals(self) -> int:
        """The paper's headline BFS-traversal count."""
        return self.eccentricity_calls + self.winnow_calls

    def count_eccentricity(self, trace: BFSTrace | None = None) -> None:
        """Record one eccentricity-computing BFS."""
        self.eccentricity_calls += 1
        if trace is not None and self.keep_traces:
            self.traces.append(trace)

    def count_winnow(self) -> None:
        """Record one Winnow partial BFS."""
        self.winnow_calls += 1

    def count_eliminate(self) -> None:
        """Record one Eliminate partial BFS (not in the headline count)."""
        self.eliminate_calls += 1
