"""Level-synchronous BFS engines.

The traversal surface is unified behind
:class:`~repro.bfs.kernel.TraversalKernel` (full direction-optimized
BFS, batched multi-source level expansion, bit-parallel 64-lane
multi-source sweeps, staggered waves) with a pooled
:class:`~repro.bfs.kernel.Workspace` of scratch buffers. The
single-shot helpers (:func:`run_bfs`, :func:`partial_bfs_levels`,
:func:`ball`), the counter-based visited marks (:class:`VisitMarks`),
the scalar reference engine (:func:`serial_bfs`), the open engine
registry (:func:`register_engine` / :func:`get_engine`), and traversal
instrumentation all build on it.
"""

from repro.bfs.bitparallel import (
    LANE_WIDTH,
    LaneSweep,
    lane_distances,
    lane_sweep,
    segmented_or,
)
from repro.bfs.bottomup import bottomup_step
from repro.bfs.eccentricity import (
    Engine,
    all_eccentricities,
    available_engines,
    eccentricity,
    get_engine,
    register_engine,
)
from repro.bfs.frontier import (
    compact_unique,
    frontier_edge_count,
    gather_neighbors,
    gather_rows,
    row_any,
)
from repro.bfs.hybrid import DEFAULT_THRESHOLD, BFSResult, run_bfs
from repro.bfs.instrumentation import (
    BFSTrace,
    Direction,
    LevelTrace,
    TraversalCounter,
)
from repro.bfs.kernel import TraversalKernel, Workspace, WorkspaceStats
from repro.bfs.partial import ball, partial_bfs_levels
from repro.bfs.reference import serial_bfs, serial_distances
from repro.bfs.topdown import topdown_step
from repro.bfs.visited import VisitMarks

__all__ = [
    "BFSResult",
    "BFSTrace",
    "DEFAULT_THRESHOLD",
    "Direction",
    "Engine",
    "LANE_WIDTH",
    "LaneSweep",
    "LevelTrace",
    "TraversalCounter",
    "TraversalKernel",
    "VisitMarks",
    "Workspace",
    "WorkspaceStats",
    "all_eccentricities",
    "available_engines",
    "ball",
    "bottomup_step",
    "compact_unique",
    "eccentricity",
    "frontier_edge_count",
    "gather_neighbors",
    "gather_rows",
    "get_engine",
    "lane_distances",
    "lane_sweep",
    "partial_bfs_levels",
    "register_engine",
    "row_any",
    "segmented_or",
    "run_bfs",
    "serial_bfs",
    "serial_distances",
    "topdown_step",
]
