"""Level-synchronous BFS engines.

Contains the direction-optimized hybrid traversal the paper builds
F-Diam on (:func:`run_bfs`), the partial/multi-source traversals behind
Winnow/Eliminate (:func:`partial_bfs_levels`, :func:`ball`), the
counter-based visited marks (:class:`VisitMarks`), the scalar reference
engine (:func:`serial_bfs`), and traversal instrumentation.
"""

from repro.bfs.bottomup import bottomup_step
from repro.bfs.eccentricity import (
    Engine,
    all_eccentricities,
    eccentricity,
    get_engine,
)
from repro.bfs.frontier import (
    frontier_edge_count,
    gather_neighbors,
    gather_rows,
    row_any,
)
from repro.bfs.hybrid import DEFAULT_THRESHOLD, BFSResult, run_bfs
from repro.bfs.instrumentation import (
    BFSTrace,
    Direction,
    LevelTrace,
    TraversalCounter,
)
from repro.bfs.partial import ball, partial_bfs_levels
from repro.bfs.reference import serial_bfs, serial_distances
from repro.bfs.topdown import topdown_step
from repro.bfs.visited import VisitMarks

__all__ = [
    "BFSResult",
    "BFSTrace",
    "DEFAULT_THRESHOLD",
    "Direction",
    "Engine",
    "LevelTrace",
    "TraversalCounter",
    "VisitMarks",
    "all_eccentricities",
    "ball",
    "bottomup_step",
    "eccentricity",
    "frontier_edge_count",
    "gather_neighbors",
    "gather_rows",
    "get_engine",
    "partial_bfs_levels",
    "row_any",
    "run_bfs",
    "serial_bfs",
    "serial_distances",
    "topdown_step",
]
