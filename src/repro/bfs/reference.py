"""Pure-Python serial BFS — the reference and "serial engine".

Two roles:

1. **Correctness oracle.** The vectorized engines are cross-checked
   against this straightforward deque implementation in the test suite.
2. **The serial F-Diam engine.** The paper evaluates both a serial and
   a parallel (OpenMP) implementation of F-Diam. In this reproduction,
   "F-Diam (ser)" runs its BFS levels through this scalar per-edge loop,
   while "F-Diam (par)" runs them through the vectorized kernels in
   :mod:`repro.bfs.hybrid` — the same serial-vs-data-parallel split as
   the paper's two codes, on a substrate where "parallel" means
   compiled whole-frontier array operations (see DESIGN.md §2).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.bfs.hybrid import BFSResult
from repro.bfs.visited import VisitMarks
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["serial_bfs", "serial_distances"]


def serial_bfs(
    graph: CSRGraph,
    source: int,
    marks: VisitMarks | None = None,
    *,
    max_level: int | None = None,
    record_dist: bool = False,
) -> BFSResult:
    """Level-synchronous BFS with a scalar Python inner loop.

    Semantically identical to :func:`repro.bfs.hybrid.run_bfs` (same
    result fields, same counter-based visited marks), just executed one
    edge at a time.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
    if marks is None:
        marks = VisitMarks(n)
    counter = marks.new_epoch()
    mark_arr = marks.marks
    mark_arr[source] = counter

    dist = np.full(n, -1, dtype=np.int64) if record_dist else None
    if dist is not None:
        dist[source] = 0

    # Native-list adjacency and marks: element-wise NumPy indexing boxes
    # every value, which dominates a scalar BFS loop.
    adj = graph.adjacency_lists()
    marks_list = mark_arr.tolist()
    marks_list[source] = counter
    frontier = [source]
    visited = 1
    level = 0
    last_nonempty = frontier

    while frontier:
        if max_level is not None and level >= max_level:
            break
        next_frontier: list[int] = []
        append = next_frontier.append
        for v in frontier:
            for w in adj[v]:
                if marks_list[w] != counter:
                    marks_list[w] = counter
                    append(w)
        if not next_frontier:
            break
        level += 1
        if dist is not None:
            for w in next_frontier:
                dist[w] = level
        visited += len(next_frontier)
        last_nonempty = next_frontier
        frontier = next_frontier

    return BFSResult(
        source=source,
        eccentricity=level,
        visited_count=visited,
        last_frontier=np.asarray(sorted(last_nonempty), dtype=np.int64),
        dist=dist,
        trace=None,
    )


def serial_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Distance array from ``source`` via a plain deque BFS.

    Independent of the level-synchronous machinery above — used as a
    second, structurally different oracle in tests.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"BFS source {source} out of range [0, {n})")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    indptr, indices = graph.indptr, graph.indices
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if dist[w] < 0:
                dist[w] = dv + 1
                queue.append(w)
    return dist
