"""Top-down level-synchronous BFS step (vectorized).

This is the "conventional data-driven top-down BFS" of the paper's
Section 4.6: each level expands the current worklist by scanning the
adjacency lists of its vertices and claiming unvisited neighbours. The
paper's threads claim neighbours with atomic compare-and-swap; here the
claim is a vectorized visited-filter plus ``np.unique`` deduplication,
which produces exactly the same next frontier.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.frontier import gather_neighbors
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["topdown_step"]


def topdown_step(
    graph: CSRGraph, frontier: np.ndarray, marks: VisitMarks
) -> tuple[np.ndarray, int]:
    """Expand one BFS level top-down.

    Parameters
    ----------
    graph:
        The graph being traversed.
    frontier:
        Sorted array of the current level's vertices (all already marked
        visited in the current epoch).
    marks:
        The run's shared visited marks.

    Returns
    -------
    (next_frontier, edges_examined):
        The sorted array of newly discovered vertices and the number of
        arcs scanned (the out-degree sum of the frontier).
    """
    neigh = gather_neighbors(graph, frontier)
    edges_examined = len(neigh)
    if edges_examined == 0:
        return np.empty(0, dtype=np.int64), 0
    fresh = neigh[marks.marks[neigh] != marks.counter]
    if len(fresh) == 0:
        return np.empty(0, dtype=np.int64), edges_examined
    next_frontier = np.unique(fresh)
    marks.visit(next_frontier)
    return next_frontier, edges_examined
