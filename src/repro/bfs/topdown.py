"""Top-down level-synchronous BFS step (vectorized).

This is the "conventional data-driven top-down BFS" of the paper's
Section 4.6: each level expands the current worklist by scanning the
adjacency lists of its vertices and claiming unvisited neighbours. The
paper's threads claim neighbours with atomic compare-and-swap; here the
claim is a vectorized visited-filter plus deduplication, which produces
exactly the same next frontier. Deduplication adapts to the fresh-set
size (see :func:`repro.bfs.frontier.compact_unique`): small sets are
sorted with ``np.unique``, large ones are claimed into a pooled flag
array and compacted with ``np.flatnonzero`` — the direct analog of the
paper's claim-marks, without the sort.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.frontier import compact_unique, gather_neighbors
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["topdown_step", "topdown_step_blocks"]


def topdown_step(
    graph: CSRGraph,
    frontier: np.ndarray,
    marks: VisitMarks,
    *,
    pool=None,
) -> tuple[np.ndarray, int]:
    """Expand one BFS level top-down.

    Parameters
    ----------
    graph:
        The graph being traversed.
    frontier:
        Sorted array of the current level's vertices (all already marked
        visited in the current epoch).
    marks:
        The run's shared visited marks.
    pool:
        Optional scratch pool (duck-typed
        :class:`~repro.bfs.kernel.Workspace`) providing the cached
        ``arange`` ramp for the neighbour gather and the claim flag for
        large-set compaction.

    Returns
    -------
    (next_frontier, edges_examined):
        The sorted array of newly discovered vertices and the number of
        arcs scanned (the out-degree sum of the frontier).
    """
    neigh = gather_neighbors(graph, frontier, pool=pool)
    edges_examined = len(neigh)
    if edges_examined == 0:
        return np.empty(0, dtype=np.int64), 0
    fresh = neigh[marks.marks[neigh] != marks.counter]
    if len(fresh) == 0:
        return np.empty(0, dtype=np.int64), edges_examined
    next_frontier = compact_unique(fresh, graph.num_vertices, pool=pool)
    marks.visit(next_frontier)
    return next_frontier, edges_examined


def topdown_step_blocks(
    store,
    frontier: np.ndarray,
    marks: VisitMarks,
    *,
    pool=None,
    retain: bool = True,
) -> tuple[np.ndarray, int]:
    """Expand one BFS level top-down from a compressed store.

    The block-decoding twin of :func:`topdown_step`: instead of slicing
    the decoded ``indices`` array, the frontier's neighbour lists come
    from ``store.gather_rows`` (a duck-typed
    :class:`~repro.store.CompressedCSR`), which varint-decodes only the
    vertex blocks the frontier actually touches and serves repeats from
    its LRU block cache. Produces the exact same next frontier and arc
    count as the in-memory step — the equivalence tests cross-check the
    two — so the kernel can switch per expansion on the cost model's
    verdict without changing any result. ``retain=False`` is the
    memory-budgeted streaming mode: decoded blocks serve this level
    only and never enter the store's cache.
    """
    neigh, _ = store.gather_rows(frontier, pool=pool, retain=retain)
    edges_examined = len(neigh)
    if edges_examined == 0:
        return np.empty(0, dtype=np.int64), 0
    fresh = neigh[marks.marks[neigh] != marks.counter]
    if len(fresh) == 0:
        return np.empty(0, dtype=np.int64), edges_examined
    next_frontier = compact_unique(fresh, store.num_vertices, pool=pool)
    marks.visit(next_frontier)
    return next_frontier, edges_examined
