"""Bottom-up level-synchronous BFS step (vectorized).

The "topology-driven bottom-up BFS" of Beamer et al. that the paper
adopts (Section 4.6): when the frontier is large, it is cheaper for each
*unvisited* vertex to ask "is any of my neighbours on the frontier?"
than for the frontier to push to all its neighbours. The bottom-up step
needs no atomics (each unvisited vertex writes only its own slot) but
performs some wasted work, which is why the hybrid engine only selects
it for large frontiers.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.frontier import gather_rows, row_any
from repro.bfs.visited import VisitMarks
from repro.graph.csr import CSRGraph

__all__ = ["bottomup_step"]


def bottomup_step(
    graph: CSRGraph,
    frontier_flag: np.ndarray,
    marks: VisitMarks,
    *,
    pool=None,
) -> tuple[np.ndarray, int]:
    """Expand one BFS level bottom-up.

    Parameters
    ----------
    graph:
        The graph being traversed.
    frontier_flag:
        Boolean array of length ``n``; ``True`` exactly on the current
        frontier.
    marks:
        The run's shared visited marks.

    Returns
    -------
    (next_frontier, edges_examined):
        Sorted array of newly discovered vertices, and the number of
        arcs inspected. The vectorized formulation inspects *all* arcs
        of every unvisited candidate (a real bottom-up loop would break
        at the first frontier neighbour); the returned count reflects
        the arcs actually inspected here, i.e. it includes that wasted
        work, mirroring the paper's discussion.
    """
    candidates = np.flatnonzero(marks.unvisited_mask())
    if len(candidates) == 0:
        return np.empty(0, dtype=np.int64), 0
    values, lengths = gather_rows(
        graph.indices,
        graph.indptr[candidates],
        graph.indptr[candidates + 1],
        pool=pool,
    )
    edges_examined = len(values)
    if edges_examined == 0:
        return np.empty(0, dtype=np.int64), 0
    hit = row_any(frontier_flag[values], lengths)
    next_frontier = candidates[hit]
    if len(next_frontier):
        marks.visit(next_frontier)
    return next_frontier, edges_examined
