#!/usr/bin/env python
"""Load harness for the coalescing query service.

Boots an in-process :class:`repro.service.QueryService` on an
ephemeral port, drives it with N concurrent single-query clients
replaying a zipf-skewed synthetic trace (graph popularity × source
popularity — multi-tenant traffic is never uniform), and reports:

* throughput (queries/s) and end-to-end latency p50/p95/p99,
* the coalescing ratio (queries per dispatched batch) and the
  gather-pass ratio (scalar one-BFS-per-query traversals replaced per
  physical sweep) from the server's own ledger,
* a full answer audit: every served answer is replayed through a cold
  serial ``QueryEngine`` and must match bit-for-bit.

Usage::

    python benchmarks/load_service.py --requests 200 --concurrency 64
    python benchmarks/load_service.py --graph internet --graph USA-road-d.NY
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.harness.workloads import get_workload  # noqa: E402
from repro.query import QueryEngine  # noqa: E402
from repro.service import (  # noqa: E402
    QueryService,
    SchedulerConfig,
    ServiceClient,
)

#: Mix of query kinds in the synthetic trace.
DIST_SHARE = 0.70
ECC_SHARE = 0.25  # remainder is ``diam``


def zipf_trace(
    graphs: dict[str, int],
    n_requests: int,
    *,
    skew: float = 1.2,
    source_pool: int = 64,
    seed: int = 42,
) -> list[tuple[str, str]]:
    """A zipf-skewed ``(graph_key, query)`` trace.

    Graph popularity and source popularity are both zipf-distributed
    (rank-``r`` weight ``r**-skew``): a few graphs take most of the
    traffic and a few sources repeat constantly — which is exactly the
    regime where coalescing plus the engine's distance-row memo pays.
    ``graphs`` maps each key to its vertex count.
    """
    rng = np.random.default_rng(seed)
    keys = list(graphs)
    graph_weights = np.array([(i + 1) ** -skew for i in range(len(keys))])
    graph_weights /= graph_weights.sum()
    pool_weights = np.array([(i + 1) ** -skew for i in range(source_pool)])
    pool_weights /= pool_weights.sum()
    # Each graph gets its own popular-source pool.
    pools = {
        key: rng.integers(0, graphs[key], size=source_pool) for key in keys
    }

    trace = []
    for _ in range(n_requests):
        key = keys[int(rng.choice(len(keys), p=graph_weights))]
        pool = pools[key]
        roll = rng.random()
        if roll < DIST_SHARE:
            u = int(pool[int(rng.choice(source_pool, p=pool_weights))])
            v = int(rng.integers(0, graphs[key]))
            query = f"dist {u} {v}"
        elif roll < DIST_SHARE + ECC_SHARE:
            u = int(pool[int(rng.choice(source_pool, p=pool_weights))])
            query = f"ecc {u}"
        else:
            query = "diam"
        trace.append((key, query))
    return trace


async def _drive(service, host, port, trace, concurrency):
    """Replay ``trace`` through ``concurrency`` keep-alive clients."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in enumerate(trace):
        queue.put_nowait(item)
    answers: list = [None] * len(trace)
    statuses: list = [0] * len(trace)

    async def worker():
        async with ServiceClient(host, port) as client:
            while True:
                try:
                    idx, (key, query) = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, payload = await client.query(key, query)
                statuses[idx] = status
                if status == 200:
                    answers[idx] = payload["answers"][0]

    t0 = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    wall = time.perf_counter() - t0
    return answers, statuses, wall


def run_load(
    graphs,
    *,
    n_requests: int = 200,
    concurrency: int = 64,
    window_ms: float = 4.0,
    seed: int = 42,
    verify: bool = True,
) -> dict:
    """Boot, load, audit; returns the result record.

    ``graphs`` maps key -> CSRGraph. The returned record carries
    throughput, latency percentiles, the service's coalescing and
    gather-pass ratios, and ``mismatches`` from the serial-oracle
    audit (must be 0).
    """
    trace = zipf_trace(
        {k: g.num_vertices for k, g in graphs.items()}, n_requests, seed=seed
    )

    async def main():
        service = QueryService(
            config=SchedulerConfig(window_s=window_ms / 1e3)
        )
        for key, graph in graphs.items():
            service.add_graph(key, graph=graph)
        host, port = await service.start()
        try:
            answers, statuses, wall = await _drive(
                service, host, port, trace, concurrency
            )
            stats = service.stats_snapshot()
        finally:
            await service.close()
        return answers, statuses, wall, stats

    answers, statuses, wall, stats = asyncio.run(main())
    served = sum(1 for s in statuses if s == 200)
    if served != len(trace):
        bad = sorted({s for s in statuses if s != 200})
        raise RuntimeError(f"{len(trace) - served} requests failed: {bad}")

    mismatches = 0
    if verify:
        # The audit: one cold serial engine per graph, one run() per
        # query — the deliberately-unbatched baseline.
        oracle = QueryEngine(batch_lanes=1)
        for key, graph in graphs.items():
            oracle.add_graph(graph, key=key)
        for (key, query), got in zip(trace, answers):
            (expected,), _ = oracle.run(key, [query])
            if got != expected:
                mismatches += 1
        oracle.close()

    service_stats = stats["service"]
    latency = service_stats["latency"]
    return {
        "requests": len(trace),
        "concurrency": concurrency,
        "window_ms": window_ms,
        "wall_s": round(wall, 4),
        "qps": round(len(trace) / wall, 1),
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "p99_ms": latency["p99_ms"],
        "batches": service_stats["batches"],
        "coalescing_ratio": service_stats["coalescing_ratio"],
        "gather_pass_ratio": service_stats["gather_pass_ratio"],
        "service_sweeps": service_stats["sweeps"],
        "service_scalar_traversals": service_stats["scalar_traversals"],
        "service_memo_hits": service_stats["memo_hits"],
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--graph",
        action="append",
        default=None,
        help="workload name(s) to serve (default: internet)",
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=64)
    parser.add_argument("--window-ms", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the serial-oracle answer audit",
    )
    args = parser.parse_args(argv)

    names = args.graph or ["internet"]
    graphs = {name: get_workload(name).graph for name in names}
    record = run_load(
        graphs,
        n_requests=args.requests,
        concurrency=args.concurrency,
        window_ms=args.window_ms,
        seed=args.seed,
        verify=not args.no_verify,
    )
    print(json.dumps(record, indent=2))
    ok = record["mismatches"] == 0
    print(
        f"{'OK' if ok else 'FAIL'}: {record['qps']} qps, "
        f"coalescing {record['coalescing_ratio']}x, "
        f"gather-pass {record['gather_pass_ratio']}x, "
        f"p99 {record['p99_ms']} ms, "
        f"{record['mismatches']} mismatches"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
