"""Reproduces paper Table 2: measured runtimes of the five codes.

Codes: F-Diam (ser), F-Diam (par), iFUB (ser), iFUB (par),
Graph-Diam. — all on the same CSR substrate, median of the configured
repeats, with the scaled per-input timeout producing T/O entries.

Shape assertions (what "reproduced" means at this scale — see
EXPERIMENTS.md for the full account): neither F-Diam engine ever times
out, iFUB times out on high-diameter inputs exactly as in the paper's
Table 2 (which lists it T/O on the grid, delaunay, and road inputs),
and F-Diam (par) has the best timeout-penalized geometric-mean
throughput. The paper's orders-of-magnitude gaps on small-world inputs
come from implementation constants at 10^6-vertex scale and compress on
a shared idealized substrate at 10^4 — the robustness ordering is what
survives.
"""

import pytest

from conftest import emit
from repro.harness import (
    HIGH_DIAMETER_INPUTS,
    penalized_geomean_throughput,
    table2_runtimes,
)


@pytest.mark.benchmark(group="table2")
def test_table2_runtimes(benchmark, code_runs, suite_config):
    report = benchmark.pedantic(
        table2_runtimes, args=(code_runs, suite_config), rounds=1, iterations=1
    )
    emit(report.text)

    # F-Diam finishes every input (the paper's F-Diam never hits the cap).
    for engine in ("F-Diam (par)", "F-Diam (ser)"):
        for run in code_runs[engine]:
            assert not run.timed_out, f"{engine} timed out on {run.graph_name}"

    # iFUB's timeouts land on the paper's timeout inputs.
    paper_ifub_timeouts = {
        "2d-2e20.sym", "cit-Patents", "delaunay_n24", "europe_osm",
        "kron_g500-logn21", "uk-2002", "USA-road-d.NY", "USA-road-d.USA",
    }
    ifub_timeouts = {r.graph_name for r in code_runs["iFUB (par)"] if r.timed_out}
    if set(suite_config.inputs) >= paper_ifub_timeouts:
        assert ifub_timeouts, "expected iFUB timeouts on the full suite"
        assert ifub_timeouts <= paper_ifub_timeouts, ifub_timeouts

    # Overall ranking with timeouts charged their budget: F-Diam (par)
    # comes out on top.
    penalized = {
        name: penalized_geomean_throughput(runs, suite_config.timeout_s)
        for name, runs in code_runs.items()
    }
    assert max(penalized, key=penalized.get) == "F-Diam (par)", penalized
