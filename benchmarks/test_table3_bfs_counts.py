"""Reproduces paper Table 3: number of BFS traversals per code.

Counting convention per the paper: an F-Diam traversal is either an
eccentricity BFS or a Winnow call; Eliminate's partial traversals are
excluded. Baselines count their full BFS calls.

Shape assertions: every code's count is orders of magnitude below the
vertex count (the paper's main observation), and F-Diam's counts sit in
the paper's regime (tens to a few thousand).
"""

import pytest

from conftest import emit
from repro.harness import get_workload, table3_bfs_counts


@pytest.mark.benchmark(group="table3")
def test_table3_bfs_counts(benchmark, code_runs):
    report = benchmark.pedantic(
        table3_bfs_counts, args=(code_runs,), rounds=1, iterations=1
    )
    emit(report.text)

    for graph_name, row in report.data.items():
        n = get_workload(graph_name).graph.num_vertices
        for code, count in row.items():
            if code == "Graphs" or count == "timeout":
                continue
            assert count < n / 5, (
                f"{code} on {graph_name}: {count} traversals is not far "
                f"below n={n}"
            )
        fd = row["F-Diam (par)"]
        assert fd != "timeout"
        assert fd >= 3  # at least the 2-sweep + one Winnow
